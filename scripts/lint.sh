#!/usr/bin/env sh
# Lint gate, three blocking stages:
#  1. clippy: the whole workspace (vendor stubs included) must be clean
#     across every target with warnings denied;
#  2. bt-lint: the repo's own static analysis pass (determinism,
#     shared-state audit, RNG reachability, stage contracts,
#     panic-safety, float hygiene, crate-root policy, waiver accounting)
#     must report zero non-waived findings. See
#     `cargo run -p bt-lint -- --help`.
#  3. stage-matrix ratchet: the committed stage-access matrix must match
#     what the analyzer derives from source; update
#     results/baseline/STAGE_MATRIX.json together with any capability
#     change.
set -eu
cd "$(dirname "$0")/.."
cargo clippy --workspace --all-targets -- -D warnings
cargo run -q -p bt-lint -- --format json
cargo run -q -p bt-lint -- --stage-matrix | diff -u results/baseline/STAGE_MATRIX.json -
