#!/usr/bin/env sh
# Lint gate: the whole workspace (vendor stubs included) must be
# clippy-clean across every target with warnings denied.
set -eu
cd "$(dirname "$0")/.."
cargo clippy --workspace --all-targets -- -D warnings
