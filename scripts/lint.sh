#!/usr/bin/env sh
# Lint gate, two blocking stages:
#  1. clippy: the whole workspace (vendor stubs included) must be clean
#     across every target with warnings denied;
#  2. bt-lint: the repo's own static analysis pass (determinism,
#     panic-safety, float hygiene, crate-root policy attributes) must
#     report zero non-waived findings. See `cargo run -p bt-lint -- --help`.
set -eu
cd "$(dirname "$0")/.."
cargo clippy --workspace --all-targets -- -D warnings
cargo run -q -p bt-lint -- --format json
