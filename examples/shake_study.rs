//! The §7.1 last-piece study: how peer-set shaking changes the download
//! time of the final pieces, across trigger thresholds.
//!
//! Run with `cargo run --release --example shake_study`.

use bt_bench::ablations::shake_threshold;
use bt_bench::fig4d::{fig4d, tail_mean};

fn main() {
    println!("== Fig. 4(d): per-piece download time for the last pieces ==");
    let cmp = fig4d(40, 6);
    println!("piece  normal  shake@90%");
    for (offset, (n, s)) in cmp.normal.iter().zip(&cmp.shake).enumerate() {
        println!("{:>5}  {:>6.2}  {:>6.2}", 190 + offset, n, s);
    }
    println!(
        "tail means: normal {:.2} rounds/piece vs shake {:.2} rounds/piece",
        tail_mean(&cmp.normal),
        tail_mean(&cmp.shake)
    );

    println!("\n== shake-threshold sweep ==");
    println!("threshold  tail_ttd (rounds/piece)");
    for row in shake_threshold(&[0.8, 0.9, 0.95], 40, 6) {
        let label = if row.threshold.is_nan() {
            "none".to_string()
        } else {
            format!("{:.0}%", row.threshold * 100.0)
        };
        println!("{label:>9}  {:.2}", row.tail_ttd);
    }
    println!("\n(the paper: shaking the peer set significantly reduces the");
    println!(" download time for the last few pieces)");
}
