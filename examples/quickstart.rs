//! Quickstart: the model and the simulator side by side.
//!
//! Builds the paper's download-evolution model for a small file, samples
//! trajectories from it, runs the matching swarm simulation, and compares
//! the expected download times.
//!
//! Run with `cargo run --release --example quickstart`.

use multiphase_bt::des::SeedStream;
use multiphase_bt::model::evolution::expected_timeline;
use multiphase_bt::model::{ModelParams, Phase};
use multiphase_bt::swarm::{Swarm, SwarmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pieces = 60;
    let k = 4;
    let s = 12;

    // ---- Analytical model --------------------------------------------
    let params = ModelParams::builder()
        .pieces(pieces)
        .max_connections(k)
        .neighbor_set_size(s)
        .alpha(0.3)
        .gamma(0.2)
        .build()?;
    let timeline = expected_timeline(&params, 200, SeedStream::new(7).rng("quickstart", 0))?;
    println!(
        "model: expected download time = {:.1} rounds ({} of {} replications absorbed)",
        timeline.mean_step[pieces as usize], timeline.completed, timeline.replications
    );
    println!(
        "model: mean phase sojourns bootstrap/efficient/last = {:.1} / {:.1} / {:.1} rounds",
        timeline.mean_sojourns[0], timeline.mean_sojourns[1], timeline.mean_sojourns[2]
    );
    println!(
        "model: a mid-download state classifies as {}",
        Phase::classify(multiphase_bt::model::DownloadState::new(2, 30, 5), pieces)
    );

    // ---- Simulation --------------------------------------------------
    let config = SwarmConfig::builder()
        .pieces(pieces)
        .max_connections(k)
        .neighbor_set_size(s)
        .arrival_rate(1.5)
        .initial_leechers(20)
        .max_rounds(400)
        .seed(7)
        .build()?;
    let metrics = Swarm::new(config).run();
    println!(
        "sim:   mean download time = {:.1} rounds over {} completions",
        metrics.mean_download_rounds(),
        metrics.completions.len()
    );
    println!(
        "sim:   final entropy = {:.2}, mean slot utilization = {:.2}",
        metrics.final_entropy(),
        metrics.mean_utilization()
    );
    Ok(())
}
