//! A fuller swarm-simulation tour: flash crowd vs steady state, rarest-
//! first vs random-first, and the replication-entropy view of swarm health.
//!
//! Mirrors the workloads the paper's introduction motivates: a file split
//! into pieces, served by a community of tit-for-tat leechers behind one
//! origin seed.
//!
//! Run with `cargo run --release --example swarm_simulation`.

use multiphase_bt::swarm::config::PieceSelection;
use multiphase_bt::swarm::{InitialPieces, Swarm, SwarmConfig};

fn run_named(name: &str, config: SwarmConfig) {
    let pieces = config.pieces;
    let metrics = Swarm::new(config).run();
    let mid_entropy = {
        let tail = &metrics.entropy[metrics.entropy.len() / 2..];
        tail.iter().map(|&(_, e)| e).sum::<f64>() / tail.len().max(1) as f64
    };
    println!(
        "{name:<28} B={pieces:<4} completions={:<5} mean_rounds={:<7.1} entropy={:.2} pop_end={}",
        metrics.completions.len(),
        metrics.mean_download_rounds(),
        mid_entropy,
        metrics.final_population()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("scenario                     parameters    outcomes");

    // Steady state: Poisson arrivals into a warm swarm.
    run_named(
        "steady-state",
        SwarmConfig::builder()
            .pieces(100)
            .max_connections(5)
            .neighbor_set_size(20)
            .arrival_rate(2.0)
            .initial_leechers(30)
            .initial_pieces(InitialPieces::Random { count: 30 })
            .max_rounds(300)
            .seed(1)
            .build()?,
    );

    // Flash crowd: everyone arrives at once, nothing circulates yet.
    run_named(
        "flash-crowd",
        SwarmConfig::builder()
            .pieces(100)
            .max_connections(5)
            .neighbor_set_size(20)
            .arrival_rate(0.0)
            .initial_leechers(300)
            .max_rounds(300)
            .seed(1)
            .build()?,
    );

    // Piece-selection comparison under identical conditions.
    for (name, strategy) in [
        ("rarest-first", PieceSelection::RarestFirst),
        ("random-first", PieceSelection::RandomFirst),
    ] {
        run_named(
            name,
            SwarmConfig::builder()
                .pieces(100)
                .max_connections(5)
                .neighbor_set_size(12)
                .arrival_rate(2.0)
                .initial_leechers(30)
                .piece_selection(strategy)
                .seed_uploads_per_round(1)
                .max_rounds(300)
                .seed(2)
                .build()?,
        );
    }

    // Peer-set shaking on vs off in a last-piece-prone swarm.
    for (name, shake) in [("no-shake", false), ("shake@90%", true)] {
        let config = multiphase_bt::swarm::scenario::shake_study(shake, 40, 3)?;
        run_named(name, config);
    }
    Ok(())
}
