//! Model-vs-simulation validation at the command line: the Fig. 1(b)
//! comparison on a scaled-down configuration, plus the Fig. 4(a)
//! efficiency sweep.
//!
//! Run with `cargo run --release --example model_vs_sim`.

use bt_bench::{fig1, fig4a};

fn main() {
    println!("== download timeline: simulation vs model (scaled-down Fig. 1(b)) ==");
    let pairs = fig1::fig1b(40, 150, 5);
    for pair in &pairs {
        let b_max = pair.sim.len() - 1;
        println!(
            "PSS={:<3} sim total = {:>7.1} rounds   model total = {:>7.1} rounds",
            pair.pss, pair.sim[b_max], pair.model[b_max]
        );
        for checkpoint in [b_max / 4, b_max / 2, 3 * b_max / 4] {
            println!(
                "    at b={checkpoint:>3}: sim {:>7.1}  model {:>7.1}",
                pair.sim[checkpoint], pair.model[checkpoint]
            );
        }
    }

    println!("\n== efficiency vs k: model vs simulation (Fig. 4(a)) ==");
    let points = fig4a::fig4a(8, 0.5, 5);
    println!("k   model  sim    protocol-sim");
    for p in &points {
        println!(
            "{}   {:.3}  {:.3}  {:.3}",
            p.k, p.model, p.simulation, p.protocol_sim
        );
    }
    let gain12 = points[1].simulation - points[0].simulation;
    let gain78 = points[7].simulation - points[6].simulation;
    println!("\nsimulated gain k=1→2: {gain12:.3}; gain k=7→8: {gain78:.3}");
    println!("(the paper: the gain in efficiency rapidly decreases beyond two connections)");
}
