//! The measurement pipeline end to end: synthesize tracker statistics,
//! screen for stable swarms, generate instrumented-client traces, write
//! them to disk, read them back, and segment each into the paper's three
//! phases.
//!
//! Run with `cargo run --release --example trace_analysis`.

use multiphase_bt::des::SeedStream;
use multiphase_bt::traces::analyzer::segment;
use multiphase_bt::traces::generator::{generate, TraceScenario};
use multiphase_bt::traces::io::{read_traces_from_path, write_traces_to_path};
use multiphase_bt::traces::swarm_stats::{filter_stable, synthesize, SwarmClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Tracker statistics screening (the §4.2 swarm-selection step).
    let mut rng = SeedStream::new(11).rng("tracker-stats", 0);
    let stats = vec![
        synthesize(SwarmClass::Stable, "linux-iso", 1_200, 48, &mut rng),
        synthesize(SwarmClass::FlashCrowd, "new-release", 800, 48, &mut rng),
        synthesize(SwarmClass::Dying, "old-torrent", 400, 48, &mut rng),
        synthesize(SwarmClass::Stable, "dataset", 2_500, 48, &mut rng),
    ];
    let stable = filter_stable(stats);
    println!("stable swarms selected for measurement:");
    for s in &stable {
        println!(
            "  {:<12} mean population {:.0}",
            s.name,
            s.mean_population()
        );
    }

    // 2. Inject the instrumented client and collect traces.
    let mut all = Vec::new();
    for scenario in [
        TraceScenario::Smooth,
        TraceScenario::LastPhase,
        TraceScenario::BootstrapStall,
    ] {
        all.extend(generate(scenario, 3, 11)?);
    }

    // 3. Persist and reload (the on-disk format an instrumented client logs).
    let path = std::env::temp_dir().join("multiphase-bt-traces.jsonl");
    write_traces_to_path(&path, &all)?;
    let reloaded = read_traces_from_path(&path)?;
    println!(
        "\nwrote and reloaded {} traces via {}",
        reloaded.len(),
        path.display()
    );

    // 4. Phase segmentation of every trace.
    println!("\nclient                      bootstrap  efficient  last      completed");
    for trace in &reloaded {
        let phases = segment(trace);
        println!(
            "{:<27} {:>6.0}s   {:>6.0}s  {:>6.0}s     {}",
            trace.client,
            phases.bootstrap_secs,
            phases.efficient_secs,
            phases.last_secs,
            trace.completed
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
