//! End-to-end test of the measurement pipeline: swarm → observer logs →
//! traces → disk → analyzer.

use multiphase_bt::des::SeedStream;
use multiphase_bt::traces::analyzer::segment;
use multiphase_bt::traces::generator::{generate, TraceScenario, SECONDS_PER_ROUND};
use multiphase_bt::traces::io::{read_traces, write_traces};
use multiphase_bt::traces::swarm_stats::{filter_stable, synthesize, SwarmClass};

#[test]
fn full_pipeline_round_trips() {
    // Screening.
    let mut rng = SeedStream::new(42).rng("stats", 0);
    let stats = vec![
        synthesize(SwarmClass::Stable, "a", 900, 24, &mut rng),
        synthesize(SwarmClass::Dying, "b", 900, 24, &mut rng),
        synthesize(SwarmClass::FlashCrowd, "c", 900, 24, &mut rng),
    ];
    let stable = filter_stable(stats);
    assert_eq!(stable.len(), 1);
    assert_eq!(stable[0].name, "a");

    // Collection.
    let traces = generate(TraceScenario::Smooth, 3, 42).expect("generation succeeds");
    assert_eq!(traces.len(), 3);

    // Serialization round trip.
    let mut buf = Vec::new();
    write_traces(&mut buf, &traces).expect("write succeeds");
    let reloaded = read_traces(buf.as_slice()).expect("read succeeds");
    assert_eq!(traces, reloaded);

    // Analysis: every trace segments cleanly and sample counts partition.
    for trace in &reloaded {
        let phases = segment(trace);
        assert_eq!(
            phases.bootstrap_samples + phases.efficient_samples + phases.last_samples,
            phases.total_samples
        );
    }
}

#[test]
fn trace_timestamps_follow_round_scale() {
    let traces = generate(TraceScenario::Smooth, 2, 9).expect("generation succeeds");
    for trace in &traces {
        for pair in trace.samples.windows(2) {
            let dt = pair[1].t - pair[0].t;
            assert!(dt >= 0.0);
            // Samples are one round apart (or coincide at the closing
            // completion sample).
            assert!(
                dt == 0.0 || (dt - SECONDS_PER_ROUND).abs() < 1e-9,
                "unexpected gap {dt}"
            );
        }
    }
}

#[test]
fn archetypes_segment_differently() {
    let smooth = generate(TraceScenario::Smooth, 4, 7).expect("generation succeeds");
    let stall = generate(TraceScenario::BootstrapStall, 4, 7).expect("generation succeeds");
    let max_bootstrap = |traces: &[multiphase_bt::traces::Trace]| {
        traces
            .iter()
            .map(|t| segment(t).bootstrap_fraction())
            .fold(0.0f64, f64::max)
    };
    let smooth_b = max_bootstrap(&smooth);
    let stall_b = max_bootstrap(&stall);
    assert!(
        stall_b > smooth_b,
        "bootstrap-stall ({stall_b:.2}) should out-bootstrap smooth ({smooth_b:.2})"
    );
}
