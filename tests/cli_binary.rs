//! End-to-end tests of the `btlab` binary itself.

use std::process::Command;

fn btlab() -> Command {
    Command::new(env!("CARGO_BIN_EXE_btlab"))
}

#[test]
fn help_exits_zero() {
    let out = btlab().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = btlab().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn swarm_summary_runs() {
    let out = btlab()
        .args([
            "swarm",
            "--pieces",
            "12",
            "--rounds",
            "60",
            "--initial",
            "10",
            "--seed",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("completions="), "{stdout}");
}

#[test]
fn swarm_json_is_parseable() {
    let out = btlab()
        .args([
            "swarm",
            "--pieces",
            "8",
            "--rounds",
            "40",
            "--initial",
            "8",
            "--seed",
            "2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let metrics: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON metrics");
    assert!(metrics.get("completions").is_some());
    assert!(metrics.get("entropy").is_some());
}

#[test]
fn traces_then_analyze_pipeline() {
    let path = std::env::temp_dir().join("btlab-binary-test.jsonl");
    let path_str = path.to_str().unwrap();
    let out = btlab()
        .args(["traces", "--out", path_str, "--clients", "2", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = btlab()
        .args(["analyze", "--input", path_str])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bootstrap"), "{stdout}");
    std::fs::remove_file(&path).ok();
}
