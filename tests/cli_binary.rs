//! End-to-end tests of the `btlab` binary itself.

use std::process::Command;

fn btlab() -> Command {
    Command::new(env!("CARGO_BIN_EXE_btlab"))
}

#[test]
fn help_exits_zero() {
    let out = btlab().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = btlab().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn swarm_summary_runs() {
    let out = btlab()
        .args([
            "swarm",
            "--pieces",
            "12",
            "--rounds",
            "60",
            "--initial",
            "10",
            "--seed",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("completions="), "{stdout}");
}

#[test]
fn swarm_json_is_parseable() {
    let out = btlab()
        .args([
            "swarm",
            "--pieces",
            "8",
            "--rounds",
            "40",
            "--initial",
            "8",
            "--seed",
            "2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let metrics: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON metrics");
    assert!(metrics.get("completions").is_some());
    assert!(metrics.get("entropy").is_some());
}

#[test]
fn traces_then_analyze_pipeline() {
    let path = std::env::temp_dir().join("btlab-binary-test.jsonl");
    let path_str = path.to_str().unwrap();
    let out = btlab()
        .args(["traces", "--out", path_str, "--clients", "2", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = btlab()
        .args(["analyze", "--input", path_str])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bootstrap"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

const LOG_TEST_SWARM: [&str; 9] = [
    "swarm", "--pieces", "10", "--rounds", "60", "--initial", "8", "--seed", "3",
];

#[test]
fn json_log_mode_emits_json_lines_and_manifest() {
    let dir = std::env::temp_dir().join("btlab-e2e-json-manifest");
    std::fs::remove_dir_all(&dir).ok();
    let out = btlab()
        .args(LOG_TEST_SWARM)
        .args(["--log", "json"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // Every stderr line is a standalone JSON object carrying the event
    // schema, and the progress events we expect are among them.
    let stderr = String::from_utf8_lossy(&out.stderr);
    let mut messages = Vec::new();
    for line in stderr.lines().filter(|l| !l.is_empty()) {
        let event: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("stderr line is not JSON ({e}): {line}"));
        assert!(event.get("level").is_some(), "{line}");
        assert!(event.get("target").is_some(), "{line}");
        if let Some(msg) = event.get("message").and_then(|m| m.as_str()) {
            messages.push(msg.to_string());
        }
    }
    assert!(messages.iter().any(|m| m == "swarm run finished"), "{messages:?}");

    // The manifest landed next to the (redirected) results with live
    // counter totals and per-phase wall clock.
    let manifest_path = dir.join("manifest-swarm.json");
    let text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let manifest: serde_json::Value = serde_json::from_str(&text).expect("manifest is JSON");
    assert_eq!(manifest.get("command").and_then(|v| v.as_str()), Some("swarm"));
    assert_eq!(manifest.get("seed").and_then(|v| v.as_u64()), Some(3));
    let counters: std::collections::BTreeMap<String, u64> = manifest
        .get("counters")
        .and_then(|v| v.as_array())
        .expect("counters array")
        .iter()
        .map(|pair| {
            let pair = pair.as_array().expect("pair");
            (
                pair[0].as_str().expect("name").to_string(),
                pair[1].as_u64().expect("value"),
            )
        })
        .collect();
    assert!(counters["swarm.arrivals"] > 0, "{counters:?}");
    assert!(counters["swarm.pieces_exchanged"] > 0, "{counters:?}");
    assert!(counters["swarm.completions"] > 0, "{counters:?}");
    assert!(manifest.get("peak_population").and_then(|v| v.as_u64()).expect("peak") > 0);
    let phases = manifest
        .get("phase_secs")
        .and_then(|v| v.as_array())
        .expect("phase_secs");
    let phase_names: Vec<&str> = phases
        .iter()
        .map(|pair| pair.as_array().expect("pair")[0].as_str().expect("name"))
        .collect();
    // One timer per default-pipeline stage (shake is config-gated off
    // here), plus the obs.* observer timers the budget gate reads.
    let round_stages = phase_names.iter().filter(|n| n.starts_with("round.")).count();
    assert_eq!(round_stages, 7, "{phase_names:?}");
    assert!(phase_names.contains(&"round.depart"), "{phase_names:?}");
    assert!(!phase_names.contains(&"round.shake"), "{phase_names:?}");
    assert!(phase_names.contains(&"obs.telemetry"), "{phase_names:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quiet_log_mode_keeps_stdout_identical_and_stderr_empty() {
    let dir = std::env::temp_dir().join("btlab-e2e-quiet");
    std::fs::remove_dir_all(&dir).ok();
    let quiet = btlab()
        .args(LOG_TEST_SWARM)
        .args(["--log", "quiet"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    let json = btlab()
        .args(LOG_TEST_SWARM)
        .args(["--log", "json"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(quiet.status.success() && json.status.success());
    assert!(
        quiet.stderr.is_empty(),
        "quiet mode must not write diagnostics: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );
    assert_eq!(
        quiet.stdout, json.stdout,
        "result output must not depend on the log mode"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn log_flags_are_position_independent_and_validated() {
    let dir = std::env::temp_dir().join("btlab-e2e-logflags");
    std::fs::remove_dir_all(&dir).ok();
    let out = btlab()
        .args(["--log", "human", "help", "--log-filter", "warn"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = btlab()
        .args(["help", "--log", "loud"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown log mode"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_log_filter_exits_two_with_clear_message() {
    let out = btlab()
        .args(["help", "--log-filter", "bt_swarm=shouty"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The message names the flag and echoes the offending spec.
    assert!(stderr.contains("--log-filter"), "{stderr}");
    assert!(stderr.contains("bt_swarm=shouty"), "{stderr}");
}

#[test]
fn swarm_telemetry_then_report_pipeline() {
    let dir = std::env::temp_dir().join("btlab-e2e-telemetry");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let telemetry = dir.join("run.jsonl");
    let telemetry_str = telemetry.to_str().unwrap();

    let out = btlab()
        .args([
            "swarm",
            "--pieces",
            "10",
            "--rounds",
            "150",
            "--initial",
            "10",
            "--lambda",
            "0",
            "--seed",
            "5",
            "--observers",
            "2",
            "--telemetry",
            telemetry_str,
        ])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout).to_string();

    // Every stream line is standalone JSON; Meta and Sample records exist.
    let text = std::fs::read_to_string(&telemetry).expect("telemetry written");
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        let record: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("telemetry line is not JSON ({e}): {line}"));
        let key = record
            .as_object()
            .and_then(|o| o.first().map(|(k, _)| k.clone()))
            .expect("externally tagged record");
        kinds.insert(key);
    }
    assert!(kinds.contains("Meta"), "{kinds:?}");
    assert!(kinds.contains("Sample"), "{kinds:?}");
    assert!(kinds.contains("Phase"), "{kinds:?}");

    // The report reads the stream back and agrees with the swarm's own
    // summary on the final entropy.
    let out = btlab()
        .args([
            "report",
            "--telemetry",
            telemetry_str,
            "--replications",
            "20",
        ])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(report.contains("samples="), "{report}");
    assert!(report.contains("detected phase boundaries"), "{report}");
    assert!(report.contains("model comparison"), "{report}");
    let entropy_of = |text: &str| {
        let start = text.find("final_entropy=").expect("final_entropy present")
            + "final_entropy=".len();
        text[start..]
            .split_whitespace()
            .next()
            .expect("value follows")
            .to_string()
    };
    assert_eq!(entropy_of(&summary), entropy_of(&report), "\n{summary}\n{report}");

    // CSV format produces a sample table with a header.
    let csv = dir.join("run.csv");
    let out = btlab()
        .args([
            "swarm",
            "--pieces",
            "10",
            "--rounds",
            "40",
            "--initial",
            "8",
            "--seed",
            "5",
            "--telemetry",
            csv.to_str().unwrap(),
            "--telemetry-format",
            "csv",
        ])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&csv).expect("csv written");
    assert!(
        text.starts_with("round,population,entropy"),
        "{}",
        text.lines().next().unwrap_or("")
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_disable_stage_exits_two_listing_stage_names() {
    let out = btlab()
        .args(["swarm", "--disable-stage", "frobnicate"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown stage `frobnicate`"), "{stderr}");
    for stage in ["maintain", "bootstrap", "prune", "establish", "exchange", "depart", "shake", "sample"] {
        assert!(stderr.contains(stage), "missing {stage} in: {stderr}");
    }
}

#[test]
fn swarm_profile_records_artifacts_and_manifest_pipeline() {
    let dir = std::env::temp_dir().join("btlab-e2e-profile");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let profile = dir.join("profile.json");
    let out = btlab()
        .args([
            "swarm",
            "--pieces",
            "10",
            "--rounds",
            "60",
            "--initial",
            "10",
            "--seed",
            "5",
            "--profile",
            profile.to_str().unwrap(),
        ])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The three profile artifacts landed next to each other.
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&profile).expect("profile written"))
            .expect("profile is JSON");
    assert_eq!(report.get("seed").and_then(|v| v.as_u64()), Some(5));
    assert_eq!(report.get("rounds").and_then(|v| v.as_u64()), Some(60));
    assert!(report.get("stages").and_then(|v| v.as_array()).is_some_and(|s| !s.is_empty()));
    let folded =
        std::fs::read_to_string(profile.with_extension("folded")).expect("folded written");
    assert!(folded.contains("swarm;exchange"), "{folded}");
    let series =
        std::fs::read_to_string(profile.with_extension("rounds.jsonl")).expect("series written");
    assert!(series.lines().any(|l| l.contains("round.ns")), "{series}");

    // The run manifest records the active pipeline configuration.
    let manifest: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(dir.join("manifest-swarm.json")).expect("manifest written"),
    )
    .expect("manifest is JSON");
    let pipeline: Vec<&str> = manifest
        .get("pipeline")
        .and_then(|v| v.as_array())
        .expect("pipeline recorded")
        .iter()
        .map(|v| v.as_str().expect("stage name"))
        .collect();
    assert_eq!(
        pipeline,
        ["maintain", "bootstrap", "prune", "establish", "exchange", "depart", "sample"],
        "{manifest:?}"
    );

    // `btlab profile` summarizes the recorded artifact.
    let out = btlab()
        .args(["profile", profile.to_str().unwrap(), "--top", "5"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hottest stages"), "{stdout}");
    assert!(stdout.contains("exchange"), "{stdout}");
    assert!(stdout.contains("top peers"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_exits_zero_on_parity_and_one_on_regression() {
    let dir = std::env::temp_dir().join("btlab-e2e-compare");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    // Handcrafted profiles with second-scale stage costs, far above the
    // comparison noise floor.
    let report = |establish_secs: f64| {
        format!(
            r#"{{
  "schema_version": 1,
  "seed": 7,
  "rounds": 10,
  "total_secs": {establish_secs},
  "rounds_per_sec": 100.0,
  "round_latency": {{"count": 10, "total_secs": {establish_secs}, "p50_ns": 1000, "p95_ns": 2000, "p99_ns": 3000, "max_ns": 4000}},
  "stages": [
    {{"name": "establish", "rounds": 10, "total_secs": {establish_secs}, "share": 1.0,
      "latency": {{"count": 10, "total_secs": {establish_secs}, "p50_ns": 1000, "p95_ns": 2000, "p99_ns": 3000, "max_ns": 4000}},
      "work": [["establish.candidate_comparisons", 500]]}}
  ],
  "top_peers": []
}}"#
        )
    };
    let base = dir.join("base.json");
    let cand = dir.join("cand.json");
    std::fs::write(&base, report(1.0)).unwrap();
    std::fs::write(&cand, report(3.0)).unwrap();

    let out = btlab()
        .args(["compare", base.to_str().unwrap(), base.to_str().unwrap()])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no regressions beyond tolerance"), "{stdout}");

    let out = btlab()
        .args([
            "compare",
            base.to_str().unwrap(),
            cand.to_str().unwrap(),
            "--tolerance",
            "0.25",
        ])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "regressions exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regression(s) beyond tolerance"), "{stderr}");
    assert!(stderr.contains("establish"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_malformed_input_exits_two() {
    let dir = std::env::temp_dir().join("btlab-e2e-compare-malformed");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("garbage.json");
    std::fs::write(&path, "{\"hello\": 1}").unwrap();
    let out = btlab()
        .args(["compare", path.to_str().unwrap(), path.to_str().unwrap()])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed comparison input is a data error, not a regression"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("neither a profile report"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_json_flag_emits_machine_readable_report() {
    let dir = std::env::temp_dir().join("btlab-e2e-profile-json");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let profile = dir.join("profile.json");
    let out = btlab()
        .args([
            "swarm", "--pieces", "10", "--rounds", "40", "--initial", "8", "--seed", "5",
            "--profile", profile.to_str().unwrap(),
        ])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let out = btlab()
        .args(["profile", profile.to_str().unwrap(), "--json"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("--json output parses as JSON");
    assert_eq!(report.get("schema_version").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(report.get("seed").and_then(|v| v.as_u64()), Some(5));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_strict_promotes_manifest_warnings_to_exit_one() {
    let dir = std::env::temp_dir().join("btlab-e2e-report-strict");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let telemetry = dir.join("run.jsonl");
    let swarm = |seed: &str, telemetry: Option<&str>| {
        let mut cmd = btlab();
        cmd.args(["swarm", "--pieces", "10", "--rounds", "40", "--initial", "8", "--seed", seed]);
        if let Some(path) = telemetry {
            cmd.args(["--telemetry", path]);
        }
        cmd.env("BT_MANIFEST_DIR", &dir).output().expect("binary runs")
    };
    assert!(swarm("5", Some(telemetry.to_str().unwrap())).status.success());
    // A second run under another seed overwrites manifest-swarm.json,
    // so the manifest on disk now disagrees with the telemetry stream.
    assert!(swarm("6", None).status.success());
    let manifest = dir.join("manifest-swarm.json");
    let report_args = |strict: bool| {
        let mut args = vec![
            "report",
            "--telemetry",
            telemetry.to_str().unwrap(),
            "--manifest",
            manifest.to_str().unwrap(),
        ];
        if strict {
            args.push("--strict");
        }
        args.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };
    let out = btlab()
        .args(report_args(false))
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "warnings alone stay advisory");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning: manifest seed 6"), "{stdout}");

    let out = btlab()
        .args(report_args(true))
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "--strict turns warnings into failures");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--strict"), "{stderr}");
    assert!(stderr.contains("manifest seed 6"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

const DOCTOR_FAULT_RUN: [&str; 19] = [
    "doctor",
    "--pieces",
    "10",
    "--rounds",
    "30",
    "--initial",
    "8",
    "--lambda",
    "0",
    "--seed",
    "5",
    "--cadence",
    "1",
    "--disable-stage",
    "bootstrap",
    "--inject-fault",
    "unaccounted-piece@5",
    "--log",
    "quiet",
];

#[test]
fn doctor_seeded_fault_exits_one_with_bundle_and_ledger_record() {
    let dir = std::env::temp_dir().join("btlab-e2e-doctor-fault");
    std::fs::remove_dir_all(&dir).ok();
    let out = btlab()
        .args(DOCTOR_FAULT_RUN)
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "violations fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("violation [piece-conservation]"), "{stdout}");
    assert!(stdout.contains("diagnosis bundle:"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invariant violation"), "{stderr}");

    // The bundle landed under the manifest directory with its full
    // forensic contents.
    let bundle = std::fs::read_dir(&dir)
        .expect("manifest dir exists")
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("diagnosis-doctor-5-"))
        .expect("diagnosis bundle directory");
    for file in ["meta.json", "flight.json", "telemetry.jsonl", "peers.json"] {
        assert!(bundle.path().join(file).exists(), "bundle is missing {file}");
    }
    let meta: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(bundle.path().join("meta.json")).expect("meta written"),
    )
    .expect("meta is JSON");
    assert_eq!(meta.get("seed").and_then(|v| v.as_u64()), Some(5));
    assert!(meta
        .get("violations")
        .and_then(|v| v.as_array())
        .is_some_and(|v| !v.is_empty()));

    // Even the failing run left a ledger record carrying its violation
    // count — regressions must be on the record, not just on stderr.
    let ledger = std::fs::read_to_string(dir.join("ledger.jsonl")).expect("ledger written");
    let record: serde_json::Value =
        serde_json::from_str(ledger.lines().next().expect("one record")).expect("record is JSON");
    assert_eq!(record.get("command").and_then(|v| v.as_str()), Some("doctor"));
    assert!(record.get("violations").and_then(|v| v.as_u64()).expect("violations") > 0);
    std::fs::remove_dir_all(&dir).ok();
}

const DOCTOR_CLEAN_RUN: [&str; 13] = [
    "doctor", "--pieces", "10", "--rounds", "40", "--initial", "8", "--lambda", "0", "--seed",
    "5", "--log", "quiet",
];

#[test]
fn doctor_clean_runs_build_a_ledger_that_trend_renders() {
    let dir = std::env::temp_dir().join("btlab-e2e-doctor-trend");
    std::fs::remove_dir_all(&dir).ok();
    for _ in 0..3 {
        let out = btlab()
            .args(DOCTOR_CLEAN_RUN)
            .env("BT_MANIFEST_DIR", &dir)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("doctor: all invariants held"), "{stdout}");
    }
    let ledger = std::fs::read_to_string(dir.join("ledger.jsonl")).expect("ledger written");
    assert_eq!(ledger.lines().count(), 3, "one record per run:\n{ledger}");

    // Identical runs give trend a matching prior set; nothing drifted.
    let out = btlab()
        .args(["trend", "--last", "5"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 of 3 record(s)"), "{stdout}");
    assert!(stdout.contains("trajectories"), "{stdout}");
    assert!(stdout.contains("rounds_per_sec"), "{stdout}");

    // An empty window is a data error, distinct from run failures.
    let missing = dir.join("missing.jsonl");
    let out = btlab()
        .args(["trend", "--ledger", missing.to_str().unwrap()])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "unreadable ledgers exit 2");
    std::fs::remove_dir_all(&dir).ok();
}

/// Replaces `key` in a JSON object (the vendored `Value` is an
/// entries vec with no `IndexMut`).
fn set_field(value: &mut serde_json::Value, key: &str, new: serde_json::Value) {
    let serde_json::Value::Object(entries) = value else {
        panic!("expected a JSON object");
    };
    let entry = entries
        .iter_mut()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("object has no `{key}` field"));
    entry.1 = new;
}

/// Runs a short heartbeat-enabled swarm into `dir/run`, returning the
/// run directory. Zero cadence means every round beats, so even a
/// sub-second run leaves a stream worth watching.
fn heartbeat_run(dir: &std::path::Path) -> std::path::PathBuf {
    let run_dir = dir.join("run");
    let out = btlab()
        .args([
            "swarm",
            "--pieces",
            "10",
            "--rounds",
            "60",
            "--initial",
            "8",
            "--seed",
            "5",
            "--heartbeat",
            run_dir.to_str().unwrap(),
            "--heartbeat-secs",
            "0",
            "--log",
            "quiet",
        ])
        .env("BT_MANIFEST_DIR", dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    run_dir
}

#[test]
fn watch_renders_a_finished_run_and_exits_zero() {
    let dir = std::env::temp_dir().join("btlab-e2e-watch-finished");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let run_dir = heartbeat_run(&dir);

    let out = btlab()
        .args(["watch", run_dir.to_str().unwrap()])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("finished"), "{stdout}");
    assert!(stdout.contains("round 60/60"), "{stdout}");
    assert!(stdout.contains("phase"), "{stdout}");
    assert!(stdout.contains("rss"), "{stdout}");
    assert!(stdout.contains("eta"), "{stdout}");

    // --json emits the status document itself, one line per change.
    let out = btlab()
        .args(["watch", run_dir.to_str().unwrap(), "--json"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let status: serde_json::Value =
        serde_json::from_str(stdout.lines().next().expect("one JSON line"))
            .expect("watch --json line parses");
    assert_eq!(status.get("state").and_then(|v| v.as_str()), Some("finished"));
    assert_eq!(status.get("target_rounds").and_then(|v| v.as_u64()), Some(60));
    let last_round = status
        .get("last")
        .and_then(|last| last.get("round"))
        .and_then(|v| v.as_u64());
    assert_eq!(last_round, Some(60));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_times_out_on_a_stalled_run_with_exit_one() {
    let dir = std::env::temp_dir().join("btlab-e2e-watch-stall");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let run_dir = heartbeat_run(&dir);

    // Rewind the status document to `running`: the artifacts now look
    // like a live run whose writer died mid-flight.
    let status_path = run_dir.join("run.status.json");
    let mut status: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&status_path).expect("status written"))
            .expect("status is JSON");
    set_field(
        &mut status,
        "state",
        serde_json::Value::Str("running".to_string()),
    );
    std::fs::write(&status_path, serde_json::to_string_pretty(&status).unwrap()).unwrap();

    let out = btlab()
        .args([
            "watch",
            run_dir.to_str().unwrap(),
            "--timeout-secs",
            "0.4",
            "--interval-secs",
            "0.1",
        ])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "a stalled run is a failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("silent"), "{stderr}");
    assert!(stderr.contains("--timeout-secs"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_rejects_missing_torn_or_headerless_artifacts_with_exit_two() {
    let dir = std::env::temp_dir().join("btlab-e2e-watch-invalid");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // No run.status.json at all: the directory is not a heartbeat run.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = btlab()
        .args(["watch", empty.to_str().unwrap()])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "missing status is a data error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("run.status.json"), "{stderr}");
    assert!(stderr.contains("--heartbeat"), "{stderr}");

    // A torn/garbage status document.
    let torn = dir.join("torn");
    std::fs::create_dir_all(&torn).unwrap();
    std::fs::write(torn.join("run.status.json"), "{\"state\": \"runni").unwrap();
    let out = btlab()
        .args(["watch", torn.to_str().unwrap()])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "torn status is a data error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed status document"), "{stderr}");

    // A valid status but a headerless heartbeat stream.
    let run_dir = heartbeat_run(&dir);
    let stream_path = run_dir.join("run.heartbeat.jsonl");
    let stream = std::fs::read_to_string(&stream_path).expect("stream written");
    let beat_line = stream
        .lines()
        .nth(1)
        .expect("stream has beats after the header");
    std::fs::write(&stream_path, format!("{beat_line}\n")).unwrap();
    let out = btlab()
        .args(["watch", run_dir.to_str().unwrap()])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "headerless stream is a data error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no meta header"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_mem_budget_gates_peak_rss_against_the_baseline() {
    let dir = std::env::temp_dir().join("btlab-e2e-mem-budget");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    // One real run provides a manifest with live memory telemetry; a
    // doctored copy with double the peak plays the bloated candidate.
    assert!(btlab()
        .args(["swarm", "--pieces", "10", "--rounds", "40", "--initial", "8", "--seed", "5"])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs")
        .status
        .success());
    let base = dir.join("manifest-swarm.json");
    let mut manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&base).expect("manifest written"))
            .expect("manifest is JSON");
    let peak = manifest
        .get("peak_rss_bytes")
        .and_then(|v| v.as_u64())
        .expect("manifest records peak RSS");
    if peak == 0 {
        // Off-procfs platform: the gate cannot see memory here, and the
        // invalid-input path below still covers the contract.
        eprintln!("peak_rss_bytes is 0 on this platform; skipping the gate checks");
    } else {
        let cand = dir.join("candidate.json");
        set_field(
            &mut manifest,
            "peak_rss_bytes",
            serde_json::Value::UInt(peak * 2),
        );
        std::fs::write(&cand, serde_json::to_string_pretty(&manifest).unwrap()).unwrap();

        // Within budget: +100% growth passes a generous 150% headroom.
        let out = btlab()
            .args([
                "compare",
                base.to_str().unwrap(),
                base.to_str().unwrap(),
                "--tolerance",
                "10",
                "--mem-budget",
                "50",
            ])
            .env("BT_MANIFEST_DIR", &dir)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("peak RSS"), "{stdout}");
        assert!(stdout.contains("ok"), "{stdout}");

        // Over budget: the doubled candidate busts a 50% headroom.
        let out = btlab()
            .args([
                "compare",
                base.to_str().unwrap(),
                cand.to_str().unwrap(),
                "--tolerance",
                "10",
                "--mem-budget",
                "50",
            ])
            .env("BT_MANIFEST_DIR", &dir)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(1), "over-budget memory exits 1");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("OVER BUDGET"), "{stdout}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--mem-budget"), "{stderr}");
    }

    // A baseline without memory telemetry is a data error (exit 2).
    let old = dir.join("old.json");
    set_field(&mut manifest, "peak_rss_bytes", serde_json::Value::UInt(0));
    std::fs::write(&old, serde_json::to_string_pretty(&manifest).unwrap()).unwrap();
    let out = btlab()
        .args([
            "compare",
            old.to_str().unwrap(),
            base.to_str().unwrap(),
            "--tolerance",
            "10",
            "--mem-budget",
            "50",
        ])
        .env("BT_MANIFEST_DIR", &dir)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "a memory-less baseline is a data error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("memory telemetry"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

