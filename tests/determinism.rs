//! Reproducibility across the whole stack: same seed, same results.

use multiphase_bt::model::evolution::Walker;
use multiphase_bt::model::ModelParams;
use multiphase_bt::swarm::{Swarm, SwarmConfig};
use multiphase_bt::traces::generator::{generate, TraceScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn swarm_runs_are_bitwise_reproducible() {
    let config = SwarmConfig::builder()
        .pieces(30)
        .max_connections(3)
        .neighbor_set_size(8)
        .arrival_rate(1.0)
        .initial_leechers(15)
        .observers(3)
        .max_rounds(120)
        .seed(99)
        .build()
        .expect("valid config");
    let a = Swarm::new(config.clone()).run();
    let b = Swarm::new(config).run();
    assert_eq!(a, b);
}

#[test]
fn model_walks_are_reproducible() {
    let params = ModelParams::builder().pieces(25).build().expect("valid");
    let run = |seed| {
        Walker::new(&params, StdRng::seed_from_u64(seed))
            .run()
            .states()
            .to_vec()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6), "different seeds should explore differently");
}

#[test]
fn trace_generation_is_reproducible() {
    let a = generate(TraceScenario::LastPhase, 2, 123).expect("generation succeeds");
    let b = generate(TraceScenario::LastPhase, 2, 123).expect("generation succeeds");
    assert_eq!(a, b);
}

#[test]
fn figure_functions_are_reproducible() {
    let a = bt_bench::fig4a::fig4a(2, 0.5, 55);
    let b = bt_bench::fig4a::fig4a(2, 0.5, 55);
    assert_eq!(a, b);
}
