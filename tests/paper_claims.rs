//! Scaled-down checks of the paper's headline claims, one per figure.

use multiphase_bt::model::efficiency::{EfficiencyModel, SweepOrder};
use multiphase_bt::swarm::{InitialPieces, Swarm, SwarmConfig};

/// Fig. 4(a): efficiency gains rapidly decrease beyond two connections
/// (model side; the simulation side is covered by `bt-model`'s own tests).
#[test]
fn efficiency_gain_concentrates_at_k2() {
    let eta: Vec<f64> = (1..=6)
        .map(|k| {
            let p_r = 1.0 - 0.5 / f64::from(k);
            EfficiencyModel::new(k, p_r)
                .unwrap()
                .sweep_order(SweepOrder::Ascending)
                .solve()
                .unwrap()
                .efficiency
        })
        .collect();
    let gain12 = eta[1] - eta[0];
    let late_gains: f64 = eta[3..].windows(2).map(|w| w[1] - w[0]).sum::<f64>() / 2.0;
    assert!(gain12 > 0.0, "{eta:?}");
    assert!(
        late_gains < gain12,
        "late gains {late_gains:.3} should trail the k=1→2 gain {gain12:.3}: {eta:?}"
    );
}

fn stability_run(pieces: u32) -> (u64, u64, f64) {
    // Scaled-down §6 scenario: skewed start, heavy arrivals.
    let config = SwarmConfig::builder()
        .pieces(pieces)
        .max_connections(3)
        .neighbor_set_size(10)
        .arrival_rate(10.0)
        .initial_leechers(150)
        .initial_pieces(InitialPieces::Skewed {
            count: (pieces / 3).max(1),
            strength: 0.25,
        })
        .max_rounds(120)
        .seed(5)
        .build()
        .expect("valid config");
    let metrics = Swarm::new(config).run();
    let start_pop = metrics.population[0].1;
    let end_pop = metrics.final_population();
    let tail = &metrics.entropy[metrics.entropy.len() / 2..];
    let tail_entropy = tail.iter().map(|&(_, e)| e).sum::<f64>() / tail.len() as f64;
    (start_pop, end_pop, tail_entropy)
}

/// Fig. 4(b): with too few pieces the population grows without bound;
/// with enough pieces the swarm absorbs the same arrival load.
#[test]
fn small_b_population_diverges_large_b_stabilizes() {
    let (start3, end3, _) = stability_run(3);
    let (_, end10, _) = stability_run(10);
    assert!(
        end3 > start3 * 2,
        "B=3 population should blow up: {start3} -> {end3}"
    );
    assert!(
        end10 < end3 / 4,
        "B=10 population ({end10}) should stay far below B=3 ({end3})"
    );
}

/// Fig. 4(c): entropy collapses for B=3 and recovers for B=10.
#[test]
fn entropy_discriminates_piece_count() {
    let (_, _, entropy3) = stability_run(3);
    let (_, _, entropy10) = stability_run(10);
    assert!(
        entropy3 < 0.1,
        "B=3 entropy should collapse, got {entropy3}"
    );
    assert!(
        entropy10 > entropy3 + 0.2,
        "B=10 entropy ({entropy10}) should recover well above B=3 ({entropy3})"
    );
}

/// Fig. 4(d): shaking the peer set reduces the download time of the last
/// pieces (scaled down to B=60).
#[test]
fn shake_reduces_last_piece_times() {
    let run = |shake: bool| {
        let mut builder = SwarmConfig::builder();
        builder
            .pieces(60)
            .max_connections(4)
            .neighbor_set_size(4)
            .arrival_rate(1.0)
            .initial_leechers(25)
            .seed_uploads_per_round(1)
            .join_eviction(false)
            .max_rounds(2_000)
            .stop_after_completions(25)
            .seed(6);
        if shake {
            builder.shake_at(0.9);
        }
        let metrics = Swarm::new(builder.build().expect("valid config")).run();
        let gaps = metrics.mean_inter_piece_times(60);
        let tail: Vec<f64> = (55..=60).map(|j| gaps[j]).filter(|v| !v.is_nan()).collect();
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    let normal = run(false);
    let shaken = run(true);
    assert!(
        shaken < normal,
        "shake tail {shaken:.2} should beat normal {normal:.2}"
    );
}

/// Fig. 1: a larger peer-set size never slows the swarm down.
#[test]
fn peer_set_size_helps_downloads() {
    let mean_rounds = |s: u32| {
        let config = SwarmConfig::builder()
            .pieces(40)
            .max_connections(4)
            .neighbor_set_size(s)
            .arrival_rate(1.5)
            .initial_leechers(20)
            .max_rounds(300)
            .stop_after_completions(120)
            .seed(7)
            .build()
            .expect("valid config");
        Swarm::new(config).run().mean_download_rounds()
    };
    let small = mean_rounds(2);
    let large = mean_rounds(16);
    assert!(
        large <= small,
        "s=16 ({large:.1}) should not be slower than s=2 ({small:.1})"
    );
}
