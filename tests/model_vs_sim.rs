//! Cross-crate validation: the analytical model against the protocol
//! simulator on matched, scaled-down configurations.

use multiphase_bt::des::SeedStream;
use multiphase_bt::model::evolution::expected_timeline;
use multiphase_bt::model::ModelParams;
use multiphase_bt::swarm::{Swarm, SwarmConfig};

/// Runs a small matched pair and returns (sim mean rounds, model mean
/// rounds).
fn matched_download_times(pieces: u32, k: u32, s: u32, seed: u64) -> (f64, f64) {
    let config = SwarmConfig::builder()
        .pieces(pieces)
        .max_connections(k)
        .neighbor_set_size(s)
        .arrival_rate(1.5)
        .initial_leechers(20)
        .max_rounds(400)
        .stop_after_completions(150)
        .seed(seed)
        .build()
        .expect("valid config");
    let metrics = Swarm::new(config).run();
    let sim = metrics.mean_download_rounds();
    let params = ModelParams::builder()
        .pieces(pieces)
        .max_connections(k)
        .neighbor_set_size(s)
        .p_init(0.5)
        .alpha(0.3)
        .gamma(0.15)
        .build()
        .expect("valid params");
    let tl = expected_timeline(&params, 200, SeedStream::new(seed).rng("mvs", 0))
        .expect("valid params yield a kernel");
    (sim, tl.mean_step[pieces as usize])
}

#[test]
fn model_tracks_simulation_within_factor_two() {
    let (sim, model) = matched_download_times(40, 4, 10, 1);
    assert!(sim.is_finite() && model.is_finite());
    let ratio = model / sim;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "model {model:.1} vs sim {sim:.1} (ratio {ratio:.2})"
    );
}

#[test]
fn both_sides_speed_up_with_k() {
    let (sim_k1, model_k1) = matched_download_times(30, 1, 8, 2);
    let (sim_k4, model_k4) = matched_download_times(30, 4, 8, 2);
    assert!(
        sim_k4 < sim_k1,
        "sim: k=4 ({sim_k4:.1}) must beat k=1 ({sim_k1:.1})"
    );
    assert!(
        model_k4 < model_k1,
        "model: k=4 ({model_k4:.1}) must beat k=1 ({model_k1:.1})"
    );
}

#[test]
fn model_potential_ratio_matches_sim_shape() {
    // Both sides: the potential/neighbor ratio is depressed at the very
    // start of the download relative to the middle.
    let config = SwarmConfig::builder()
        .pieces(40)
        .max_connections(4)
        .neighbor_set_size(8)
        .arrival_rate(1.5)
        .initial_leechers(20)
        .max_rounds(300)
        .metrics_warmup_rounds(40)
        .seed(3)
        .build()
        .expect("valid config");
    let metrics = Swarm::new(config).run();
    let sim_ratio = metrics.potential_ratio_by_pieces(8);
    let early = sim_ratio[1];
    let mid = sim_ratio[20];
    assert!(
        early < mid,
        "sim: early ratio {early:.2} should sit below mid ratio {mid:.2}"
    );

    let params = ModelParams::builder()
        .pieces(40)
        .max_connections(4)
        .neighbor_set_size(8)
        .p_init(0.4)
        .build()
        .expect("valid params");
    let tl = expected_timeline(&params, 150, SeedStream::new(3).rng("ratio", 0))
        .expect("valid params yield a kernel");
    let ratios = tl.potential_ratio(8);
    assert!(
        ratios[1] < ratios[20],
        "model: early ratio {:.2} should sit below mid ratio {:.2}",
        ratios[1],
        ratios[20]
    );
}
