//! The [`Strategy`] trait and primitive strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleRange, Standard};

/// The RNG handed to strategies (the vendored `StdRng`).
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree / shrinking: `generate`
/// produces a finished value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            func: f,
        }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            strategy: self,
            func: f,
        }
    }
}

/// Strategy yielding values from `T`'s standard distribution.
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

/// Generates any value of `T` (uniform over the full domain for
/// integers).
#[must_use]
pub fn any<T: Standard>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Strategy always yielding a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.strategy.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    strategy: S,
    func: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.func)(self.strategy.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(S0.0);
impl_strategy_tuple!(S0.0, S1.1);
impl_strategy_tuple!(S0.0, S1.1, S2.2);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
