//! Boolean strategies.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// Strategy producing a fair coin flip.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// Generates `true` or `false` with equal probability.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}
