//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate as prop;
pub use crate::strategy::{any, Any, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
