//! Collection strategies (`vec`, `btree_set`) and the [`SizeRange`]
//! length specification.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// A length specification: an exact `usize` or a `usize` range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        if self.min >= self.max_inclusive {
            self.min
        } else {
            rng.gen_range(self.min..=self.max_inclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with element strategy `S`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates ordered sets of up to the sampled size (duplicates
/// collapse, so the set can come out smaller — upstream retries instead,
/// a distinction none of the workspace's tests depend on).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
