//! Case generation and the pass/fail/reject bookkeeping behind
//! `proptest!`.

use crate::strategy::{Strategy, TestRng};
use rand::SeedableRng;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration requiring `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps debug-mode suites snappy
        // while still exercising varied inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// An assumption failed — the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failing-case error.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded-case marker.
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `test` against `config.cases` generated inputs, panicking on the
/// first failure. Deterministic: the RNG seed derives from `name`.
///
/// # Panics
///
/// On the first failing case, or when the reject budget is exhausted.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(fnv1a(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let reject_budget = 4096 + config.cases.saturating_mul(16);
    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing case(s): {message}"
                );
            }
            Err(TestCaseError::Reject(message)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "proptest `{name}`: too many rejected cases ({rejected}); last: {message}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0;
        run(
            &ProptestConfig::with_cases(10),
            "count",
            0u32..5,
            |x| {
                count += 1;
                assert!(x < 5);
                Ok(())
            },
        );
        assert_eq!(count, 10);
    }

    #[test]
    fn rejects_do_not_count() {
        let mut passed = 0;
        run(
            &ProptestConfig::with_cases(8),
            "rejects",
            0u32..10,
            |x| {
                if x < 5 {
                    return Err(TestCaseError::reject("x < 5"));
                }
                passed += 1;
                Ok(())
            },
        );
        assert_eq!(passed, 8);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        run(&ProptestConfig::with_cases(4), "fails", 0u32..10, |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
