//! Minimal, offline stand-in for `proptest`.
//!
//! Supports the subset this repository's property tests use: range and
//! `any::<T>()` strategies, tuples of strategies, `prop_map` /
//! `prop_flat_map`, `prop::collection::{vec, btree_set}`,
//! `prop::bool::ANY`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Unlike upstream there is **no shrinking**: a failing case panics with
//! the test name and case number. Case generation is deterministic — the
//! RNG is seeded from the test name, so failures reproduce exactly across
//! runs.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, FlatMap, Just, Map, Strategy, TestRng};

/// The body of `proptest! { ... }` blocks. Each test function's
/// parameters (`pat in strategy`) become one tuple strategy; the body
/// runs once per generated case inside a closure returning
/// `Result<(), TestCaseError>` so `prop_assert!`/`prop_assume!` can
/// early-return.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = $config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    ($($strat,)+),
                    |($($pat,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case (with early return) if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (without failing) if the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(concat!(
                    "assumption failed: ",
                    stringify!($cond)
                )),
            );
        }
    };
}
