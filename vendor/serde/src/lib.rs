//! Minimal, offline stand-in for `serde` built around a single
//! self-describing [`Value`] tree instead of upstream's visitor model.
//!
//! The workspace builds in environments with no crates.io access, so this
//! vendor crate supplies just what the repository uses: the
//! [`Serialize`]/[`Deserialize`] traits, derive macros (re-exported from
//! the companion `serde_derive` stub), and impls for the primitive and
//! container types that appear in the data structures. `serde_json` (also
//! vendored) renders [`Value`] trees to JSON text and parses them back.
//!
//! Differences from upstream that matter here:
//! * serialization goes through an intermediate [`Value`] — fine at the
//!   data volumes of simulation results;
//! * enums use the same externally-tagged representation as real serde,
//!   so the JSON wire format matches what upstream would emit;
//! * `f64::NAN` survives a round-trip as JSON `null` (upstream serializes
//!   non-finite floats as `null` and then refuses to read them back).

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of data — the interchange point between the
/// [`Serialize`]/[`Deserialize`] traits and concrete formats.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative values land here).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The entries of an object, if this is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// Numeric contents as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Numeric contents as `f64`, if numeric.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The boolean contents, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            // Numeric comparison across Int/UInt representations.
            (a, b) => match (a.as_i64(), b.as_i64(), a.as_u64(), b.as_u64()) {
                (Some(x), Some(y), _, _) => x == y,
                (_, _, Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a custom message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// A required field was absent.
    #[must_use]
    pub fn missing_field(field: &str) -> Self {
        DeError::custom(format!("missing field `{field}`"))
    }

    /// A value had the wrong shape for the target type.
    #[must_use]
    pub fn invalid_type(expected: &str, found: &Value) -> Self {
        DeError::custom(format!("expected {expected}, found {}", found.kind()))
    }

    /// An enum tag matched no variant of the target type.
    #[must_use]
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError::custom(format!("unknown variant `{tag}` of enum {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Construction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from `value`.
    ///
    /// # Errors
    ///
    /// [`DeError`] when `value` has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the input. The default
    /// rejects; `Option<T>` overrides it to produce `None`.
    ///
    /// # Errors
    ///
    /// [`DeError::missing_field`] unless overridden.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

/// Field lookup helper used by derive-generated code.
#[must_use]
pub fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::invalid_type("bool", value))
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::invalid_type("unsigned integer", value))?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::invalid_type("integer", value))?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            // Non-finite floats serialize as null; read them back as NaN so
            // metric structs containing NaN round-trip.
            Value::Null => Ok(f64::NAN),
            _ => value
                .as_f64()
                .ok_or_else(|| DeError::invalid_type("number", value)),
        }
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::invalid_type("string", value))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            _ => T::from_value(value).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::invalid_type("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {len}")))
    }
}

fn tuple_items(value: &Value, arity: usize) -> Result<&[Value], DeError> {
    let items = value
        .as_array()
        .ok_or_else(|| DeError::invalid_type("array", value))?;
    if items.len() == arity {
        Ok(items)
    } else {
        Err(DeError::custom(format!(
            "expected tuple of length {arity}, found array of length {}",
            items.len()
        )))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = tuple_items(value, 2)?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = tuple_items(value, 3)?;
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_get_on_object() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }

    #[test]
    fn cross_representation_numeric_eq() {
        assert_eq!(Value::Int(5), Value::UInt(5));
        assert_ne!(Value::Int(-5), Value::UInt(5));
    }

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::UInt(3)).unwrap(),
            Some(3)
        );
        assert_eq!(Option::<u32>::from_missing("x").unwrap(), None);
        assert!(u32::from_missing("x").is_err());
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(u8::from_value(&Value::UInt(250)).unwrap(), 250);
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert_eq!(i64::from_value(&Value::UInt(7)).unwrap(), 7);
    }

    #[test]
    fn floats_accept_integers_and_null() {
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        let arr = [1.0f64, 2.0, 3.0];
        let v = arr.to_value();
        assert_eq!(<[f64; 3]>::from_value(&v).unwrap(), arr);
        assert!(<[f64; 2]>::from_value(&v).is_err());

        let pair = (3u64, 0.5f64);
        let v = pair.to_value();
        assert_eq!(<(u64, f64)>::from_value(&v).unwrap(), pair);
    }
}
