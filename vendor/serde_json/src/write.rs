//! JSON text rendering (compact and pretty).

use serde::Value;

pub(crate) fn compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => push_float(*f, out),
        Value::Str(s) => push_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(key, out);
                out.push(':');
                compact(item, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn pretty(value: &Value, depth: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                push_escaped(key, out);
                out.push_str(": ");
                pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn push_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn push_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip representation; it always
        // includes a decimal point or exponent, so the value re-parses as
        // a float.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
