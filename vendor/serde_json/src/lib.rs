//! Minimal, offline stand-in for `serde_json` over the vendored `serde`
//! stub's [`Value`] data model.
//!
//! Provides the entry points this repository uses — [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], [`from_slice`] —
//! plus the [`Value`] re-export for schema-free inspection. Formatting
//! matches real `serde_json` closely enough for line-oriented tooling:
//! two-space pretty indentation, `{:?}`-shortest float rendering (which
//! round-trips), and non-finite floats serialized as `null`.

mod read;
mod write;

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};

/// Errors from serialization, deserialization, or the underlying writer.
#[derive(Debug)]
pub enum Error {
    /// The input text was not valid JSON.
    Syntax {
        /// Description of the problem.
        message: String,
        /// Byte offset where it was detected.
        offset: usize,
    },
    /// The JSON was valid but did not match the target type.
    Data(DeError),
    /// The destination writer failed.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Syntax { message, offset } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            Error::Data(e) => write!(f, "JSON data error: {e}"),
            Error::Io(e) => write!(f, "JSON i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Syntax { .. } => None,
            Error::Data(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::Data(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Currently infallible (the `Result` mirrors upstream's signature).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
///
/// # Errors
///
/// Currently infallible (the `Result` mirrors upstream's signature).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write::pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// [`Error::Io`] if the writer fails.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// [`Error::Syntax`] for malformed JSON, [`Error::Data`] when the JSON
/// does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = read::parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses a value of type `T` from JSON bytes (must be UTF-8).
///
/// # Errors
///
/// Same conditions as [`from_str`], plus a syntax error for invalid
/// UTF-8.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::Syntax {
        message: format!("invalid UTF-8: {e}"),
        offset: e.valid_up_to(),
    })?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 0.5f64), (2, 1.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,1.5]]");
        assert_eq!(from_str::<Vec<(u64, f64)>>(&json).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1f600}\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        // Surrogate pair.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1f600}"
        );
    }

    #[test]
    fn value_inspection() {
        let v: Value = from_str("{\"a\": [1, 2], \"b\": {\"c\": null}}").unwrap();
        assert!(v.get("a").is_some());
        assert!(v.get("b").and_then(|b| b.get("c")).is_some());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn pretty_output_shape() {
        let v: Value = from_str("{\"a\":1,\"b\":[true]}").unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        let v: Value = from_str("{\"a\":[],\"b\":{}}").unwrap();
        assert_eq!(to_string(&v).unwrap(), "{\"a\":[],\"b\":{}}");
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(from_str::<Value>("{not json}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn data_errors_reported() {
        assert!(matches!(from_str::<u32>("\"nope\""), Err(Error::Data(_))));
        assert!(matches!(from_str::<u32>("-3"), Err(Error::Data(_))));
    }

    #[test]
    fn large_integers_preserved() {
        let big = u64::MAX;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
        let neg = i64::MIN;
        let json = to_string(&neg).unwrap();
        assert_eq!(from_str::<i64>(&json).unwrap(), neg);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e300, 5e-324, 123456.789] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn to_writer_writes_bytes() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u32, 2]).unwrap();
        assert_eq!(buf, b"[1,2]");
    }
}
