//! A recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::Value;

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Syntax {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{keyword}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it came from &str) and this run
                // ends on an ASCII delimiter, so it splits on a char
                // boundary... unless the run ended mid-multibyte at a
                // non-ASCII continuation byte, which the loop above never
                // does because continuation bytes are >= 0x20 and keep the
                // run going. Safe to slice.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a following \uXXXX low half.
                    self.expect(b'\\')?;
                    self.expect(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            other => return Err(self.err(format!("invalid escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number chars are ASCII");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Out of integer range: fall through to float.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}
