//! Minimal, offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition API this repository's benches use
//! (`Criterion::benchmark_group`, `bench_function`, `sample_size`,
//! `iter`, and the `criterion_group!`/`criterion_main!` macros) with a
//! simple timing harness: each benchmark is warmed up once, then run for
//! `samples` batches whose per-iteration mean and minimum are printed.
//! There is no statistical analysis, HTML report, or saved baseline —
//! the point is that `cargo bench` builds, runs, and prints comparable
//! per-iteration numbers without network access.

use std::time::{Duration, Instant};

/// Top-level benchmark context, handed to each `criterion_group!` target.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f` and prints per-iteration statistics.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            samples: self.samples,
            total: Duration::ZERO,
            iters: 0,
            best: Duration::MAX,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_secs_f64() * 1e9 / bencher.iters as f64
        };
        let best_ns = if bencher.best == Duration::MAX {
            0.0
        } else {
            bencher.best.as_secs_f64() * 1e9
        };
        println!(
            "bench {group}/{name}: mean {mean_ns:.1} ns/iter (best {best_ns:.1} ns, {iters} iters)",
            group = self.name,
            iters = bencher.iters,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(&mut self) {}
}

/// Runs the measured closure and accumulates timing.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
    best: Duration,
}

impl Bencher {
    /// Measures `f`, called once per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed) and a cheap calibration of how many
        // iterations fit a sample.
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let once = warmup_start.elapsed();
        let per_sample = if once >= Duration::from_millis(10) {
            1
        } else {
            // Aim for ~2ms of work per sample.
            (2_000_000 / once.as_nanos().max(50)).clamp(1, 10_000) as u64
        };
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += per_sample;
            let per_iter = elapsed / u32::try_from(per_sample).unwrap_or(u32::MAX);
            if per_iter < self.best {
                self.best = per_iter;
            }
        }
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produces `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Opaque value sink (re-exported by upstream; benches here use
/// `std::hint::black_box` directly, but the symbol is kept for
/// compatibility).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}
