//! Minimal, offline stand-in for the `tracing` facade.
//!
//! A single global [`Subscriber`] receives structured events and span
//! closures. The design goal is the same as upstream's: **disabled
//! instrumentation must cost almost nothing**. Every macro first checks
//! one relaxed atomic (the maximum enabled level); only when that passes
//! are field values converted and the message formatted.
//!
//! Syntax differences from upstream (all call sites live in this
//! workspace): structured fields are separated from the message by `;`
//! rather than `,` —
//!
//! ```ignore
//! info!(target: "bt_swarm::round", round = r, peers = n; "round done");
//! ```
//!
//! Spans are plain RAII timers: `let _g = info_span!("run").entered();`
//! reports its wall-clock duration to the subscriber on drop. There is
//! no span context propagation or per-span field storage.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Event/span severity, ordered from most to least urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or clearly wrong conditions.
    Error = 1,
    /// Suspicious conditions worth surfacing by default.
    Warn = 2,
    /// High-level progress of a run.
    Info = 3,
    /// Per-phase and per-decision detail.
    Debug = 4,
    /// Per-event firehose (e.g. every DES dispatch).
    Trace = 5,
}

impl Level {
    /// Uppercase name, as conventionally logged.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses a (case-insensitive) level name, `"off"` as `None`.
    #[must_use]
    pub fn parse(text: &str) -> Option<Option<Level>> {
        match text.to_ascii_lowercase().as_str() {
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed structured-field value, converted only for enabled events.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Boolean field.
    Bool(bool),
    /// Signed integer field.
    I64(i64),
    /// Unsigned integer field.
    U64(u64),
    /// Floating-point field.
    F64(f64),
    /// String field.
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

macro_rules! impl_field_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::U64(v as u64)
            }
        }
    )*};
}

impl_field_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_field_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::I64(v as i64)
            }
        }
    )*};
}

impl_field_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Receiver of events and span closures. Implementations must be
/// thread-safe; one global instance serves the whole process.
pub trait Subscriber: Send + Sync {
    /// Fine-grained filter, consulted after the global max-level gate.
    fn enabled(&self, level: Level, target: &str) -> bool;

    /// One structured log event.
    fn event(&self, level: Level, target: &str, message: &str, fields: &[(&'static str, FieldValue)]);

    /// A span closed after running for `elapsed`.
    fn span_close(&self, level: Level, target: &str, name: &str, elapsed: Duration) {
        let _ = (level, target, name, elapsed);
    }
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Installs the process-global subscriber. `max_level` is the coarse
/// gate checked by every macro before anything else happens; `None`
/// disables all instrumentation. Returns `false` (and changes nothing)
/// if a subscriber was already installed.
pub fn set_global_subscriber(subscriber: Box<dyn Subscriber>, max_level: Option<Level>) -> bool {
    if SUBSCRIBER.set(subscriber).is_err() {
        return false;
    }
    MAX_LEVEL.store(max_level.map_or(0, |l| l as u8), Ordering::Relaxed);
    true
}

/// Whether any subscriber wants events at `level` (the fast path).
#[inline]
#[must_use]
pub fn level_enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Delivers an event to the subscriber. Called by the macros after
/// [`level_enabled`] passed; not intended for direct use.
#[doc(hidden)]
pub fn dispatch_event(
    level: Level,
    target: &str,
    message: std::fmt::Arguments<'_>,
    fields: &[(&'static str, FieldValue)],
) {
    if let Some(subscriber) = SUBSCRIBER.get() {
        if subscriber.enabled(level, target) {
            let rendered;
            let text = match message.as_str() {
                Some(static_text) => static_text,
                None => {
                    rendered = message.to_string();
                    &rendered
                }
            };
            subscriber.event(level, target, text, fields);
        }
    }
}

/// An inert or pending span handle produced by the `*_span!` macros.
#[must_use = "a span does nothing unless `.entered()`"]
pub struct Span {
    data: Option<(Level, &'static str, &'static str)>,
}

impl Span {
    /// Creates a span handle; inert when `level` is disabled.
    #[doc(hidden)]
    pub fn new(level: Level, target: &'static str, name: &'static str) -> Self {
        let enabled = level_enabled(level)
            && SUBSCRIBER
                .get()
                .is_some_and(|s| s.enabled(level, target));
        Span {
            data: enabled.then_some((level, target, name)),
        }
    }

    /// Starts timing; the returned guard reports on drop.
    pub fn entered(self) -> EnteredSpan {
        EnteredSpan {
            data: self.data.map(|d| (d, Instant::now())),
        }
    }
}

/// RAII guard: reports the span's wall-clock duration when dropped.
pub struct EnteredSpan {
    data: Option<((Level, &'static str, &'static str), Instant)>,
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        if let Some(((level, target, name), start)) = self.data.take() {
            if let Some(subscriber) = SUBSCRIBER.get() {
                subscriber.span_close(level, target, name, start.elapsed());
            }
        }
    }
}

/// Emits an event at an explicit level. Prefer the level-named macros.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $target:expr, $($key:ident = $value:expr),+ ; $($fmt:tt)+) => {{
        if $crate::level_enabled($lvl) {
            $crate::dispatch_event(
                $lvl,
                $target,
                ::core::format_args!($($fmt)+),
                &[$((stringify!($key), $crate::FieldValue::from($value)),)+],
            );
        }
    }};
    ($lvl:expr, $target:expr, $($fmt:tt)+) => {{
        if $crate::level_enabled($lvl) {
            $crate::dispatch_event($lvl, $target, ::core::format_args!($($fmt)+), &[]);
        }
    }};
}

/// Emits an [`Level::Error`] event.
#[macro_export]
macro_rules! error {
    (target: $target:expr, $($rest:tt)+) => {
        $crate::event!($crate::Level::Error, $target, $($rest)+)
    };
    ($($rest:tt)+) => {
        $crate::event!($crate::Level::Error, ::core::module_path!(), $($rest)+)
    };
}

/// Emits a [`Level::Warn`] event.
#[macro_export]
macro_rules! warn {
    (target: $target:expr, $($rest:tt)+) => {
        $crate::event!($crate::Level::Warn, $target, $($rest)+)
    };
    ($($rest:tt)+) => {
        $crate::event!($crate::Level::Warn, ::core::module_path!(), $($rest)+)
    };
}

/// Emits an [`Level::Info`] event.
#[macro_export]
macro_rules! info {
    (target: $target:expr, $($rest:tt)+) => {
        $crate::event!($crate::Level::Info, $target, $($rest)+)
    };
    ($($rest:tt)+) => {
        $crate::event!($crate::Level::Info, ::core::module_path!(), $($rest)+)
    };
}

/// Emits a [`Level::Debug`] event.
#[macro_export]
macro_rules! debug {
    (target: $target:expr, $($rest:tt)+) => {
        $crate::event!($crate::Level::Debug, $target, $($rest)+)
    };
    ($($rest:tt)+) => {
        $crate::event!($crate::Level::Debug, ::core::module_path!(), $($rest)+)
    };
}

/// Emits a [`Level::Trace`] event.
#[macro_export]
macro_rules! trace {
    (target: $target:expr, $($rest:tt)+) => {
        $crate::event!($crate::Level::Trace, $target, $($rest)+)
    };
    ($($rest:tt)+) => {
        $crate::event!($crate::Level::Trace, ::core::module_path!(), $($rest)+)
    };
}

/// Creates a [`Span`] at an explicit level.
#[macro_export]
macro_rules! span {
    ($lvl:expr, target: $target:expr, $name:expr) => {
        $crate::Span::new($lvl, $target, $name)
    };
    ($lvl:expr, $name:expr) => {
        $crate::Span::new($lvl, ::core::module_path!(), $name)
    };
}

/// Creates an [`Level::Info`] span.
#[macro_export]
macro_rules! info_span {
    ($($rest:tt)+) => { $crate::span!($crate::Level::Info, $($rest)+) };
}

/// Creates a [`Level::Debug`] span.
#[macro_export]
macro_rules! debug_span {
    ($($rest:tt)+) => { $crate::span!($crate::Level::Debug, $($rest)+) };
}

/// Creates a [`Level::Trace`] span.
#[macro_export]
macro_rules! trace_span {
    ($($rest:tt)+) => { $crate::span!($crate::Level::Trace, $($rest)+) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Capture {
        events: Mutex<Vec<(Level, String, String, usize)>>,
        spans: Mutex<Vec<String>>,
    }

    impl Subscriber for Capture {
        fn enabled(&self, _level: Level, target: &str) -> bool {
            target != "muted"
        }

        fn event(
            &self,
            level: Level,
            target: &str,
            message: &str,
            fields: &[(&'static str, FieldValue)],
        ) {
            self.events.lock().unwrap().push((
                level,
                target.to_string(),
                message.to_string(),
                fields.len(),
            ));
        }

        fn span_close(&self, _level: Level, _target: &str, name: &str, _elapsed: Duration) {
            self.spans.lock().unwrap().push(name.to_string());
        }
    }

    // One process-global subscriber, so everything is exercised in a
    // single test.
    #[test]
    fn facade_end_to_end() {
        assert!(!level_enabled(Level::Error), "quiet before install");
        info!(target: "pre", "dropped before install");

        static CAPTURE: OnceLock<&'static Capture> = OnceLock::new();
        let capture: &'static Capture = Box::leak(Box::new(Capture {
            events: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
        }));
        assert!(CAPTURE.set(capture).is_ok());

        struct Forward;
        impl Subscriber for Forward {
            fn enabled(&self, level: Level, target: &str) -> bool {
                CAPTURE.get().unwrap().enabled(level, target)
            }
            fn event(
                &self,
                level: Level,
                target: &str,
                message: &str,
                fields: &[(&'static str, FieldValue)],
            ) {
                CAPTURE.get().unwrap().event(level, target, message, fields);
            }
            fn span_close(&self, level: Level, target: &str, name: &str, elapsed: Duration) {
                CAPTURE.get().unwrap().span_close(level, target, name, elapsed);
            }
        }

        assert!(set_global_subscriber(Box::new(Forward), Some(Level::Debug)));
        assert!(
            !set_global_subscriber(Box::new(Forward), Some(Level::Trace)),
            "second install rejected"
        );

        assert!(level_enabled(Level::Debug));
        assert!(!level_enabled(Level::Trace));

        info!(target: "t1", count = 3u64, rate = 0.5; "formatted {}", 42);
        debug!("no fields, default target");
        trace!(target: "t1", "below max level, dropped");
        info!(target: "muted", "subscriber filter drops this");

        {
            let _guard = debug_span!(target: "t1", "phase").entered();
        }
        {
            // Inert: trace is above the max level.
            let _guard = trace_span!("quiet_span").entered();
        }

        let events = capture.events.lock().unwrap();
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].0, Level::Info);
        assert_eq!(events[0].1, "t1");
        assert_eq!(events[0].2, "formatted 42");
        assert_eq!(events[0].3, 2);
        assert_eq!(events[1].2, "no fields, default target");
        assert!(events[1].1.contains("tracing"), "module path target");

        let spans = capture.spans.lock().unwrap();
        assert_eq!(spans.as_slice(), ["phase"]);
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i64), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::U64(7).to_string(), "7");
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
    }
}
