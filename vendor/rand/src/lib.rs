//! Minimal, offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` APIs the repository actually uses are vendored here:
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`), and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and of ample statistical quality for
//! simulation work. Stream values differ from upstream `rand`; all
//! experiments in this repository treat the seed-to-stream mapping as an
//! implementation detail.

pub mod rngs;
mod uniform;

pub use uniform::SampleRange;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the full domain for integers, `[0, 1)` for floats,
    /// fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (`rand`'s `Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type (`[u8; 32]` for [`rngs::StdRng`]).
    type Seed;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_integers_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_range_floats() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&x));
            let y = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn from_seed_uses_all_words() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut a = StdRng::from_seed(seed);
        seed[31] = 1;
        let mut b = StdRng::from_seed(seed);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            f64::sample_standard(rng)
        }
        let mut rng = StdRng::seed_from_u64(17);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
