//! Range sampling for `Rng::gen_range`, mirroring the shape (not the
//! internals) of `rand::distributions::uniform`.
//!
//! `SampleRange` has exactly one blanket impl per range shape over a
//! `SampleUniform` element trait — the same structure upstream uses.
//! This matters for inference: with per-type impls, an unsuffixed
//! literal range like `-0.1..0.1` would match several candidates and
//! the `{float}` inference variable could not flow outward.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Ranges that `Rng::gen_range` accepts (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniform-samplable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`). The range is non-empty.
    fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: $t,
                high: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    if low == 0 && high as u64 == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (high - low) as u64 + 1;
                    low + (sample_below(rng, span) as $t)
                } else {
                    let span = (high - low) as u64;
                    low + (sample_below(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: $t,
                high: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span_minus_one = (high as i128 - low as i128) as u64 - u64::from(!inclusive);
                if inclusive && span_minus_one == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as i128 + sample_below(rng, span_minus_one + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: $t,
                high: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let unit = <$t as crate::Standard>::sample_standard(rng);
                let x = low + unit * (high - low);
                if inclusive || x < high {
                    x
                } else {
                    // Guard against rounding up to the excluded endpoint.
                    <$t>::from_bits(high.to_bits() - 1)
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform draw from `[0, span)` via Lemire-style widening multiply with
/// rejection, avoiding modulo bias.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        let low = wide as u64;
        if low >= threshold {
            return (wide >> 64) as u64;
        }
    }
}
