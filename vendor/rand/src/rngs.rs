//! Concrete generators. Only [`StdRng`] is provided: a xoshiro256++
//! generator, which is what this repository's simulations need.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard PRNG (xoshiro256++).
///
/// API-compatible with `rand::rngs::StdRng` for the subset this
/// repository uses; the output stream differs from upstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut seed_state: u64) -> Self {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut seed_state);
        }
        // All-zero state is a fixed point for xoshiro; splitmix64 cannot
        // produce four zero outputs in a row, so `s` is already valid.
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // Mix all 32 bytes into one state word, then expand; keeps every
        // seed byte significant without requiring full-entropy handling.
        let mut acc = 0x6A09_E667_F3BC_C909u64;
        for chunk in seed.chunks_exact(8) {
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            acc = splitmix64(&mut acc) ^ word;
        }
        StdRng::from_state(acc)
    }

    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_state(state)
    }
}
