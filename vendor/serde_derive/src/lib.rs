//! Minimal, offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde` crate's simplified
//! `Serialize`/`Deserialize` traits (which convert through a `Value`
//! tree) for the type shapes this repository actually uses:
//!
//! * structs with named fields (`#[serde(default)]` honored per field);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * enums with unit, named-field, and tuple variants, using serde's
//!   externally-tagged representation.
//!
//! Generics, lifetimes, and the rest of serde's attribute language are
//! unsupported and rejected with a compile error. The parser walks raw
//! `TokenTree`s (no `syn`/`quote`, which are unavailable offline) and the
//! generated impl is produced as a string and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => panic!("serde_derive stub: unit struct `{name}` is not supported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde_derive stub: malformed enum `{name}`"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        *i += 1; // [...]
    }
}

/// Skips attributes, returning whether any was `#[serde(default)]`.
fn scan_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(attr)) = tokens.get(*i) {
            default |= attr_is_serde_default(attr.stream());
        }
        *i += 1;
    }
    default
}

fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected identifier, found {other:?}"),
    }
}

/// Advances past a type (and an optional trailing comma). Commas nested in
/// angle brackets or groups do not terminate the type.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = scan_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip any discriminant up to the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn string_lit(s: &str) -> String {
    format!("\"{s}\"")
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({key}), ::serde::Serialize::to_value(&self.{field})),",
                        key = string_lit(&f.name),
                        field = f.name
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items = (0..*arity)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx}),"))
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let tag = string_lit(&variant.name);
    let vname = &variant.name;
    match &variant.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{vname} => \
                 ::serde::Value::Str(::std::string::String::from({tag})),\n"
        ),
        VariantKind::Named(fields) => {
            let bindings = fields
                .iter()
                .map(|f| format!("{},", f.name))
                .collect::<String>();
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({key}), ::serde::Serialize::to_value({field})),",
                        key = string_lit(&f.name),
                        field = f.name
                    )
                })
                .collect::<String>();
            format!(
                "{enum_name}::{vname} {{ {bindings} }} => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from({tag}), \
                     ::serde::Value::Object(::std::vec![{entries}])\
                 )]),\n"
            )
        }
        VariantKind::Tuple(arity) => {
            let bindings = (0..*arity)
                .map(|idx| format!("__f{idx},"))
                .collect::<String>();
            let inner = if *arity == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items = (0..*arity)
                    .map(|idx| format!("::serde::Serialize::to_value(__f{idx}),"))
                    .collect::<String>();
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "{enum_name}::{vname}({bindings}) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from({tag}), {inner}\
                 )]),\n"
            )
        }
    }
}

/// Generates the struct-literal field initializers reading from
/// `__entries` (a `&[(String, Value)]`).
fn named_field_inits(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            let key = string_lit(&f.name);
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("::serde::Deserialize::from_missing({key})?")
            };
            format!(
                "{field}: match ::serde::obj_get(__entries, {key}) {{\n\
                     ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                     ::std::option::Option::None => {missing},\n\
                 }},\n",
                field = f.name
            )
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct { name, fields } => {
            let inits = named_field_inits(fields);
            format!(
                "let __entries = match __value {{\n\
                     ::serde::Value::Object(__entries) => __entries.as_slice(),\n\
                     _ => return ::std::result::Result::Err(\
                         ::serde::DeError::invalid_type({expected}, __value)),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})",
                expected = string_lit(&format!("struct {name}"))
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Item::TupleStruct { name, arity } => {
            let items = (0..*arity)
                .map(|idx| format!("::serde::Deserialize::from_value(&__items[{idx}])?,"))
                .collect::<String>();
            format!(
                "let __items = match __value {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {arity} => __items,\n\
                     _ => return ::std::result::Result::Err(\
                         ::serde::DeError::invalid_type({expected}, __value)),\n\
                 }};\n\
                 ::std::result::Result::Ok({name}({items}))",
                expected = string_lit(&format!("{arity}-element array for struct {name}"))
            )
        }
        Item::Enum { name, variants } => gen_deserialize_enum(name, variants),
    };
    let name = match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "{tag} => ::std::result::Result::Ok({name}::{vname}),\n",
                tag = string_lit(&v.name),
                vname = v.name
            )
        })
        .collect::<String>();
    let tagged_arms = variants
        .iter()
        .map(|v| deserialize_tagged_arm(name, v))
        .collect::<String>();
    let expected = string_lit(&format!("enum {name}"));
    let enum_lit = string_lit(name);
    format!(
        "match __value {{\n\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant({enum_lit}, __other)),\n\
             }},\n\
             ::serde::Value::Object(__outer) if __outer.len() == 1 => {{\n\
                 let (__tag, __inner) = &__outer[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\
                     __other => ::std::result::Result::Err(\
                         ::serde::DeError::unknown_variant({enum_lit}, __other)),\n\
                 }}\n\
             }}\n\
             _ => ::std::result::Result::Err(\
                 ::serde::DeError::invalid_type({expected}, __value)),\n\
         }}"
    )
}

fn deserialize_tagged_arm(enum_name: &str, variant: &Variant) -> String {
    let tag = string_lit(&variant.name);
    let vname = &variant.name;
    match &variant.kind {
        VariantKind::Unit => {
            format!("{tag} => ::std::result::Result::Ok({enum_name}::{vname}),\n")
        }
        VariantKind::Named(fields) => {
            let inits = named_field_inits(fields);
            let expected = string_lit(&format!("fields of variant {vname}"));
            format!(
                "{tag} => {{\n\
                     let __entries = match __inner {{\n\
                         ::serde::Value::Object(__entries) => __entries.as_slice(),\n\
                         _ => return ::std::result::Result::Err(\
                             ::serde::DeError::invalid_type({expected}, __inner)),\n\
                     }};\n\
                     ::std::result::Result::Ok({enum_name}::{vname} {{ {inits} }})\n\
                 }}\n"
            )
        }
        VariantKind::Tuple(1) => format!(
            "{tag} => ::std::result::Result::Ok(\
                 {enum_name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
        ),
        VariantKind::Tuple(arity) => {
            let items = (0..*arity)
                .map(|idx| format!("::serde::Deserialize::from_value(&__items[{idx}])?,"))
                .collect::<String>();
            let expected = string_lit(&format!("{arity}-element array for variant {vname}"));
            format!(
                "{tag} => {{\n\
                     let __items = match __inner {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {arity} => __items,\n\
                         _ => return ::std::result::Result::Err(\
                             ::serde::DeError::invalid_type({expected}, __inner)),\n\
                     }};\n\
                     ::std::result::Result::Ok({enum_name}::{vname}({items}))\n\
                 }}\n"
            )
        }
    }
}
