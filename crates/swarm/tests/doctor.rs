//! Seeded-fault validation of the swarm doctor: each built-in fault
//! kind must trip exactly the monitors it targets, a healthy run must
//! stay clean, and a violating run must leave a complete diagnosis
//! bundle behind.
//!
//! The fault tests run a **no-progress** swarm (empty endowment,
//! bootstrap off, no seed uploads): nothing legitimate ever enters the
//! piece economy, so the injected corruption is the only signal and no
//! later departure can interact with it.

use bt_swarm::{
    BootstrapInjection, DoctorOptions, DoctorReport, FaultKind, FaultSpec, InitialPieces, Swarm,
    SwarmConfig,
};

/// A small healthy swarm with real piece flow, mirroring the
/// determinism suite's configuration.
fn live_config(seed: u64) -> SwarmConfig {
    SwarmConfig::builder()
        .pieces(16)
        .max_connections(4)
        .neighbor_set_size(8)
        .arrival_rate(0.8)
        .initial_leechers(10)
        .initial_pieces(InitialPieces::Random { count: 4 })
        .observers(3)
        .max_rounds(120)
        .seed(seed)
        .build()
        .expect("valid config")
}

/// A swarm where no piece is ever legitimately granted.
fn quiet_config(seed: u64) -> SwarmConfig {
    SwarmConfig::builder()
        .pieces(12)
        .max_connections(3)
        .neighbor_set_size(6)
        .arrival_rate(0.0)
        .initial_leechers(10)
        .initial_pieces(InitialPieces::Empty)
        .bootstrap(BootstrapInjection::Off)
        .seed_uploads_per_round(0)
        .observers(2)
        .max_rounds(40)
        .seed(seed)
        .build()
        .expect("valid config")
}

fn diagnose(
    config: SwarmConfig,
    fault: Option<FaultSpec>,
    bundle_root: Option<std::path::PathBuf>,
) -> DoctorReport {
    diagnose_threaded(config, fault, bundle_root, 1)
}

fn diagnose_threaded(
    config: SwarmConfig,
    fault: Option<FaultSpec>,
    bundle_root: Option<std::path::PathBuf>,
    threads: u32,
) -> DoctorReport {
    let mut swarm = Swarm::with_registry(config, bt_obs::Registry::new());
    swarm.set_threads(threads);
    swarm.attach_doctor(DoctorOptions {
        cadence: 1,
        bundle_root,
        run_id: "doctor-test".to_string(),
        ..DoctorOptions::default()
    });
    if let Some(fault) = fault {
        swarm.schedule_fault(fault);
    }
    let (_metrics, _profile, report) = swarm.run_diagnosed();
    report.expect("doctor was attached")
}

/// The distinct monitor names among a report's violations.
fn firing_monitors(report: &DoctorReport) -> Vec<String> {
    let mut names: Vec<String> = report
        .report
        .violations
        .iter()
        .map(|v| v.monitor.clone())
        .collect();
    names.sort();
    names.dedup();
    names
}

#[test]
fn healthy_run_is_clean() {
    let report = diagnose(live_config(42), None, None);
    assert!(report.report.checks > 0, "monitors sampled rounds");
    assert!(
        report.is_clean(),
        "healthy run tripped monitors: {:?}",
        report.report.violations
    );
    assert_eq!(report.bundle_dir, None, "clean runs write no bundle");
    assert_eq!(
        report.monitors,
        vec![
            "piece-conservation",
            "replication-oracle",
            "entropy-collapse",
            "phase-monotonic",
            "slot-balance"
        ],
        "the full battery ran"
    );
}

#[test]
fn unaccounted_piece_fires_conservation_and_oracle() {
    let report = diagnose(
        quiet_config(7),
        Some(FaultSpec {
            round: 5,
            kind: FaultKind::UnaccountedPiece,
        }),
        None,
    );
    assert!(!report.is_clean());
    let firing = firing_monitors(&report);
    assert!(
        firing.contains(&"piece-conservation".to_string()),
        "{firing:?}"
    );
    assert!(
        firing.contains(&"replication-oracle".to_string()),
        "{firing:?}"
    );
    assert!(
        !firing.contains(&"slot-balance".to_string()),
        "slot accounting is untouched by a piece fault: {firing:?}"
    );
    let first = &report.report.violations[0];
    assert!(first.round >= 5, "violation found at or after the fault");
}

#[test]
fn index_drift_fires_oracle_only() {
    let report = diagnose(
        quiet_config(7),
        Some(FaultSpec {
            round: 5,
            kind: FaultKind::IndexDrift,
        }),
        None,
    );
    assert!(!report.is_clean());
    assert_eq!(
        firing_monitors(&report),
        vec!["replication-oracle".to_string()],
        "drift with no possession is invisible to every other monitor"
    );
}

#[test]
fn half_open_connection_fires_slot_balance() {
    let report = diagnose(
        quiet_config(7),
        Some(FaultSpec {
            round: 5,
            kind: FaultKind::HalfOpenConnection,
        }),
        None,
    );
    assert!(!report.is_clean());
    let firing = firing_monitors(&report);
    assert!(firing.contains(&"slot-balance".to_string()), "{firing:?}");
    assert!(
        !firing.contains(&"piece-conservation".to_string()),
        "piece accounting is untouched by a connection fault: {firing:?}"
    );
}

#[test]
fn threaded_run_keeps_monitors_clean_and_catches_faults() {
    // A healthy run at --threads 8 must be as clean as the serial one —
    // the sharded plan phase introduces no accounting drift the
    // monitors could see...
    let clean = diagnose_threaded(live_config(42), None, None, 8);
    assert!(
        clean.is_clean(),
        "threaded healthy run tripped monitors: {:?}",
        clean.report.violations
    );
    // ...and an injected fault still fires the same monitors as serial:
    // parallelism neither masks corruption nor invents it.
    let faulty = diagnose_threaded(
        quiet_config(7),
        Some(FaultSpec {
            round: 5,
            kind: FaultKind::UnaccountedPiece,
        }),
        None,
        8,
    );
    assert!(!faulty.is_clean());
    let firing = firing_monitors(&faulty);
    assert!(
        firing.contains(&"piece-conservation".to_string()),
        "{firing:?}"
    );
    assert!(
        firing.contains(&"replication-oracle".to_string()),
        "{firing:?}"
    );
}

#[test]
fn violating_run_writes_a_complete_bundle() {
    let root = std::env::temp_dir().join("bt-swarm-doctor-bundle-test");
    let _ = std::fs::remove_dir_all(&root);
    let report = diagnose(
        quiet_config(7),
        Some(FaultSpec {
            round: 5,
            kind: FaultKind::UnaccountedPiece,
        }),
        Some(root.clone()),
    );
    let dir = report.bundle_dir.clone().expect("bundle was written");
    assert!(
        dir.starts_with(&root),
        "bundle lands under the configured root"
    );
    assert!(
        dir.file_name()
            .map(|n| n.to_string_lossy().starts_with("diagnosis-"))
            .unwrap_or(false),
        "{dir:?}"
    );
    for file in ["meta.json", "flight.json", "telemetry.jsonl", "peers.json"] {
        assert!(dir.join(file).exists(), "bundle is missing {file}");
    }
    let meta_text = std::fs::read_to_string(dir.join("meta.json")).unwrap();
    let meta: bt_swarm::monitors::BundleMeta = serde_json::from_str(&meta_text).unwrap();
    assert_eq!(meta.schema_version, bt_obs::MONITOR_SCHEMA_VERSION);
    assert_eq!(meta.run_id, "doctor-test");
    assert_eq!(meta.seed, 7);
    assert!(!meta.violations.is_empty());
    assert!(
        meta.violations
            .iter()
            .any(|v| v.monitor == "piece-conservation"),
        "{:?}",
        meta.violations
    );
    let peers_text = std::fs::read_to_string(dir.join("peers.json")).unwrap();
    let peers: Vec<bt_swarm::monitors::PeerSliceEntry> =
        serde_json::from_str(&peers_text).unwrap();
    assert!(!peers.is_empty(), "bundle captured a peer-state slice");
    let _ = std::fs::remove_dir_all(&root);
}
