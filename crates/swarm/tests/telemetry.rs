//! Integration tests of the per-round telemetry pipeline: stream/series
//! agreement with the engine's own metrics, online phase detection, and
//! the anomaly flight recorder.

use std::io::Write;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use bt_model::Phase;
use bt_swarm::telemetry::{
    read_records, write_records, FlightNote, PhaseEvent, TelemetryMeta, TelemetryRecord,
    TelemetrySample, TELEMETRY_SCHEMA_VERSION,
};
use bt_swarm::{
    FlightOptions, InitialPieces, Swarm, SwarmConfig, TelemetryOptions, TelemetryRecorder,
};

/// An in-memory `Write` sink that can be read back after the recorder
/// (which owns a `Box<dyn Write>`) is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("buffer lock").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn base_config() -> SwarmConfig {
    SwarmConfig::builder()
        .pieces(12)
        .max_connections(3)
        .neighbor_set_size(6)
        .arrival_rate(0.0)
        .initial_leechers(12)
        .initial_pieces(InitialPieces::Random { count: 3 })
        .max_rounds(400)
        .seed(99)
        .build()
        .expect("valid config")
}

#[test]
fn stream_entropy_matches_engine_metrics() {
    let mut swarm = Swarm::new(base_config());
    let buf = SharedBuf::default();
    swarm.attach_telemetry(
        TelemetryRecorder::new(TelemetryOptions::default()).to_writer(Box::new(buf.clone())),
    );
    for _ in 0..25 {
        swarm.step_round();
    }
    let recorder = swarm.take_telemetry().expect("recorder attached");
    assert_eq!(recorder.samples(), 25);

    // The streamed samples carry exactly the entropy the engine's own
    // metrics sampled for the same rounds.
    let records = read_records(&buf.contents()[..]).expect("stream parses");
    let samples: Vec<&TelemetrySample> = records
        .iter()
        .filter_map(|r| match r {
            TelemetryRecord::Sample(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(samples.len(), 25);
    let engine_entropy = &swarm.metrics().entropy;
    assert_eq!(engine_entropy.len(), 25);
    for (sample, &(round, entropy)) in samples.iter().zip(engine_entropy.iter()) {
        assert_eq!(sample.round, round);
        assert_eq!(sample.entropy, entropy, "round {round}");
        // Availability histogram sums to the piece count.
        assert_eq!(sample.availability.iter().sum::<u64>(), 12);
        // Quantiles are ordered.
        assert!(sample.piece_quantiles.windows(2).all(|w| w[0] <= w[1]));
        assert!((0.0..=1.0).contains(&sample.slot_utilization));
    }

    // The in-memory series store agrees with the stream.
    let series = recorder.store().get("entropy").expect("entropy series");
    assert_eq!(series.len(), 25);
    for ((tick, value), &(round, entropy)) in series.iter().zip(engine_entropy.iter()) {
        assert_eq!(tick, round);
        assert_eq!(value, entropy);
    }

    // The stream opens with a matching header.
    match &records[0] {
        TelemetryRecord::Meta(meta) => {
            assert_eq!(meta.schema_version, TELEMETRY_SCHEMA_VERSION);
            assert_eq!(meta.pieces, 12);
            assert_eq!(meta.max_connections, 3);
            assert_eq!(meta.seed, 99);
        }
        other => panic!("stream must start with Meta, got {other:?}"),
    }
}

#[test]
fn stride_thins_samples_but_not_phase_detection() {
    let mut config = base_config();
    config.observers = 2;
    let mut swarm = Swarm::new(config);
    swarm.attach_telemetry(TelemetryRecorder::new(TelemetryOptions {
        stride: 5,
        ..TelemetryOptions::default()
    }));
    for _ in 0..20 {
        swarm.step_round();
    }
    let recorder = swarm.take_telemetry().expect("recorder attached");
    // Rounds 5, 10, 15, 20 pass the stride.
    assert_eq!(recorder.samples(), 4);
    // Phase detection ran every round regardless: the endowed observers
    // were classified from round 1.
    assert!(recorder
        .phase_events()
        .iter()
        .any(|e| e.round == 1), "first-round classification missing");
}

#[test]
fn observers_walk_from_bootstrap_to_done() {
    let config = SwarmConfig::builder()
        .pieces(8)
        .max_connections(3)
        .neighbor_set_size(6)
        .arrival_rate(0.0)
        .initial_leechers(10)
        .observers(3)
        .max_rounds(400)
        .seed(7)
        .build()
        .expect("valid config");
    let mut swarm = Swarm::new(config);
    swarm.attach_telemetry(TelemetryRecorder::new(TelemetryOptions::default()));
    for _ in 0..400 {
        swarm.step_round();
        if swarm.metrics().completions.len() >= 3 {
            break;
        }
    }
    assert!(
        swarm.metrics().completions.len() >= 3,
        "observers should finish within 400 rounds"
    );
    let recorder = swarm.take_telemetry().expect("recorder attached");
    for peer in 0..3u64 {
        let events: Vec<&PhaseEvent> = recorder
            .phase_events()
            .iter()
            .filter(|e| e.peer == peer)
            .collect();
        assert!(!events.is_empty(), "observer {peer} has no transitions");
        // The first observation lands after round 1's exchanges, so a fast
        // starter may already be efficient — but never done or stalled.
        assert!(
            matches!(events[0].phase, Phase::Bootstrap | Phase::Efficient),
            "observer {peer} first phase: {:?}",
            events[0].phase
        );
        assert_eq!(
            events.last().expect("non-empty").phase,
            Phase::Done,
            "observer {peer} must end done"
        );
        assert!(
            events.windows(2).all(|w| w[0].round <= w[1].round),
            "observer {peer} transitions out of order"
        );
        assert!(
            events.windows(2).all(|w| w[0].phase != w[1].phase),
            "observer {peer} has duplicate consecutive phases"
        );
    }
}

#[test]
fn entropy_collapse_triggers_exactly_one_flight_dump() {
    // The §6 stability scenario: a skewed initial distribution leaves the
    // high piece indices nearly extinct, so replication entropy collapses.
    let config = SwarmConfig::builder()
        .pieces(20)
        .max_connections(3)
        .neighbor_set_size(6)
        .arrival_rate(0.0)
        .initial_leechers(20)
        .initial_pieces(InitialPieces::Skewed {
            count: 4,
            strength: 0.5,
        })
        .max_rounds(400)
        .seed(13)
        .build()
        .expect("valid config");
    let mut swarm = Swarm::new(config);
    let buf = SharedBuf::default();
    swarm.attach_telemetry(
        TelemetryRecorder::new(TelemetryOptions {
            flight: Some(FlightOptions {
                capacity: 8,
                entropy_floor: Some(0.5),
                ..FlightOptions::default()
            }),
            ..TelemetryOptions::default()
        })
        .to_writer(Box::new(buf.clone())),
    );
    // The collapse condition persists for many rounds; the recorder must
    // still dump exactly once.
    for _ in 0..30 {
        swarm.step_round();
    }
    let recorder = swarm.take_telemetry().expect("recorder attached");
    let dump = recorder.flight_dump().expect("collapse must trigger a dump");
    assert!(dump.reason.contains("entropy"), "reason: {}", dump.reason);
    assert!(!dump.events.is_empty(), "dump must contain preceding events");
    assert!(dump.events.len() <= 8, "ring capacity bounds the dump");
    // Events lead up to (and include) the trigger round, oldest first.
    assert_eq!(dump.events.last().expect("non-empty").round, dump.round);
    assert!(dump.events.windows(2).all(|w| w[0].round + 1 == w[1].round));
    // Exactly one Flight note in the stream despite 30 collapsed rounds.
    let records = read_records(&buf.contents()[..]).expect("stream parses");
    let notes: Vec<&FlightNote> = records
        .iter()
        .filter_map(|r| match r {
            TelemetryRecord::Flight(n) => Some(n),
            _ => None,
        })
        .collect();
    assert_eq!(notes.len(), 1, "exactly one dump per run");
    assert_eq!(notes[0].round, dump.round);
    assert_eq!(notes[0].events, dump.events.len() as u64);
}

#[test]
fn healthy_swarm_never_dumps() {
    // Triggers armed but thresholds never crossed: a random endowment can
    // leave one piece extinct (entropy 0), so the floor stays unset here
    // and the stall limit is far beyond the run length.
    let mut swarm = Swarm::new(base_config());
    swarm.attach_telemetry(TelemetryRecorder::new(TelemetryOptions {
        flight: Some(FlightOptions {
            capacity: 8,
            entropy_floor: None,
            stall_rounds: Some(1_000),
            ..FlightOptions::default()
        }),
        ..TelemetryOptions::default()
    }));
    for _ in 0..20 {
        swarm.step_round();
    }
    let recorder = swarm.take_telemetry().expect("recorder attached");
    assert!(recorder.flight_dump().is_none());
}

// ----------------------------------------------------------------------
// Property: any telemetry stream round-trips through JSONL.
// ----------------------------------------------------------------------

fn sample_strategy() -> impl Strategy<Value = TelemetryRecord> {
    (
        0u64..10_000,
        0u64..5_000,
        0.0f64..=1.0,
        0u64..64,
        proptest::collection::vec(0u64..200, 0..16),
        (0u32..50, 0u32..50, 0u32..50, 0u32..50, 0u32..50),
        0.0f64..8.0,
    )
        .prop_map(|(round, population, entropy, extinct, avail, q, degree)| {
            let mut quantiles = [q.0, q.1, q.2, q.3, q.4];
            quantiles.sort_unstable();
            TelemetryRecord::Sample(TelemetrySample {
                round,
                population,
                entropy,
                extinct_pieces: extinct,
                availability: avail,
                piece_quantiles: quantiles,
                mean_degree: degree,
                slot_utilization: degree / 8.0,
            })
        })
}

fn record_strategy() -> impl Strategy<Value = TelemetryRecord> {
    // The vendored proptest has no `prop_oneof`, so generate every
    // variant's fields and pick by selector.
    (
        0u8..4,
        sample_strategy(),
        (0u64..100, 0u64..10_000, 0u8..4),
        (0u64..10_000, 0u64..1_000_000, 0u64..64),
        (1u32..500, 1u32..16, 1u32..32, 0u64..u64::MAX, 1u64..100),
    )
        .prop_map(|(selector, sample, phase_fields, flight_fields, meta_fields)| {
            match selector {
                0 => sample,
                1 => {
                    let (peer, round, phase) = phase_fields;
                    let phase = match phase {
                        0 => Phase::Bootstrap,
                        1 => Phase::Efficient,
                        2 => Phase::LastDownload,
                        _ => Phase::Done,
                    };
                    TelemetryRecord::Phase(PhaseEvent { peer, round, phase })
                }
                2 => {
                    let (round, nonce, events) = flight_fields;
                    TelemetryRecord::Flight(FlightNote {
                        round,
                        reason: format!("anomaly {nonce} at round {round}"),
                        events,
                    })
                }
                _ => {
                    let (pieces, k, s, seed, stride) = meta_fields;
                    TelemetryRecord::Meta(TelemetryMeta {
                        schema_version: TELEMETRY_SCHEMA_VERSION,
                        pieces,
                        max_connections: k,
                        neighbor_set_size: s,
                        seed,
                        stride,
                    })
                }
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn telemetry_stream_round_trips(records in proptest::collection::vec(record_strategy(), 0..24)) {
        let mut buf = Vec::new();
        write_records(&mut buf, &records).expect("write succeeds");
        let back = read_records(&buf[..]).expect("read succeeds");
        prop_assert_eq!(back, records);
    }
}
