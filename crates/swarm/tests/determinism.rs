//! Determinism under a fixed seed: the property the `bt-lint` `det-*`
//! rules exist to protect. Two runs of the same configuration must
//! produce byte-identical telemetry streams and identical engine
//! metrics — any `HashMap` iteration, wall-clock read, or ambient RNG
//! in the hot path would break this.

use std::io::Write;
use std::sync::{Arc, Mutex};

use bt_swarm::{InitialPieces, Swarm, SwarmConfig, TelemetryOptions, TelemetryRecorder};

/// An in-memory `Write` sink readable after the recorder (which owns a
/// `Box<dyn Write>`) is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("buffer lock").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn config(seed: u64) -> SwarmConfig {
    SwarmConfig::builder()
        .pieces(16)
        .max_connections(4)
        .neighbor_set_size(8)
        .arrival_rate(0.8)
        .initial_leechers(10)
        .initial_pieces(InitialPieces::Random { count: 4 })
        .observers(3)
        .max_rounds(300)
        .seed(seed)
        .build()
        .expect("valid config")
}

/// Runs the swarm for `rounds` rounds with telemetry attached and
/// returns the raw telemetry bytes plus a digest of the engine metrics.
/// With `profiled` set, the cost-attribution profiler rides along; it
/// must not change either output.
fn run_with_profiler(seed: u64, rounds: u64, profiled: bool) -> (Vec<u8>, String) {
    let mut swarm = Swarm::new(config(seed));
    let buf = SharedBuf::default();
    swarm.attach_telemetry(
        TelemetryRecorder::new(TelemetryOptions::default()).to_writer(Box::new(buf.clone())),
    );
    if profiled {
        swarm.attach_profiler(bt_obs::ProfileOptions {
            seed,
            ..bt_obs::ProfileOptions::default()
        });
    }
    for _ in 0..rounds {
        swarm.step_round();
    }
    if profiled {
        let profile = swarm.take_profile();
        let report = profile.report().expect("profiler was attached");
        assert_eq!(report.rounds, rounds, "profiler saw every round");
        assert!(
            !report.stages.is_empty(),
            "profiler recorded per-stage costs"
        );
    }
    let digest = format!("{:?}", swarm.metrics());
    (buf.contents(), digest)
}

fn run_once(seed: u64, rounds: u64) -> (Vec<u8>, String) {
    run_with_profiler(seed, rounds, false)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (stream_a, metrics_a) = run_once(42, 120);
    let (stream_b, metrics_b) = run_once(42, 120);
    assert!(!stream_a.is_empty(), "telemetry stream produced records");
    assert_eq!(
        stream_a, stream_b,
        "same-seed telemetry streams must be byte-identical"
    );
    assert_eq!(metrics_a, metrics_b, "same-seed metrics must agree");
}

#[test]
fn profiler_does_not_perturb_the_run() {
    // The profiler observes wall time and work counters but makes no
    // RNG calls and feeds nothing back into stage decisions, so a
    // profiled run must be byte-identical to an unprofiled one.
    let (plain_stream, plain_metrics) = run_with_profiler(42, 120, false);
    let (profiled_stream, profiled_metrics) = run_with_profiler(42, 120, true);
    assert_eq!(
        plain_stream, profiled_stream,
        "attaching the profiler must not change the telemetry stream"
    );
    assert_eq!(
        plain_metrics, profiled_metrics,
        "attaching the profiler must not change engine metrics"
    );
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the equality above is not vacuous: a different
    // seed produces a different trajectory.
    let (stream_a, _) = run_once(1, 120);
    let (stream_b, _) = run_once(2, 120);
    assert_ne!(stream_a, stream_b, "distinct seeds should diverge");
}
