//! Determinism under a fixed seed: the property the `bt-lint` `det-*`
//! rules exist to protect. Two runs of the same configuration must
//! produce byte-identical telemetry streams and identical engine
//! metrics — any `HashMap` iteration, wall-clock read, or ambient RNG
//! in the hot path would break this.

use std::io::Write;
use std::sync::{Arc, Mutex};

use bt_swarm::{DoctorOptions, InitialPieces, Swarm, SwarmConfig, TelemetryOptions, TelemetryRecorder};

/// An in-memory `Write` sink readable after the recorder (which owns a
/// `Box<dyn Write>`) is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("buffer lock").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn config(seed: u64) -> SwarmConfig {
    SwarmConfig::builder()
        .pieces(16)
        .max_connections(4)
        .neighbor_set_size(8)
        .arrival_rate(0.8)
        .initial_leechers(10)
        .initial_pieces(InitialPieces::Random { count: 4 })
        .observers(3)
        .max_rounds(300)
        .seed(seed)
        .build()
        .expect("valid config")
}

/// Runs the swarm for `rounds` rounds with telemetry attached and
/// returns the raw telemetry bytes plus a digest of the engine metrics.
/// With `profiled` set, the cost-attribution profiler rides along; it
/// must not change either output.
fn run_with_profiler(seed: u64, rounds: u64, profiled: bool) -> (Vec<u8>, String) {
    let mut swarm = Swarm::new(config(seed));
    let buf = SharedBuf::default();
    swarm.attach_telemetry(
        TelemetryRecorder::new(TelemetryOptions::default()).to_writer(Box::new(buf.clone())),
    );
    if profiled {
        swarm.attach_profiler(bt_obs::ProfileOptions {
            seed,
            ..bt_obs::ProfileOptions::default()
        });
    }
    for _ in 0..rounds {
        swarm.step_round();
    }
    if profiled {
        let profile = swarm.take_profile();
        let report = profile.report().expect("profiler was attached");
        assert_eq!(report.rounds, rounds, "profiler saw every round");
        assert!(
            !report.stages.is_empty(),
            "profiler recorded per-stage costs"
        );
    }
    let digest = format!("{:?}", swarm.metrics());
    (buf.contents(), digest)
}

fn run_once(seed: u64, rounds: u64) -> (Vec<u8>, String) {
    run_with_profiler(seed, rounds, false)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (stream_a, metrics_a) = run_once(42, 120);
    let (stream_b, metrics_b) = run_once(42, 120);
    assert!(!stream_a.is_empty(), "telemetry stream produced records");
    assert_eq!(
        stream_a, stream_b,
        "same-seed telemetry streams must be byte-identical"
    );
    assert_eq!(metrics_a, metrics_b, "same-seed metrics must agree");
}

#[test]
fn profiler_does_not_perturb_the_run() {
    // The profiler observes wall time and work counters but makes no
    // RNG calls and feeds nothing back into stage decisions, so a
    // profiled run must be byte-identical to an unprofiled one.
    let (plain_stream, plain_metrics) = run_with_profiler(42, 120, false);
    let (profiled_stream, profiled_metrics) = run_with_profiler(42, 120, true);
    assert_eq!(
        plain_stream, profiled_stream,
        "attaching the profiler must not change the telemetry stream"
    );
    assert_eq!(
        plain_metrics, profiled_metrics,
        "attaching the profiler must not change engine metrics"
    );
}

/// Runs the swarm with telemetry (and optionally the doctor) attached,
/// returning the telemetry bytes, a metrics digest, the doctor's
/// report, and the run's normalized ledger record as one JSON line.
fn run_with_doctor(
    seed: u64,
    rounds: u64,
    doctored: bool,
) -> (Vec<u8>, String, Option<bt_swarm::DoctorReport>, String) {
    let registry = bt_obs::Registry::new();
    let mut swarm = Swarm::with_registry(config(seed), registry.clone());
    let buf = SharedBuf::default();
    swarm.attach_telemetry(
        TelemetryRecorder::new(TelemetryOptions::default()).to_writer(Box::new(buf.clone())),
    );
    if doctored {
        swarm.attach_doctor(DoctorOptions {
            cadence: 4,
            ..DoctorOptions::default()
        });
    }
    let pipeline = swarm.stage_names();
    for _ in 0..rounds {
        swarm.step_round();
    }
    let report = swarm.take_doctor_report();
    let digest = format!("{:?}", swarm.metrics());
    let mut manifest = bt_obs::RunManifest::new("swarm", bt_obs::fnv1a_hex(b"det"), seed);
    manifest.pipeline = pipeline.iter().map(|s| (*s).to_string()).collect();
    manifest.finish(&registry, std::time::Duration::from_secs(1));
    manifest.peak_population = registry.counter("swarm.peak_population").get();
    let violations = report
        .as_ref()
        .map_or(0, |r| r.report.violations.len() as u64);
    let ledger = bt_obs::LedgerRecord::from_manifest(&manifest, violations)
        .normalized()
        .to_jsonl()
        .expect("ledger record serializes");
    (buf.contents(), digest, report, ledger)
}

#[test]
fn doctor_does_not_perturb_the_run() {
    // The doctor only reads state (its sample capture makes no RNG
    // calls), so a monitored run must be byte-identical to a bare one.
    let (plain_stream, plain_metrics, no_report, _) = run_with_doctor(42, 120, false);
    let (doctored_stream, doctored_metrics, report, _) = run_with_doctor(42, 120, true);
    assert!(no_report.is_none());
    let report = report.expect("doctor was attached");
    assert!(report.report.checks > 0, "monitors actually sampled rounds");
    assert_eq!(
        plain_stream, doctored_stream,
        "attaching the doctor must not change the telemetry stream"
    );
    assert_eq!(
        plain_metrics, doctored_metrics,
        "attaching the doctor must not change engine metrics"
    );
}

#[test]
fn same_seed_doctored_runs_and_ledger_records_agree() {
    let (stream_a, metrics_a, report_a, ledger_a) = run_with_doctor(42, 120, true);
    let (stream_b, metrics_b, report_b, ledger_b) = run_with_doctor(42, 120, true);
    assert_eq!(
        stream_a, stream_b,
        "same-seed monitored telemetry must be byte-identical"
    );
    assert_eq!(metrics_a, metrics_b);
    let (report_a, report_b) = (report_a.unwrap(), report_b.unwrap());
    assert_eq!(report_a.report.checks, report_b.report.checks);
    assert_eq!(
        format!("{:?}", report_a.report.violations),
        format!("{:?}", report_b.report.violations),
        "monitor verdicts are deterministic"
    );
    assert_eq!(
        ledger_a, ledger_b,
        "same-seed normalized ledger records must serialize identically"
    );
}

/// Runs the swarm with telemetry attached and optionally a cohort of
/// `cohort` members, returning the telemetry bytes, a metrics digest,
/// and the cohort stream bytes (empty when no cohort was attached).
fn run_with_cohort(seed: u64, rounds: u64, cohort: Option<u32>) -> (Vec<u8>, String, Vec<u8>) {
    let mut swarm = Swarm::new(config(seed));
    let buf = SharedBuf::default();
    swarm.attach_telemetry(
        TelemetryRecorder::new(TelemetryOptions::default()).to_writer(Box::new(buf.clone())),
    );
    let cohort_buf = SharedBuf::default();
    if let Some(size) = cohort {
        swarm.attach_cohort(size, Box::new(cohort_buf.clone()));
    }
    for _ in 0..rounds {
        swarm.step_round();
    }
    let sink = swarm.take_cohort();
    if cohort.is_some() {
        assert!(sink.is_enabled(), "cohort stayed attached for the run");
    }
    let digest = format!("{:?}", swarm.metrics());
    (buf.contents(), digest, cohort_buf.contents())
}

#[test]
fn cohort_does_not_perturb_the_run() {
    // The cohort sink draws membership from a private RNG stream and
    // makes no model RNG calls, so a traced run must be byte-identical
    // to a bare one.
    let (plain_stream, plain_metrics, empty) = run_with_cohort(42, 120, None);
    let (traced_stream, traced_metrics, cohort_stream) = run_with_cohort(42, 120, Some(8));
    assert!(empty.is_empty(), "no cohort stream without a cohort");
    assert!(
        !cohort_stream.is_empty(),
        "cohort stream produced at least its header"
    );
    assert_eq!(
        plain_stream, traced_stream,
        "attaching a cohort must not change the telemetry stream"
    );
    assert_eq!(
        plain_metrics, traced_metrics,
        "attaching a cohort must not change engine metrics"
    );
}

#[test]
fn same_seed_cohort_streams_are_byte_identical() {
    let (_, _, cohort_a) = run_with_cohort(42, 120, Some(8));
    let (_, _, cohort_b) = run_with_cohort(42, 120, Some(8));
    assert_eq!(
        cohort_a, cohort_b,
        "same-seed cohort streams must be byte-identical"
    );
    let (meta, events) = bt_obs::read_cohort(&cohort_a[..]).expect("cohort stream parses");
    assert_eq!(meta.seed, 42);
    assert_eq!(meta.size, 8);
    assert!(!events.is_empty(), "a 120-round run traces events");
}

/// One fully-observed run at a given worker-thread count: telemetry
/// bytes, cohort bytes, a metrics digest, the doctor's verdicts, and
/// the normalized ledger line. The upgraded determinism contract says
/// every one of these is a function of the seed alone — `threads` is
/// pure throughput.
fn run_threaded(seed: u64, rounds: u64, threads: u32) -> (Vec<u8>, Vec<u8>, String, String, String) {
    let registry = bt_obs::Registry::new();
    let mut swarm = Swarm::with_registry(config(seed), registry.clone());
    swarm.set_threads(threads);
    let buf = SharedBuf::default();
    swarm.attach_telemetry(
        TelemetryRecorder::new(TelemetryOptions::default()).to_writer(Box::new(buf.clone())),
    );
    let cohort_buf = SharedBuf::default();
    swarm.attach_cohort(8, Box::new(cohort_buf.clone()));
    swarm.attach_doctor(DoctorOptions {
        cadence: 4,
        ..DoctorOptions::default()
    });
    let pipeline = swarm.stage_names();
    for _ in 0..rounds {
        swarm.step_round();
    }
    let report = swarm.take_doctor_report().expect("doctor was attached");
    assert!(report.report.checks > 0, "monitors sampled rounds");
    let verdicts = format!("{:?}", report.report.violations);
    let digest = format!("{:?}", swarm.metrics());
    let mut manifest = bt_obs::RunManifest::new("swarm", bt_obs::fnv1a_hex(b"det"), seed);
    manifest.pipeline = pipeline.iter().map(|s| (*s).to_string()).collect();
    manifest.threads = threads;
    manifest.finish(&registry, std::time::Duration::from_secs(1));
    manifest.peak_population = registry.counter("swarm.peak_population").get();
    let ledger =
        bt_obs::LedgerRecord::from_manifest(&manifest, report.report.violations.len() as u64)
            .normalized()
            .to_jsonl()
            .expect("ledger record serializes");
    (
        buf.contents(),
        cohort_buf.contents(),
        digest,
        verdicts,
        ledger,
    )
}

#[test]
fn thread_count_is_invisible_to_every_output() {
    // The contract the parallel exchange plan phase upholds: same seed,
    // same bytes, at any --threads value. Telemetry, cohort traces,
    // metrics, monitor verdicts, and the normalized ledger line must all
    // be byte-identical across thread counts.
    let serial = run_threaded(42, 120, 1);
    assert!(!serial.0.is_empty(), "telemetry produced records");
    assert!(!serial.1.is_empty(), "cohort produced records");
    for threads in [2, 8] {
        let threaded = run_threaded(42, 120, threads);
        assert_eq!(
            serial.0, threaded.0,
            "telemetry diverged at --threads {threads}"
        );
        assert_eq!(
            serial.1, threaded.1,
            "cohort stream diverged at --threads {threads}"
        );
        assert_eq!(
            serial.2, threaded.2,
            "metrics diverged at --threads {threads}"
        );
        assert_eq!(
            serial.3, threaded.3,
            "monitor verdicts diverged at --threads {threads}"
        );
        assert_eq!(
            serial.4, threaded.4,
            "normalized ledger diverged at --threads {threads}"
        );
    }
}

/// One fully-observed run with an optional heartbeat emitter attached,
/// returning the telemetry bytes, cohort bytes, a metrics digest, and
/// the normalized ledger line. `Duration::ZERO` cadence makes the
/// emitter beat every round, maximizing its chance to perturb anything.
fn run_with_heartbeat(
    seed: u64,
    rounds: u64,
    threads: u32,
    heartbeat: bool,
) -> (Vec<u8>, Vec<u8>, String, String) {
    let registry = bt_obs::Registry::new();
    let mut swarm = Swarm::with_registry(config(seed), registry.clone());
    swarm.set_threads(threads);
    let buf = SharedBuf::default();
    swarm.attach_telemetry(
        TelemetryRecorder::new(TelemetryOptions::default()).to_writer(Box::new(buf.clone())),
    );
    let cohort_buf = SharedBuf::default();
    swarm.attach_cohort(8, Box::new(cohort_buf.clone()));
    let dir = std::env::temp_dir().join(format!(
        "bt_swarm_det_heartbeat_{}_{seed}_{threads}_{heartbeat}",
        std::process::id()
    ));
    if heartbeat {
        let _ = std::fs::remove_dir_all(&dir);
        let emitter = bt_obs::HeartbeatEmitter::new(
            bt_obs::HeartbeatOptions {
                dir: dir.clone(),
                interval: std::time::Duration::ZERO,
                command: "swarm".to_string(),
                seed,
                target_rounds: rounds,
            },
            registry.clone(),
        )
        .expect("heartbeat artifacts in temp dir");
        swarm.attach_heartbeat(emitter);
    }
    let pipeline = swarm.stage_names();
    for _ in 0..rounds {
        swarm.step_round();
    }
    if heartbeat {
        let emitter = swarm.take_heartbeat().expect("heartbeat stayed attached");
        assert!(emitter.is_finished(), "take_heartbeat writes the final beat");
        assert!(
            emitter.beats() >= rounds,
            "zero-interval cadence beats every round"
        );
        let status =
            bt_obs::read_status(&dir.join(bt_obs::RUN_STATUS_FILE)).expect("status parses");
        assert!(status.is_finished());
        assert_eq!(status.last.round, rounds);
        let file = std::fs::File::open(dir.join(bt_obs::HEARTBEAT_STREAM_FILE))
            .expect("heartbeat stream exists");
        let (meta, beats) = bt_obs::read_heartbeat(file).expect("heartbeat stream parses");
        assert_eq!(meta.seed, seed);
        assert!(!beats.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
    let digest = format!("{:?}", swarm.metrics());
    let mut manifest = bt_obs::RunManifest::new("swarm", bt_obs::fnv1a_hex(b"det"), seed);
    manifest.pipeline = pipeline.iter().map(|s| (*s).to_string()).collect();
    manifest.threads = threads;
    manifest.finish(&registry, std::time::Duration::from_secs(1));
    manifest.peak_population = registry.counter("swarm.peak_population").get();
    let ledger = bt_obs::LedgerRecord::from_manifest(&manifest, 0)
        .normalized()
        .to_jsonl()
        .expect("ledger record serializes");
    (buf.contents(), cohort_buf.contents(), digest, ledger)
}

#[test]
fn heartbeat_does_not_perturb_the_run() {
    // The heartbeat emitter reads a pulse of engine state and the wall
    // clock, makes no model-RNG calls, and feeds nothing back — so a
    // heartbeat run must be byte-identical to a bare one, at every
    // thread count (ISSUE 10 tentpole contract).
    for threads in [1, 8] {
        let plain = run_with_heartbeat(42, 120, threads, false);
        let beating = run_with_heartbeat(42, 120, threads, true);
        assert!(!plain.0.is_empty(), "telemetry produced records");
        assert_eq!(
            plain.0, beating.0,
            "heartbeats changed the telemetry stream at --threads {threads}"
        );
        assert_eq!(
            plain.1, beating.1,
            "heartbeats changed the cohort stream at --threads {threads}"
        );
        assert_eq!(
            plain.2, beating.2,
            "heartbeats changed engine metrics at --threads {threads}"
        );
        assert_eq!(
            plain.3, beating.3,
            "heartbeats changed the normalized ledger line at --threads {threads}"
        );
    }
}

#[test]
fn heartbeat_runs_are_byte_identical_across_thread_counts() {
    let serial = run_with_heartbeat(42, 120, 1, true);
    let threaded = run_with_heartbeat(42, 120, 8, true);
    assert_eq!(serial.0, threaded.0, "telemetry diverged");
    assert_eq!(serial.1, threaded.1, "cohort stream diverged");
    assert_eq!(serial.2, threaded.2, "metrics diverged");
    assert_eq!(serial.3, threaded.3, "normalized ledger diverged");
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the equality above is not vacuous: a different
    // seed produces a different trajectory.
    let (stream_a, _) = run_once(1, 120);
    let (stream_b, _) = run_once(2, 120);
    assert_ne!(stream_a, stream_b, "distinct seeds should diverge");
}
