//! Property-based and invariant tests for the swarm simulator.

use bt_swarm::config::{BootstrapInjection, InitialPieces, PieceSelection};
use bt_swarm::engine::entropy_of;
use bt_swarm::piece::Bitfield;
use bt_swarm::selection::replication_counts;
use bt_swarm::{Swarm, SwarmConfig};
use proptest::prelude::*;

/// Strategy: a small but varied swarm configuration.
fn small_config() -> impl Strategy<Value = SwarmConfig> {
    (
        2u32..=16,    // pieces
        1u32..=4,     // k
        1u32..=8,     // s
        0.0f64..2.0,  // arrival rate
        0u32..=20,    // initial leechers
        0.3f64..=1.0, // p_r
        0.3f64..=1.0, // p_n
        any::<u64>(),
        prop::bool::ANY, // rarest vs random
        0u32..=3,        // seed uploads
    )
        .prop_map(
            |(pieces, k, s, lambda, init, p_r, p_n, seed, rarest, uploads)| {
                SwarmConfig::builder()
                    .pieces(pieces)
                    .max_connections(k)
                    .neighbor_set_size(s)
                    .arrival_rate(lambda)
                    .initial_leechers(init)
                    .p_reencounter(p_r)
                    .p_new_connection(p_n)
                    .piece_selection(if rarest {
                        PieceSelection::RarestFirst
                    } else {
                        PieceSelection::RandomFirst
                    })
                    .seed_uploads_per_round(uploads)
                    .max_rounds(40)
                    .seed(seed)
                    .build()
                    .expect("strategy generates valid configs")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_throughout(config in small_config()) {
        let mut swarm = Swarm::new(config);
        for _ in 0..40 {
            swarm.step_round();
            swarm.assert_invariants();
        }
    }

    #[test]
    fn metrics_are_consistent(config in small_config()) {
        let pieces = config.pieces;
        let metrics = Swarm::new(config).run();
        prop_assert!(metrics.completions.len() as u64 <= metrics.departures);
        prop_assert!(metrics.arrivals >= metrics.departures);
        for rec in &metrics.completions {
            prop_assert_eq!(rec.acquisition_rounds.len(), pieces as usize);
            prop_assert!(rec.completed_round >= rec.joined_round);
            for w in rec.acquisition_rounds.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
            prop_assert!(*rec.acquisition_rounds.last().unwrap() <= rec.completed_round);
        }
        // Population series matches arrivals - departures at the end.
        prop_assert_eq!(
            metrics.final_population(),
            metrics.arrivals - metrics.departures
        );
        for &(_, e) in &metrics.entropy {
            prop_assert!((0.0..=1.0).contains(&e));
        }
        let u = metrics.mean_utilization();
        prop_assert!(u.is_nan() || (0.0..=1.0).contains(&u));
    }

    #[test]
    fn runs_are_reproducible(config in small_config()) {
        let a = Swarm::new(config.clone()).run();
        let b = Swarm::new(config).run();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bitfield_roundtrip(pieces in prop::collection::btree_set(0u32..64, 0..30)) {
        let mut bf = Bitfield::new(64);
        for &p in &pieces {
            bf.set(p);
        }
        prop_assert_eq!(bf.count() as usize, pieces.len());
        let have: Vec<u32> = bf.iter().collect();
        prop_assert_eq!(have, pieces.iter().copied().collect::<Vec<_>>());
        let missing = bf.iter_missing().count();
        prop_assert_eq!(missing + pieces.len(), 64);
    }

    #[test]
    fn trade_relation_is_symmetric(
        a in prop::collection::btree_set(0u32..16, 0..16),
        b in prop::collection::btree_set(0u32..16, 0..16),
    ) {
        let mut fa = Bitfield::new(16);
        let mut fb = Bitfield::new(16);
        for &p in &a { fa.set(p); }
        for &p in &b { fb.set(p); }
        prop_assert_eq!(fa.can_trade_with(&fb), fb.can_trade_with(&fa));
        // Tradability is exactly "neither set contains the other".
        let a_minus_b = a.difference(&b).count();
        let b_minus_a = b.difference(&a).count();
        prop_assert_eq!(fa.can_trade_with(&fb), a_minus_b > 0 && b_minus_a > 0);
    }

    #[test]
    fn replication_counts_bounded_by_population(
        fields in prop::collection::vec(prop::collection::btree_set(0u32..8, 0..8), 0..10)
    ) {
        let bitfields: Vec<Bitfield> = fields
            .iter()
            .map(|set| {
                let mut bf = Bitfield::new(8);
                for &p in set {
                    bf.set(p);
                }
                bf
            })
            .collect();
        let counts = replication_counts(8, bitfields.iter());
        for &c in &counts {
            prop_assert!(c <= bitfields.len() as u64);
        }
        let total: u64 = counts.iter().sum();
        let held: u64 = bitfields.iter().map(|b| u64::from(b.count())).sum();
        prop_assert_eq!(total, held);
    }

    #[test]
    fn entropy_scale_invariant(reps in prop::collection::vec(1u64..100, 1..20), factor in 1u64..10) {
        let scaled: Vec<u64> = reps.iter().map(|&d| d * factor).collect();
        let e1 = entropy_of(&reps);
        let e2 = entropy_of(&scaled);
        prop_assert!((e1 - e2).abs() < 1e-12);
    }
}

#[test]
fn bootstrap_uniform_covers_pieces() {
    // With uniform injection and no trading partners (k irrelevant, single
    // peer), all pieces eventually arrive via injection... except injection
    // only serves empty peers, so a lone peer acquires exactly one piece.
    let config = SwarmConfig::builder()
        .pieces(8)
        .max_connections(1)
        .neighbor_set_size(1)
        .arrival_rate(0.0)
        .initial_leechers(1)
        .bootstrap(BootstrapInjection::Uniform)
        .seed_uploads_per_round(0)
        .max_rounds(30)
        .seed(5)
        .build()
        .unwrap();
    let metrics = Swarm::new(config).run();
    assert_eq!(metrics.departures, 0);
    assert_eq!(metrics.final_population(), 1);
}

#[test]
fn lone_peer_with_seed_completes() {
    // The origin seed alone can serve a whole download.
    let config = SwarmConfig::builder()
        .pieces(8)
        .max_connections(1)
        .neighbor_set_size(1)
        .arrival_rate(0.0)
        .initial_leechers(1)
        .seed_uploads_per_round(1)
        .max_rounds(100)
        .seed(5)
        .build()
        .unwrap();
    let metrics = Swarm::new(config).run();
    assert_eq!(metrics.departures, 1);
}

#[test]
fn skewed_initial_state_has_low_entropy() {
    let config = SwarmConfig::builder()
        .pieces(12)
        .max_connections(2)
        .neighbor_set_size(6)
        .arrival_rate(0.0)
        .initial_leechers(50)
        .initial_pieces(InitialPieces::Skewed {
            count: 4,
            strength: 0.2,
        })
        .bootstrap(BootstrapInjection::Off)
        .seed_uploads_per_round(0)
        .max_rounds(1)
        .seed(1)
        .build()
        .unwrap();
    let metrics = Swarm::new(config).run();
    assert!(
        metrics.entropy[0].1 < 0.3,
        "strength 0.2 should be very skewed, got {}",
        metrics.entropy[0].1
    );
}

#[test]
fn mean_bootstrap_rounds_is_finite_for_healthy_swarms() {
    let config = SwarmConfig::builder()
        .pieces(12)
        .max_connections(3)
        .neighbor_set_size(6)
        .arrival_rate(1.0)
        .initial_leechers(12)
        .max_rounds(150)
        .seed(41)
        .build()
        .unwrap();
    let metrics = Swarm::new(config).run();
    let bootstrap = metrics.mean_bootstrap_rounds();
    assert!(bootstrap.is_finite());
    assert!(
        bootstrap >= 1.0,
        "second piece takes at least a round: {bootstrap}"
    );
    assert!(
        bootstrap <= metrics.mean_download_rounds(),
        "bootstrap is a prefix of the download"
    );
}

#[test]
fn bootstrap_relief_does_not_break_invariants() {
    let config = SwarmConfig::builder()
        .pieces(12)
        .max_connections(3)
        .neighbor_set_size(6)
        .arrival_rate(2.0)
        .initial_leechers(12)
        .bootstrap_relief(true)
        .max_rounds(60)
        .seed(43)
        .build()
        .unwrap();
    let mut swarm = Swarm::new(config);
    for _ in 0..60 {
        swarm.step_round();
        swarm.assert_invariants();
    }
    assert!(swarm.metrics().departures > 0);
}

/// One event in a synthetic replication-index history. Indices are taken
/// modulo the live population / piece count so every generated sequence
/// is applicable.
#[derive(Debug, Clone)]
enum IndexEvent {
    /// A peer joins holding a pseudo-random subset of pieces.
    Arrival { held: Vec<bool> },
    /// An alive peer acquires one (possibly already-held) piece.
    Acquire { peer: usize, piece: usize },
    /// An alive peer departs with everything it holds.
    Depart { peer: usize },
}

fn index_event(pieces: usize) -> impl Strategy<Value = IndexEvent> {
    (
        0u32..3,
        prop::collection::vec(prop::bool::ANY, pieces),
        any::<usize>(),
        any::<usize>(),
    )
        .prop_map(|(tag, held, peer, piece)| match tag {
            0 => IndexEvent::Arrival { held },
            1 => IndexEvent::Acquire { peer, piece },
            _ => IndexEvent::Depart { peer },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The incrementally maintained index must equal a from-scratch
    /// rebuild from the surviving bitfields after ANY interleaving of
    /// arrivals, acquisitions, and departures — `replication_counts` is
    /// kept around precisely as this oracle.
    #[test]
    fn replication_index_matches_rebuild_under_arbitrary_histories(
        pieces in 1usize..=80,
        events in prop::collection::vec(index_event(80), 0..120),
    ) {
        use bt_swarm::ReplicationIndex;

        let mut index = ReplicationIndex::new(pieces as u32);
        let mut alive: Vec<Bitfield> = Vec::new();
        for event in events {
            match event {
                IndexEvent::Arrival { held } => {
                    let mut have = Bitfield::new(pieces as u32);
                    for (p, &h) in held.iter().take(pieces).enumerate() {
                        if h {
                            have.set(p as u32);
                        }
                    }
                    index.on_arrival(&have);
                    alive.push(have);
                }
                IndexEvent::Acquire { peer, piece } => {
                    if alive.is_empty() {
                        continue;
                    }
                    let peer = peer % alive.len();
                    let piece = (piece % pieces) as u32;
                    if alive[peer].set(piece) {
                        index.on_acquire(piece);
                    }
                }
                IndexEvent::Depart { peer } => {
                    if alive.is_empty() {
                        continue;
                    }
                    let gone = alive.swap_remove(peer % alive.len());
                    index.on_departure(&gone);
                }
            }
            let oracle = replication_counts(pieces as u32, alive.iter());
            prop_assert_eq!(index.counts(), &oracle[..]);
        }
    }
}
