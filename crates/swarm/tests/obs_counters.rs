//! Observability counters must agree with the engine's own metrics: the
//! counters are derived from the same events, so any drift between them
//! is a bookkeeping bug in one of the two paths.

use bt_obs::Registry;
use bt_swarm::{Swarm, SwarmConfig};

fn config(seed: u64) -> SwarmConfig {
    SwarmConfig::builder()
        .pieces(16)
        .max_connections(3)
        .neighbor_set_size(8)
        .arrival_rate(1.0)
        .initial_leechers(12)
        .max_rounds(150)
        .seed(seed)
        .build()
        .unwrap()
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry.counter(name).get()
}

#[test]
fn counters_match_swarm_metrics() {
    let registry = Registry::new();
    let metrics = Swarm::with_registry(config(5), registry.clone()).run();

    assert_eq!(counter(&registry, "swarm.arrivals"), metrics.arrivals);
    assert_eq!(counter(&registry, "swarm.departures"), metrics.departures);
    assert_eq!(
        counter(&registry, "swarm.completions"),
        metrics.completions.len() as u64
    );
    assert_eq!(counter(&registry, "swarm.rounds"), metrics.rounds_run);

    // The peak gauge is updated at spawn time, the population series at
    // sample time, so only the ordering is exact: the peak bounds every
    // sample and can never exceed the total number of arrivals.
    let peak = counter(&registry, "swarm.peak_population");
    let max_sampled = metrics.population.iter().map(|&(_, p)| p).max().unwrap_or(0);
    assert!(peak >= max_sampled);
    assert!(peak > 0 && peak <= metrics.arrivals);
    assert!(counter(&registry, "swarm.pieces_exchanged") > 0);
    assert!(counter(&registry, "swarm.bootstrap_injections") > 0);
    assert!(
        counter(&registry, "swarm.conn_successes")
            <= counter(&registry, "swarm.conn_attempts")
    );
    assert!(counter(&registry, "swarm.conn_successes") > 0);
}

#[test]
fn phase_timers_record_every_round() {
    let registry = Registry::new();
    let metrics = Swarm::with_registry(config(7), registry.clone()).run();
    for phase in [
        "round.maintain",
        "round.bootstrap",
        "round.prune",
        "round.establish",
        "round.exchange",
        "round.depart",
        "round.sample",
    ] {
        let snapshot = registry.timer(phase).snapshot();
        assert_eq!(
            snapshot.count, metrics.rounds_run,
            "{phase} must record once per round"
        );
        assert!(snapshot.p50_ns.is_some(), "{phase} has samples");
    }
    // The shake stage is config-gated: without `shake_at`, the default
    // pipeline omits it entirely and its timer never records.
    assert_eq!(registry.timer("round.shake").snapshot().count, 0);
}

#[test]
fn shake_timer_records_only_when_configured() {
    let registry = Registry::new();
    let mut shaking = config(7);
    shaking.shake_at = Some(0.5);
    let metrics = Swarm::with_registry(shaking, registry.clone()).run();
    assert_eq!(
        registry.timer("round.shake").snapshot().count,
        metrics.rounds_run,
        "round.shake must record once per round when shake_at is set"
    );
}

#[test]
fn isolated_registries_do_not_interfere() {
    let a = Registry::new();
    let b = Registry::new();
    let _ = Swarm::with_registry(config(1), a.clone()).run();
    assert_eq!(counter(&b, "swarm.arrivals"), 0);
    assert!(counter(&a, "swarm.arrivals") > 0);
}

#[test]
fn same_seed_same_counters() {
    // Instrumentation must not consume RNG state or perturb the run.
    let a = Registry::new();
    let b = Registry::new();
    let ma = Swarm::with_registry(config(11), a.clone()).run();
    let mb = Swarm::with_registry(config(11), b.clone()).run();
    assert_eq!(ma, mb);
    assert_eq!(a.counter_totals(), b.counter_totals());
}
