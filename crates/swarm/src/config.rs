//! Swarm configuration with a validating builder.

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// Piece-selection strategy (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PieceSelection {
    /// Pick the piece held by the fewest neighbors (ties random).
    #[default]
    RarestFirst,
    /// Pick a uniformly random wanted piece.
    RandomFirst,
}

/// How pieces are injected into peers that hold nothing yet (the paper's
/// bootstrap: "a peer acquires its first piece either through seeds or
/// through optimistic unchoking").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BootstrapInjection {
    /// Every empty peer receives one piece per round, drawn with
    /// probability proportional to current replication plus a base seed
    /// weight — more-replicated pieces are likelier (the §6 skew pressure),
    /// while the origin seed keeps every piece obtainable.
    Weighted {
        /// Base weight every piece gets from the origin seed.
        seed_weight: f64,
    },
    /// Every empty peer receives one uniformly random piece per round.
    Uniform,
    /// No injection: empty peers stay empty (for targeted tests).
    Off,
}

impl Default for BootstrapInjection {
    fn default() -> Self {
        BootstrapInjection::Weighted { seed_weight: 1.0 }
    }
}

/// Initial piece endowment of the leechers present at round zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum InitialPieces {
    /// Initial leechers start empty, like later arrivals.
    #[default]
    Empty,
    /// Each initial leecher gets `count` uniformly random pieces.
    Random {
        /// Number of pieces per initial leecher.
        count: u32,
    },
    /// Skewed endowment (the §6 stability scenario): each initial leecher
    /// gets `count` pieces drawn from a geometric-like distribution that
    /// concentrates on low piece indices, so piece 0 is highly replicated
    /// and high indices are rare.
    Skewed {
        /// Number of pieces per initial leecher.
        count: u32,
        /// Skew strength in `(0, 1)`: weight of piece `j` is
        /// `strength^j` (normalized).
        strength: f64,
    },
}

/// Full configuration of a swarm simulation. Construct via
/// [`SwarmConfig::builder`].
///
/// # Example
///
/// ```
/// use bt_swarm::SwarmConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SwarmConfig::builder()
///     .pieces(200)
///     .max_connections(7)
///     .neighbor_set_size(40)
///     .arrival_rate(2.0)
///     .max_rounds(500)
///     .build()?;
/// assert_eq!(config.pieces, 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SwarmConfig {
    /// Number of pieces `B` in the file.
    pub pieces: u32,
    /// Maximum simultaneous active connections `k` per peer.
    pub max_connections: u32,
    /// Neighbor-set size cap `s`.
    pub neighbor_set_size: u32,
    /// Piece size in bytes (only scales byte-valued outputs; the paper's
    /// default is 256 KiB).
    pub piece_bytes: u64,
    /// Blocks per piece (§2.1: pieces are split into blocks, the basic
    /// transmission unit; 256 KiB pieces / 16 KiB blocks = 16). Each active
    /// connection transfers one *block* per direction per round; a piece
    /// becomes tradable only once all its blocks have arrived. The default
    /// of 1 makes one round one whole piece exchange — the granularity of
    /// the paper's Markov model.
    pub blocks_per_piece: u32,
    /// Poisson arrival rate λ in peers per round.
    pub arrival_rate: f64,
    /// Leechers present at round zero.
    pub initial_leechers: u32,
    /// Endowment of the initial leechers.
    pub initial_pieces: InitialPieces,
    /// Bootstrap piece injection policy.
    pub bootstrap: BootstrapInjection,
    /// Upload slots of the origin seed: each round it hands this many
    /// pieces (swarm-rarest-first) to random leechers, keeping every piece
    /// present in the swarm. Zero disables the seed entirely — downloads
    /// then rely solely on pieces already circulating.
    pub seed_uploads_per_round: u32,
    /// Per-round survival probability of an established connection
    /// (the model's `p_r`); connections additionally break when mutual
    /// interest is exhausted.
    pub p_reencounter: f64,
    /// Probability a chosen new-connection attempt succeeds (the model's
    /// `p_n`, network-level failures).
    pub p_new_connection: f64,
    /// Probability that a connection slot is filled by optimistic unchoke
    /// (uniform random potential peer) instead of tit-for-tat preference.
    pub optimistic_prob: f64,
    /// Cap on successful new connections a peer can *initiate* per round
    /// (it may still accept any number as a target). `None` means a peer
    /// keeps trying until its slots are full — instant re-establishment.
    /// `Some(1)` recreates the one-encounter-per-round scarcity of the
    /// paper's §5 efficiency analysis.
    pub new_connections_per_round: Option<u32>,
    /// Whether a joining peer may evict an idle neighbor relation of a full
    /// peer to integrate itself (accepting an incoming connection). With it
    /// off, full neighborhoods refuse newcomers until a slot frees up —
    /// stale neighborhoods, as between infrequent tracker contacts.
    pub join_eviction: bool,
    /// When true, a connection attempt targets a random tradable neighbor
    /// *without* knowing whether it has a free slot — the attempt fails
    /// against a fully busy target, as in the §5 encounter model. When
    /// false (default) peers only approach neighbors with open slots.
    pub blind_encounters: bool,
    /// Piece-selection strategy.
    pub piece_selection: PieceSelection,
    /// Peer-set shaking (§7.1): at this completion fraction the peer drops
    /// its whole neighbor set and refreshes from the tracker. Also gates
    /// the pipeline: [`crate::stages::default_pipeline`] includes the
    /// shake stage only when this is set.
    pub shake_at: Option<f64>,
    /// Fraction of arrivals that are *slow* peers (heterogeneous-bandwidth
    /// extension; the paper assumes homogeneous peers and defers this to
    /// future work following its ref. [11]). Slow peers can serve at most
    /// [`SwarmConfig::slow_upload_budget`] block-transfers per round.
    pub slow_peer_fraction: f64,
    /// Per-round upload budget of a slow peer (fast peers are bounded only
    /// by their connection count).
    pub slow_upload_budget: u32,
    /// Tracker bootstrap relief (§4.3): when handing a peer list to a
    /// joining peer, the tracker fills up to half the slots with peers
    /// currently trapped in the bootstrap phase (holding ≤ 1 piece), so
    /// trapped peers gain tradable newcomers faster.
    pub bootstrap_relief: bool,
    /// Tracker re-announce period in rounds: peers top up depleted
    /// neighbor sets from the tracker only on rounds where
    /// `(round - 1) % reannounce_interval == 0`. The default of 1
    /// re-announces every round (the original behavior); larger values
    /// amortize tracker traffic at the cost of staler neighborhoods.
    /// Deserialized configs written before this field existed read as 0
    /// and are treated as 1.
    #[serde(default)]
    pub reannounce_interval: u64,
    /// Rounds to exclude from steady-state statistics (potential-set
    /// buckets, utilization, completion records of peers that joined during
    /// warm-up). Population and entropy series are always recorded in full
    /// — the stability experiments need the transient.
    pub metrics_warmup_rounds: u64,
    /// Stop after this many rounds.
    pub max_rounds: u64,
    /// Optionally stop earlier once this many completion records have been
    /// collected (peers that joined after the metrics warm-up).
    pub stop_after_completions: Option<u64>,
    /// Number of peers to record full per-round logs for
    /// (download/potential-set trajectories, the Fig. 2 observers).
    pub observers: u32,
    /// First peer id to observe: observers are the peers with ids in
    /// `observe_from..observe_from + observers` (arrival order). Setting
    /// this to `initial_leechers` observes fresh arrivals rather than the
    /// endowed round-zero peers.
    pub observe_from: u32,
    /// Root RNG seed.
    pub seed: u64,
}

impl SwarmConfig {
    /// Starts a builder with paper-flavoured defaults (`B = 200`, `k = 7`,
    /// `s = 40`).
    #[must_use]
    pub fn builder() -> SwarmConfigBuilder {
        SwarmConfigBuilder::default()
    }
}

/// Builder for [`SwarmConfig`].
#[derive(Debug, Clone)]
pub struct SwarmConfigBuilder {
    config: SwarmConfig,
}

impl Default for SwarmConfigBuilder {
    fn default() -> Self {
        SwarmConfigBuilder {
            config: SwarmConfig {
                pieces: 200,
                max_connections: 7,
                neighbor_set_size: 40,
                piece_bytes: 256 * 1024,
                blocks_per_piece: 1,
                arrival_rate: 2.0,
                initial_leechers: 20,
                initial_pieces: InitialPieces::default(),
                bootstrap: BootstrapInjection::default(),
                seed_uploads_per_round: 2,
                p_reencounter: 0.9,
                p_new_connection: 0.9,
                optimistic_prob: 0.2,
                new_connections_per_round: None,
                join_eviction: true,
                blind_encounters: false,
                metrics_warmup_rounds: 0,
                piece_selection: PieceSelection::default(),
                shake_at: None,
                slow_peer_fraction: 0.0,
                slow_upload_budget: 1,
                bootstrap_relief: false,
                reannounce_interval: 1,
                max_rounds: 1_000,
                stop_after_completions: None,
                observers: 0,
                observe_from: 0,
                seed: 0,
            },
        }
    }
}

impl SwarmConfigBuilder {
    /// Sets the number of pieces `B`.
    pub fn pieces(&mut self, pieces: u32) -> &mut Self {
        self.config.pieces = pieces;
        self
    }

    /// Sets the connection cap `k`.
    pub fn max_connections(&mut self, k: u32) -> &mut Self {
        self.config.max_connections = k;
        self
    }

    /// Sets the neighbor-set size `s`.
    pub fn neighbor_set_size(&mut self, s: u32) -> &mut Self {
        self.config.neighbor_set_size = s;
        self
    }

    /// Sets the piece size in bytes.
    pub fn piece_bytes(&mut self, bytes: u64) -> &mut Self {
        self.config.piece_bytes = bytes;
        self
    }

    /// Sets the number of blocks per piece (must be ≥ 1).
    pub fn blocks_per_piece(&mut self, blocks: u32) -> &mut Self {
        self.config.blocks_per_piece = blocks;
        self
    }

    /// Sets the Poisson arrival rate (peers per round).
    pub fn arrival_rate(&mut self, lambda: f64) -> &mut Self {
        self.config.arrival_rate = lambda;
        self
    }

    /// Sets the number of leechers present at round zero.
    pub fn initial_leechers(&mut self, n: u32) -> &mut Self {
        self.config.initial_leechers = n;
        self
    }

    /// Sets the initial leechers' piece endowment.
    pub fn initial_pieces(&mut self, endowment: InitialPieces) -> &mut Self {
        self.config.initial_pieces = endowment;
        self
    }

    /// Sets the bootstrap injection policy.
    pub fn bootstrap(&mut self, policy: BootstrapInjection) -> &mut Self {
        self.config.bootstrap = policy;
        self
    }

    /// Sets the origin seed's upload slots per round (0 disables it).
    pub fn seed_uploads_per_round(&mut self, n: u32) -> &mut Self {
        self.config.seed_uploads_per_round = n;
        self
    }

    /// Sets the per-round connection survival probability `p_r`.
    pub fn p_reencounter(&mut self, p: f64) -> &mut Self {
        self.config.p_reencounter = p;
        self
    }

    /// Sets the new-connection success probability `p_n`.
    pub fn p_new_connection(&mut self, p: f64) -> &mut Self {
        self.config.p_new_connection = p;
        self
    }

    /// Sets the optimistic-unchoke probability.
    pub fn optimistic_prob(&mut self, p: f64) -> &mut Self {
        self.config.optimistic_prob = p;
        self
    }

    /// Caps successful new-connection initiations per peer per round.
    pub fn new_connections_per_round(&mut self, cap: u32) -> &mut Self {
        self.config.new_connections_per_round = Some(cap);
        self
    }

    /// Enables blind encounters (attempts can fail against busy targets).
    pub fn blind_encounters(&mut self, blind: bool) -> &mut Self {
        self.config.blind_encounters = blind;
        self
    }

    /// Enables or disables join-time neighbor eviction.
    pub fn join_eviction(&mut self, evict: bool) -> &mut Self {
        self.config.join_eviction = evict;
        self
    }

    /// Sets the piece-selection strategy.
    pub fn piece_selection(&mut self, strategy: PieceSelection) -> &mut Self {
        self.config.piece_selection = strategy;
        self
    }

    /// Enables peer-set shaking at the given completion fraction.
    pub fn shake_at(&mut self, fraction: f64) -> &mut Self {
        self.config.shake_at = Some(fraction);
        self
    }

    /// Makes this fraction of arrivals slow peers (heterogeneous
    /// bandwidth).
    pub fn slow_peer_fraction(&mut self, fraction: f64) -> &mut Self {
        self.config.slow_peer_fraction = fraction;
        self
    }

    /// Sets the per-round upload budget of slow peers.
    pub fn slow_upload_budget(&mut self, budget: u32) -> &mut Self {
        self.config.slow_upload_budget = budget;
        self
    }

    /// Enables the §4.3 tracker bootstrap-relief bias.
    pub fn bootstrap_relief(&mut self, on: bool) -> &mut Self {
        self.config.bootstrap_relief = on;
        self
    }

    /// Sets the tracker re-announce period in rounds (must be ≥ 1).
    pub fn reannounce_interval(&mut self, rounds: u64) -> &mut Self {
        self.config.reannounce_interval = rounds;
        self
    }

    /// Sets the steady-state measurement warm-up.
    pub fn metrics_warmup_rounds(&mut self, rounds: u64) -> &mut Self {
        self.config.metrics_warmup_rounds = rounds;
        self
    }

    /// Sets the round budget.
    pub fn max_rounds(&mut self, rounds: u64) -> &mut Self {
        self.config.max_rounds = rounds;
        self
    }

    /// Stops the run once this many peers have completed.
    pub fn stop_after_completions(&mut self, n: u64) -> &mut Self {
        self.config.stop_after_completions = Some(n);
        self
    }

    /// Records full logs for `n` observed peers.
    pub fn observers(&mut self, n: u32) -> &mut Self {
        self.config.observers = n;
        self
    }

    /// Starts observation at the peer with id `from` (arrival order).
    pub fn observe_from(&mut self, from: u32) -> &mut Self {
        self.config.observe_from = from;
        self
    }

    /// Sets the root RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for zero counts, probabilities outside
    /// `[0, 1]`, negative rates, or a shake fraction outside `(0, 1)`.
    pub fn build(&self) -> Result<SwarmConfig> {
        let c = &self.config;
        if c.pieces == 0 {
            return Err(Error::InvalidConfig("pieces must be at least 1".into()));
        }
        if c.max_connections == 0 {
            return Err(Error::InvalidConfig(
                "max_connections must be at least 1".into(),
            ));
        }
        if c.neighbor_set_size == 0 {
            return Err(Error::InvalidConfig(
                "neighbor_set_size must be at least 1".into(),
            ));
        }
        if c.max_rounds == 0 {
            return Err(Error::InvalidConfig("max_rounds must be at least 1".into()));
        }
        if c.blocks_per_piece == 0 {
            return Err(Error::InvalidConfig(
                "blocks_per_piece must be at least 1".into(),
            ));
        }
        if c.reannounce_interval == 0 {
            return Err(Error::InvalidConfig(
                "reannounce_interval must be at least 1".into(),
            ));
        }
        if c.slow_peer_fraction > 0.0 && c.slow_upload_budget == 0 {
            return Err(Error::InvalidConfig(
                "slow_upload_budget must be at least 1".into(),
            ));
        }
        if c.arrival_rate < 0.0 || !c.arrival_rate.is_finite() {
            return Err(Error::InvalidConfig(format!(
                "arrival_rate {} must be finite and non-negative",
                c.arrival_rate
            )));
        }
        for (name, p) in [
            ("p_reencounter", c.p_reencounter),
            ("p_new_connection", c.p_new_connection),
            ("optimistic_prob", c.optimistic_prob),
            ("slow_peer_fraction", c.slow_peer_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(Error::InvalidConfig(format!("{name} = {p} outside [0, 1]")));
            }
        }
        if let Some(f) = c.shake_at {
            if !(0.0 < f && f < 1.0) {
                return Err(Error::InvalidConfig(format!(
                    "shake_at = {f} outside (0, 1)"
                )));
            }
        }
        if let BootstrapInjection::Weighted { seed_weight } = c.bootstrap {
            if seed_weight < 0.0 || !seed_weight.is_finite() {
                return Err(Error::InvalidConfig(format!(
                    "seed_weight {seed_weight} must be finite and non-negative"
                )));
            }
        }
        if let InitialPieces::Skewed { count, strength } = c.initial_pieces {
            if !(0.0 < strength && strength < 1.0) {
                return Err(Error::InvalidConfig(format!(
                    "skew strength {strength} outside (0, 1)"
                )));
            }
            if count > c.pieces {
                return Err(Error::InvalidConfig(format!(
                    "initial piece count {count} exceeds B = {}",
                    c.pieces
                )));
            }
        }
        if let InitialPieces::Random { count } = c.initial_pieces {
            if count > c.pieces {
                return Err(Error::InvalidConfig(format!(
                    "initial piece count {count} exceeds B = {}",
                    c.pieces
                )));
            }
        }
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let c = SwarmConfig::builder().build().unwrap();
        assert_eq!(c.pieces, 200);
        assert_eq!(c.max_connections, 7);
        assert_eq!(c.neighbor_set_size, 40);
        assert_eq!(c.piece_bytes, 256 * 1024);
        assert!(c.shake_at.is_none());
    }

    #[test]
    fn rejects_zero_counts() {
        assert!(SwarmConfig::builder().pieces(0).build().is_err());
        assert!(SwarmConfig::builder().max_connections(0).build().is_err());
        assert!(SwarmConfig::builder().neighbor_set_size(0).build().is_err());
        assert!(SwarmConfig::builder().max_rounds(0).build().is_err());
        assert!(SwarmConfig::builder()
            .reannounce_interval(0)
            .build()
            .is_err());
    }

    #[test]
    fn reannounce_defaults_to_every_round_and_tolerates_old_json() {
        let c = SwarmConfig::builder().build().unwrap();
        assert_eq!(c.reannounce_interval, 1);
        // Configs serialized before the field existed deserialize with
        // the serde default (0); consumers treat that as 1.
        let mut json = serde_json::to_string(&c).unwrap();
        json = json.replace("\"reannounce_interval\":1,", "");
        let back: SwarmConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.reannounce_interval, 0);
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(SwarmConfig::builder().p_reencounter(1.5).build().is_err());
        assert!(SwarmConfig::builder()
            .p_new_connection(-0.1)
            .build()
            .is_err());
        assert!(SwarmConfig::builder()
            .optimistic_prob(f64::NAN)
            .build()
            .is_err());
        assert!(SwarmConfig::builder().arrival_rate(-1.0).build().is_err());
        assert!(SwarmConfig::builder()
            .arrival_rate(f64::INFINITY)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_shake_fraction() {
        assert!(SwarmConfig::builder().shake_at(0.0).build().is_err());
        assert!(SwarmConfig::builder().shake_at(1.0).build().is_err());
        assert!(SwarmConfig::builder().shake_at(0.9).build().is_ok());
    }

    #[test]
    fn rejects_bad_endowments() {
        assert!(SwarmConfig::builder()
            .pieces(5)
            .initial_pieces(InitialPieces::Random { count: 9 })
            .build()
            .is_err());
        assert!(SwarmConfig::builder()
            .initial_pieces(InitialPieces::Skewed {
                count: 2,
                strength: 1.5
            })
            .build()
            .is_err());
        assert!(SwarmConfig::builder()
            .bootstrap(BootstrapInjection::Weighted { seed_weight: -2.0 })
            .build()
            .is_err());
    }

    #[test]
    fn builder_chains() {
        let c = SwarmConfig::builder()
            .pieces(10)
            .max_connections(2)
            .neighbor_set_size(5)
            .arrival_rate(1.0)
            .seed(7)
            .shake_at(0.9)
            .observers(3)
            .stop_after_completions(50)
            .piece_selection(PieceSelection::RandomFirst)
            .build()
            .unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.observers, 3);
        assert_eq!(c.stop_after_completions, Some(50));
        assert_eq!(c.piece_selection, PieceSelection::RandomFirst);
    }

    #[test]
    fn config_serializes() {
        let c = SwarmConfig::builder().build().unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: SwarmConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
