//! Always-on conservation accounting for the monitor subsystem.
//!
//! [`SwarmAudit`] is a set of plain `u64` tallies the engine and every
//! round stage bump at their mutation sites: pieces granted and carried
//! away, connection endpoints opened and closed, bootstrap injections,
//! seed uploads, handouts, departures, shakes, samples. The tallies are
//! the ground truth the built-in monitors check the live state against —
//! piece conservation (`held == acquired − departed`) and slot balance
//! (`Σ degree == 2·(opened − closed)`) are pure identities over them.
//!
//! Unlike [`crate::obs::SwarmObs`] (atomic counters in the process-wide
//! registry, for reporting), the audit is a private field of the core
//! with zero synchronization: incrementing it costs one add, so it stays
//! on even when no monitors are attached, and it makes no RNG calls.

use serde::{Deserialize, Serialize};

/// Cumulative mutation tallies of one swarm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwarmAudit {
    /// Whole pieces granted to peers, from every source: initial
    /// endowments, bootstrap injections, seed uploads, exchanges.
    pub pieces_acquired: u64,
    /// Whole pieces carried away by departing peers.
    pub pieces_departed: u64,
    /// First pieces injected into empty peers by the bootstrap stage.
    pub bootstrap_injections: u64,
    /// Pieces uploaded by the origin seed.
    pub seed_uploads: u64,
    /// Connections opened (counted once per pair).
    pub conn_opened: u64,
    /// Connections closed (counted once per pair): pruning, exhausted
    /// novelty during exchange, departures, shakes.
    pub conn_closed: u64,
    /// Neighbor handout entries delivered by the maintenance stage.
    pub neighbor_handouts: u64,
    /// Peers that departed.
    pub departures: u64,
    /// Peers shaken (§7.1).
    pub shaken_peers: u64,
    /// Peer observations made by the sampling stage.
    pub metric_samples: u64,
}

impl SwarmAudit {
    /// Net pieces the audit says the swarm should currently hold.
    #[must_use]
    pub fn expected_held(&self) -> u64 {
        self.pieces_acquired.saturating_sub(self.pieces_departed)
    }

    /// Net open connections (pairs) the audit says should exist.
    #[must_use]
    pub fn expected_connections(&self) -> u64 {
        self.conn_opened.saturating_sub(self.conn_closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_over_tallies() {
        let audit = SwarmAudit {
            pieces_acquired: 10,
            pieces_departed: 3,
            conn_opened: 7,
            conn_closed: 2,
            ..SwarmAudit::default()
        };
        assert_eq!(audit.expected_held(), 7);
        assert_eq!(audit.expected_connections(), 5);
    }

    #[test]
    fn serializes_for_bundles() {
        let audit = SwarmAudit::default();
        let text = serde_json::to_string(&audit).unwrap();
        let back: SwarmAudit = serde_json::from_str(&text).unwrap();
        assert_eq!(back, audit);
    }
}
