//! # bt-swarm — a discrete-event BitTorrent swarm simulator
//!
//! A protocol-level reproduction of the C++ simulator the paper used to
//! validate its model (§4.1): peers arrive as a Poisson process, maintain
//! symmetric neighbor sets obtained from a tracker, exchange pieces under
//! strict tit-for-tat with rarest-first (or random-first) piece selection,
//! and depart the moment they complete. The number of pieces `B`, the
//! connection cap `k`, the neighbor-set size `s`, and the per-round piece
//! time are all configurable, as the paper requires.
//!
//! Extensions from the paper's later sections are built in:
//!
//! * *peer-set shaking* (§7.1) — at a configurable completion fraction a
//!   peer discards its entire neighbor set and refreshes from the tracker;
//! * *skewed initial replication* (§6) — the stability experiments start
//!   from a piece distribution concentrated on a few pieces;
//! * configurable bootstrap injection — the seed / optimistic-unchoke
//!   channel through which empty peers obtain their first piece.
//!
//! ## Quickstart
//!
//! ```
//! use bt_swarm::{Swarm, SwarmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SwarmConfig::builder()
//!     .pieces(30)
//!     .max_connections(4)
//!     .neighbor_set_size(10)
//!     .arrival_rate(1.0)
//!     .initial_leechers(15)
//!     .max_rounds(300)
//!     .seed(1)
//!     .build()?;
//! let metrics = Swarm::new(config).run();
//! println!("mean download: {} rounds", metrics.mean_download_rounds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod audit;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod monitors;
mod obs;
pub mod peer;
pub mod piece;
pub mod replication;
pub mod scenario;
pub mod selection;
pub mod snapshot;
pub mod stages;
pub mod store;
pub mod telemetry;
pub mod tracker;

pub use audit::SwarmAudit;
pub use config::{BootstrapInjection, InitialPieces, PieceSelection, SwarmConfig};
pub use engine::{Swarm, SwarmCore};
pub use metrics::SwarmMetrics;
pub use monitors::{
    default_monitors, DoctorOptions, DoctorReport, EntropyCollapse, FaultKind, FaultSpec,
    MonitorSample, ObserverPhase, PhaseMonotonic, PieceConservation, ReplicationOracle,
    SlotBalance, SwarmDoctor,
};
pub use replication::ReplicationIndex;
pub use stages::RoundStage;
pub use store::{PeerId, PeerStore};
pub use telemetry::{
    FlightOptions, ObserverBoundaries, ObserverSample, PhaseDetector, PhaseEvent, TelemetryFormat,
    TelemetryOptions, TelemetryRecord, TelemetryRecorder,
};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The configuration failed validation.
    InvalidConfig(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidConfig(detail) => write!(f, "invalid swarm config: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
