//! Canned scenario configurations for the paper's experiments.
//!
//! Each function returns a validated [`SwarmConfig`] matching one of the
//! evaluation setups; the bench harness and examples build on these so the
//! parameters live in exactly one place.

use crate::config::{InitialPieces, SwarmConfig};
use crate::Result;

/// Fig. 1 setup: `B = 200`, `k = 7`, steady Poisson arrivals, sweepable
/// peer-set size. Stops after `completions` downloads finish.
///
/// # Errors
///
/// Propagates config validation errors (only possible for `pss == 0`).
pub fn download_evolution(pss: u32, completions: u64, seed: u64) -> Result<SwarmConfig> {
    SwarmConfig::builder()
        .pieces(200)
        .max_connections(7)
        .neighbor_set_size(pss)
        .arrival_rate(2.0)
        .initial_leechers(40)
        .initial_pieces(InitialPieces::Random { count: 60 })
        .metrics_warmup_rounds(100)
        .max_rounds(3_000)
        .stop_after_completions(completions)
        .seed(seed)
        .build()
}

/// Fig. 4(a) setup: efficiency measurement at a given connection cap `k`.
/// A well-provisioned swarm (large `s`, steady arrivals) so the connection
/// dynamics — not peer scarcity — bound the utilization.
///
/// # Errors
///
/// Propagates config validation errors (only possible for `k == 0`).
pub fn efficiency(k: u32, p_r: f64, seed: u64) -> Result<SwarmConfig> {
    SwarmConfig::builder()
        .pieces(100)
        .max_connections(k)
        .neighbor_set_size(40)
        .arrival_rate(3.0)
        .initial_leechers(60)
        .p_reencounter(p_r)
        .new_connections_per_round(1)
        .max_rounds(400)
        .seed(seed)
        .build()
}

/// Fig. 4(b)/(c) setup: stability under a skewed initial state with heavy
/// arrivals, comparing piece counts `B` (the paper contrasts 3 vs 10).
///
/// # Errors
///
/// Propagates config validation errors (only possible for `pieces == 0`).
pub fn stability(pieces: u32, seed: u64) -> Result<SwarmConfig> {
    SwarmConfig::builder()
        .pieces(pieces)
        .max_connections(3)
        .neighbor_set_size(15)
        .arrival_rate(20.0)
        .initial_leechers(300)
        .initial_pieces(InitialPieces::Skewed {
            count: (pieces / 3).max(1),
            strength: 0.25,
        })
        .max_rounds(400)
        .seed(seed)
        .build()
}

/// Fig. 4(d) setup: last-piece study, `B = 200`, optionally with peer-set
/// shaking at 90% (the paper's modification).
///
/// # Errors
///
/// Propagates config validation errors (infallible for these constants).
pub fn shake_study(shake: bool, completions: u64, seed: u64) -> Result<SwarmConfig> {
    let mut builder = SwarmConfig::builder();
    builder
        .pieces(200)
        .max_connections(4)
        .neighbor_set_size(4)
        .arrival_rate(1.0)
        .initial_leechers(30)
        .seed_uploads_per_round(1)
        .join_eviction(false)
        .max_rounds(6_000)
        .stop_after_completions(completions)
        .seed(seed);
    if shake {
        builder.shake_at(0.9);
    }
    builder.build()
}

/// Scale-probe setup used by the `swarm_scale` bench: a large closed
/// population (`B = 200`, `k = 7`, `s = 40`) driven for a fixed round
/// budget, sized by `peers`. The stage pipeline's per-phase timers
/// (`round.*`) attribute the cost; round-throughput from this preset is
/// the engine's headline performance number.
///
/// # Errors
///
/// Propagates config validation errors (only possible for `peers == 0`
/// being fine — the builder accepts it — so effectively infallible).
pub fn scale_probe(peers: u32, rounds: u64, seed: u64) -> Result<SwarmConfig> {
    SwarmConfig::builder()
        .pieces(200)
        .max_connections(7)
        .neighbor_set_size(40)
        .arrival_rate(20.0)
        .initial_leechers(peers)
        .initial_pieces(InitialPieces::Random { count: 20 })
        .max_rounds(rounds)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Swarm;

    #[test]
    fn presets_validate() {
        assert!(download_evolution(40, 100, 0).is_ok());
        assert!(efficiency(4, 0.9, 0).is_ok());
        assert!(stability(10, 0).is_ok());
        assert!(shake_study(true, 50, 0).is_ok());
        assert!(shake_study(false, 50, 0).is_ok());
        assert!(scale_probe(500, 30, 0).is_ok());
    }

    #[test]
    fn preset_parameters_match_paper() {
        let fig1 = download_evolution(25, 10, 1).unwrap();
        assert_eq!(fig1.pieces, 200);
        assert_eq!(fig1.max_connections, 7);
        assert_eq!(fig1.neighbor_set_size, 25);
        let shake = shake_study(true, 10, 1).unwrap();
        assert_eq!(shake.shake_at, Some(0.9));
        assert_eq!(shake.pieces, 200);
        assert_eq!(shake.neighbor_set_size, 4);
    }

    #[test]
    fn stability_preset_is_skewed() {
        let c = stability(3, 0).unwrap();
        assert!(matches!(c.initial_pieces, InitialPieces::Skewed { .. }));
        assert_eq!(c.pieces, 3);
    }

    #[test]
    fn small_scale_preset_runs() {
        // A scaled-down variant of the efficiency preset actually executes.
        let mut c = efficiency(2, 0.9, 3).unwrap();
        c.max_rounds = 30;
        c.initial_leechers = 15;
        let metrics = Swarm::new(c).run();
        assert_eq!(metrics.rounds_run, 30);
        assert!(metrics.mean_utilization() > 0.0);
    }
}
