//! The tracker: peer registry and random peer handout.
//!
//! Mirrors the paper's §2.1 description: a joining peer obtains a random
//! peer list from the tracker, refreshes it on periodic contact, and — in
//! the §7.1 *shake* extension — can request an entirely fresh random set.

use rand::Rng;

use crate::peer::PeerId;

/// The swarm tracker. Keeps the set of alive peers in join order (which
/// keeps handouts deterministic for a given RNG stream).
#[derive(Debug, Clone, Default)]
pub struct Tracker {
    alive: Vec<PeerId>,
}

impl Tracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Tracker::default()
    }

    /// Number of registered peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether no peers are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Registers a peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer is already registered (identifiers are unique).
    pub fn register(&mut self, id: PeerId) {
        assert!(
            !self.alive.contains(&id),
            "{id} registered twice with the tracker"
        );
        self.alive.push(id);
    }

    /// Deregisters a departing peer. Returns `true` if it was registered.
    pub fn deregister(&mut self, id: PeerId) -> bool {
        let before = self.alive.len();
        self.alive.retain(|&p| p != id);
        before != self.alive.len()
    }

    /// The alive peers in join order.
    #[must_use]
    pub fn peers(&self) -> &[PeerId] {
        &self.alive
    }

    /// Hands out up to `count` distinct random peers, excluding `requester`
    /// and anything in `exclude`.
    ///
    /// Sampling is a partial Fisher–Yates over a candidate list, so the
    /// result is uniform without replacement.
    pub fn handout<R: Rng + ?Sized>(
        &self,
        requester: PeerId,
        exclude: &[PeerId],
        count: usize,
        rng: &mut R,
    ) -> Vec<PeerId> {
        let mut candidates = Vec::new();
        self.handout_into(&mut candidates, requester, exclude, count, rng);
        candidates
    }

    /// [`handout`](Self::handout) into a caller-supplied buffer, for hot
    /// loops that hand out every round: the buffer is cleared and left
    /// holding the sampled peers, and its capacity is reused across
    /// calls. RNG consumption is identical to `handout`.
    pub fn handout_into<R: Rng + ?Sized>(
        &self,
        out: &mut Vec<PeerId>,
        requester: PeerId,
        exclude: &[PeerId],
        count: usize,
        rng: &mut R,
    ) {
        out.clear();
        out.extend(
            self.alive
                .iter()
                .copied()
                .filter(|&p| p != requester && !exclude.contains(&p)),
        );
        let take = count.min(out.len());
        for i in 0..take {
            let j = rng.gen_range(i..out.len());
            out.swap(i, j);
        }
        out.truncate(take);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn register_and_deregister() {
        let mut t = Tracker::new();
        assert!(t.is_empty());
        t.register(PeerId::synthetic(1));
        t.register(PeerId::synthetic(2));
        assert_eq!(t.len(), 2);
        assert!(t.deregister(PeerId::synthetic(1)));
        assert!(!t.deregister(PeerId::synthetic(1)));
        assert_eq!(t.peers(), &[PeerId::synthetic(2)]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut t = Tracker::new();
        t.register(PeerId::synthetic(1));
        t.register(PeerId::synthetic(1));
    }

    #[test]
    fn handout_excludes_requester_and_existing() {
        let mut t = Tracker::new();
        for i in 0..10 {
            t.register(PeerId::synthetic(i));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let got = t.handout(PeerId::synthetic(0), &[PeerId::synthetic(1), PeerId::synthetic(2)], 20, &mut rng);
        assert_eq!(got.len(), 7, "10 minus requester minus 2 excluded");
        assert!(!got.contains(&PeerId::synthetic(0)));
        assert!(!got.contains(&PeerId::synthetic(1)));
        assert!(!got.contains(&PeerId::synthetic(2)));
    }

    #[test]
    fn handout_is_without_replacement() {
        let mut t = Tracker::new();
        for i in 0..50 {
            t.register(PeerId::synthetic(i));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let got = t.handout(PeerId::synthetic(0), &[], 49, &mut rng);
        let mut sorted = got.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), got.len());
    }

    #[test]
    fn handout_respects_count() {
        let mut t = Tracker::new();
        for i in 0..30 {
            t.register(PeerId::synthetic(i));
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(t.handout(PeerId::synthetic(0), &[], 5, &mut rng).len(), 5);
        assert_eq!(t.handout(PeerId::synthetic(0), &[], 0, &mut rng).len(), 0);
    }

    #[test]
    fn handout_covers_population_over_draws() {
        // Every candidate is reachable (uniformity smoke test).
        let mut t = Tracker::new();
        for i in 0..6 {
            t.register(PeerId::synthetic(i));
        }
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            for p in t.handout(PeerId::synthetic(0), &[], 1, &mut rng) {
                seen.insert(p);
            }
        }
        assert_eq!(seen.len(), 5);
    }
}
