//! Generational peer storage.
//!
//! [`PeerStore`] is a slab with a free-list: departed peers leave holes
//! that later arrivals fill, so the backing vector stays dense no matter
//! how much churn the swarm sees. Every slot carries a *generation*
//! counter that is bumped on removal, and every [`PeerId`] embeds the
//! generation it was issued under — an id held across a departure stops
//! resolving instead of silently aliasing whichever newcomer inherited
//! the slot. Stale-id bugs thereby become `None` at the access site
//! rather than corrupted simulation state.
//!
//! Identity, ordering, hashing, display, and serialization of a
//! [`PeerId`] all use only its *sequence number* — the arrival index the
//! tracker hands out, unique for the whole run. The slot and generation
//! are routing detail private to the store. This matters for
//! determinism: everything the engine sorts, samples, or serializes
//! (connection pairs, credit maps, observer windows, telemetry) behaves
//! exactly as if ids were plain arrival numbers, regardless of which
//! slot a peer happens to occupy.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::peer::Peer;

/// Identifier of a peer: an arrival sequence number plus the slot and
/// generation that make it resolvable in a [`PeerStore`].
///
/// Two ids are equal exactly when their sequence numbers are equal;
/// ordering and hashing follow suit. Serialization emits only the
/// sequence number, so on-disk formats are identical to a plain integer
/// id.
#[derive(Debug, Clone, Copy)]
pub struct PeerId {
    seq: u64,
    slot: u32,
    generation: u32,
}

impl PeerId {
    /// Sentinel slot/generation for ids that were never issued by a
    /// store (deserialized or test-constructed). They compare and
    /// display normally but never resolve.
    const DETACHED: u32 = u32::MAX;

    /// Builds a detached id carrying only a sequence number — for
    /// tests, tools, and deserialization. It participates in equality,
    /// ordering, and display like any other id, but no store will
    /// resolve it.
    #[must_use]
    pub const fn synthetic(seq: u64) -> Self {
        PeerId {
            seq,
            slot: Self::DETACHED,
            generation: Self::DETACHED,
        }
    }

    /// The run-unique arrival sequence number.
    #[must_use]
    pub const fn seq(self) -> u64 {
        self.seq
    }

    /// The slab slot this id routes to (meaningless for synthetic ids).
    #[must_use]
    pub(crate) const fn slot(self) -> u32 {
        self.slot
    }
}

impl PartialEq for PeerId {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for PeerId {}

impl PartialOrd for PeerId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PeerId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.seq.cmp(&other.seq)
    }
}

impl std::hash::Hash for PeerId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.seq.hash(state);
    }
}

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer#{}", self.seq)
    }
}

impl Serialize for PeerId {
    fn to_value(&self) -> Value {
        self.seq.to_value()
    }
}

impl Deserialize for PeerId {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        u64::from_value(value).map(PeerId::synthetic)
    }
}

/// One slab slot: a generation counter plus the peer currently housed
/// there, if any.
#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    peer: Option<Peer>,
}

/// Generational slab of peers.
///
/// Insertion reuses freed slots (LIFO), lookup checks the generation,
/// and removal bumps it. Iteration over occupied slots is dense:
/// `capacity()` tracks the high-water population, not total arrivals.
#[derive(Debug, Default)]
pub struct PeerStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    next_seq: u64,
    len: usize,
    /// Lifetime count of slab lookups ([`get`](Self::get) /
    /// [`get_mut`](Self::get_mut)), for cost-attribution profiling. An
    /// atomic (relaxed) so read paths stay `&self` and the store stays
    /// `Sync` for sharded execution; wraps on overflow — consumers diff
    /// consecutive readings, so only deltas are meaningful.
    probes: std::sync::atomic::AtomicU64,
}

impl Clone for PeerStore {
    fn clone(&self) -> Self {
        PeerStore {
            slots: self.slots.clone(),
            free: self.free.clone(),
            next_seq: self.next_seq,
            len: self.len,
            probes: std::sync::atomic::AtomicU64::new(self.probe_count()),
        }
    }
}

impl PeerStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        PeerStore::default()
    }

    /// Number of peers currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated — the bound on `PeerId::slot`
    /// values in circulation, useful for sizing slot-indexed scratch
    /// tables.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates an id (fresh sequence number, first free slot) and
    /// stores the peer `f` builds for it.
    pub fn insert_with(&mut self, f: impl FnOnce(PeerId) -> Peer) -> PeerId {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).unwrap_or(u32::MAX);
                assert!(slot < PeerId::DETACHED, "peer store slot space exhausted");
                self.slots.push(Slot {
                    generation: 0,
                    peer: None,
                });
                slot
            }
        };
        let id = PeerId {
            seq: self.next_seq,
            slot,
            generation: self.slots[slot as usize].generation,
        };
        self.next_seq += 1;
        self.slots[slot as usize].peer = Some(f(id));
        self.len += 1;
        id
    }

    /// Resolves `id`, returning `None` for departed, stale, or
    /// synthetic ids.
    #[must_use]
    pub fn get(&self, id: PeerId) -> Option<&Peer> {
        self.probes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let slot = self.slots.get(id.slot as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.peer.as_ref()
    }

    /// Mutable variant of [`get`](Self::get).
    #[must_use]
    pub fn get_mut(&mut self, id: PeerId) -> Option<&mut Peer> {
        self.probes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let slot = self.slots.get_mut(id.slot as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.peer.as_mut()
    }

    /// Resolves an id that is known to be alive.
    ///
    /// # Panics
    ///
    /// Panics if the peer departed or the id is stale/synthetic — the
    /// engine treats that as a topology-bookkeeping bug, not a
    /// recoverable condition.
    #[must_use]
    pub fn peer(&self, id: PeerId) -> &Peer {
        self.get(id).expect("peer departed but was referenced")
    }

    /// Mutable variant of [`peer`](Self::peer).
    ///
    /// # Panics
    ///
    /// Panics if the peer departed or the id is stale/synthetic.
    #[must_use]
    pub fn peer_mut(&mut self, id: PeerId) -> &mut Peer {
        self.get_mut(id).expect("peer departed but was referenced")
    }

    /// Whether `id` resolves to a live peer.
    #[must_use]
    pub fn contains(&self, id: PeerId) -> bool {
        self.get(id).is_some()
    }

    /// Removes and returns the peer behind `id`, bumping the slot's
    /// generation so the id (and any copies of it) stop resolving.
    /// Returns `None` if the id is already dead.
    pub fn remove(&mut self, id: PeerId) -> Option<Peer> {
        let slot = self.slots.get_mut(id.slot as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        let peer = slot.peer.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.slot);
        self.len -= 1;
        Some(peer)
    }

    /// Lifetime number of slab lookups performed through
    /// [`get`](Self::get) / [`get_mut`](Self::get_mut) (and everything
    /// built on them). Wraps on overflow; diff consecutive readings to
    /// attribute probes to a code region.
    #[must_use]
    pub fn probe_count(&self) -> u64 {
        self.probes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Iterates over live peers in slot order.
    ///
    /// Slot order is *not* arrival order once churn has recycled slots;
    /// engine code that needs deterministic arrival order iterates the
    /// tracker's list instead.
    pub fn iter(&self) -> impl Iterator<Item = &Peer> {
        self.slots.iter().filter_map(|slot| slot.peer.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: usize) -> (PeerStore, Vec<PeerId>) {
        let mut store = PeerStore::new();
        let ids = (0..n)
            .map(|_| store.insert_with(|id| Peer::new(id, 4, 0)))
            .collect();
        (store, ids)
    }

    #[test]
    fn sequence_numbers_are_run_unique() {
        let (mut store, ids) = store_with(3);
        assert_eq!(ids[0].seq(), 0);
        assert_eq!(ids[2].seq(), 2);
        store.remove(ids[1]).expect("alive");
        let replacement = store.insert_with(|id| Peer::new(id, 4, 1));
        assert_eq!(replacement.seq(), 3, "seq never reused");
        assert_eq!(replacement.slot(), ids[1].slot(), "slot reused");
    }

    #[test]
    fn freed_slot_reuse_rejects_stale_id() {
        let (mut store, ids) = store_with(2);
        let stale = ids[0];
        store.remove(stale).expect("alive");
        let replacement = store.insert_with(|id| Peer::new(id, 4, 5));
        assert_eq!(replacement.slot(), stale.slot(), "slot was recycled");
        assert!(store.get(stale).is_none(), "stale id must not resolve");
        assert!(!store.contains(stale));
        assert!(store.remove(stale).is_none(), "stale remove is a no-op");
        assert_eq!(
            store.peer(replacement).joined_round,
            5,
            "new occupant resolves under its own id"
        );
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn double_remove_only_counts_once() {
        let (mut store, ids) = store_with(1);
        assert!(store.remove(ids[0]).is_some());
        assert!(store.remove(ids[0]).is_none());
        assert!(store.is_empty());
        assert_eq!(store.capacity(), 1);
    }

    #[test]
    fn synthetic_ids_never_resolve() {
        let (store, ids) = store_with(1);
        let ghost = PeerId::synthetic(ids[0].seq());
        assert_eq!(ghost, ids[0], "equality is by sequence number");
        assert!(store.get(ghost).is_none(), "but it does not resolve");
    }

    #[test]
    fn identity_ignores_slot_and_generation() {
        let (mut store, ids) = store_with(2);
        store.remove(ids[0]).expect("alive");
        let recycled = store.insert_with(|id| Peer::new(id, 4, 0));
        assert_eq!(recycled.slot(), ids[0].slot());
        assert_ne!(recycled, ids[0], "same slot, different identity");
        let mut sorted = vec![recycled, ids[1], ids[0]];
        sorted.sort();
        assert_eq!(sorted, vec![ids[0], ids[1], recycled], "ordered by seq");
    }

    #[test]
    fn serialization_is_a_plain_integer() {
        let id = PeerId::synthetic(42);
        let json = serde_json::to_string(&id).expect("serializes");
        assert_eq!(json, "42");
        let back: PeerId = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, id);
        assert_eq!(back.to_string(), "peer#42");
    }

    #[test]
    fn probe_count_tracks_lookups() {
        let (mut store, ids) = store_with(2);
        let before = store.probe_count();
        let _ = store.get(ids[0]);
        let _ = store.get_mut(ids[1]);
        let _ = store.peer(ids[0]); // goes through get
        assert_eq!(store.probe_count() - before, 3);
    }

    #[test]
    fn iter_skips_holes() {
        let (mut store, ids) = store_with(3);
        store.remove(ids[1]).expect("alive");
        let seqs: Vec<u64> = store.iter().map(|p| p.id.seq()).collect();
        assert_eq!(seqs, vec![0, 2]);
    }
}
