//! The round pipeline: `execute_round`'s seven phases as swappable stages.
//!
//! The monolithic engine ran its phases as private methods; here each
//! phase is a [`RoundStage`] — a struct owning its own scratch buffers —
//! and a round is "run every stage in the pipeline, in order, under its
//! phase timer". Scenarios compose pipelines: drop the shake stage to
//! ablate §7.1, drop departures to study a closed population, insert a
//! custom stage to prototype a policy, all without touching the engine
//! core.
//!
//! [`default_pipeline`] reproduces the paper's round order (and the old
//! engine's byte-for-byte, RNG call order included):
//!
//! 1. [`MaintainNeighbors`] — symmetric neighbor top-up from the tracker;
//! 2. [`Bootstrap`] — first-piece injection for empty peers plus origin-
//!    seed uploads (the model's `γ` channel);
//! 3. [`PruneConnections`] — lost mutual interest and the `1 − p_r` roll;
//! 4. [`EstablishConnections`] — tit-for-tat preference with an
//!    optimistic slot, success `p_n`;
//! 5. [`ExchangePieces`] — one piece per direction per connection;
//! 6. [`DepartCompleted`] — completed peers leave;
//! 7. [`ShakePeers`] — §7.1 neighbor-set shaking (present only when
//!    `shake_at` is configured);
//! 8. [`SampleMetrics`] — per-round metrics sampling.

mod bootstrap;
mod depart;
mod establish;
mod exchange;
mod maintain;
mod prune;
mod sample;
mod shake;

pub use bootstrap::Bootstrap;
pub use depart::DepartCompleted;
pub use establish::EstablishConnections;
pub use exchange::ExchangePieces;
pub use maintain::MaintainNeighbors;
pub use prune::PruneConnections;
pub use sample::SampleMetrics;
pub use shake::ShakePeers;

use crate::config::SwarmConfig;
use crate::engine::SwarmCore;

/// One phase of a swarm round.
///
/// Stages are stateful: scratch buffers live in the stage struct and are
/// reused across rounds, so per-round allocation stays O(population
/// growth), not O(population). A stage must leave the core's invariants
/// intact (symmetric neighbor/connection relations, replication index in
/// sync — see [`crate::engine::Swarm::assert_invariants`]); within a
/// stage it may do as it pleases.
///
/// Determinism contract: all randomness must come from the core's RNG
/// (via [`SwarmCore::rng`]) — or, for a stage with a parallel plan
/// phase, from stateless [`crate::selection::PlanStream`] substreams
/// keyed off run identity alone (seed, round, pair) — and the number
/// and order of RNG calls for a given swarm state must be a pure
/// function of that state. That is what makes same-seed runs
/// byte-identical at any thread count: worker threads only distribute
/// plan work, they never influence which stream decides what.
pub trait RoundStage: std::fmt::Debug {
    /// Stable stage name, used to select or disable stages by name
    /// (e.g. `btlab swarm --disable-stage shake`).
    fn name(&self) -> &'static str;

    /// Name of the phase timer this stage runs under (`round.*`; part of
    /// the manifest schema).
    fn timer_name(&self) -> &'static str;

    /// Executes the stage for one round.
    fn run(&mut self, core: &mut SwarmCore);

    /// Sets the worker-thread count for stages with a parallel plan
    /// phase. Purely a throughput knob: outputs are byte-identical at
    /// every value. Stages without a parallel phase ignore it.
    fn set_threads(&mut self, _threads: u32) {}
}

/// Names of all stages [`default_pipeline`] can produce, for validating
/// user-supplied stage selections.
pub const STAGE_NAMES: [&str; 8] = [
    "maintain",
    "bootstrap",
    "prune",
    "establish",
    "exchange",
    "depart",
    "shake",
    "sample",
];

/// The paper's round order as a pipeline. The shake stage is included
/// only when `shake_at` is configured — when absent it would be a no-op
/// every round.
#[must_use]
pub fn default_pipeline(config: &SwarmConfig) -> Vec<Box<dyn RoundStage>> {
    let mut stages: Vec<Box<dyn RoundStage>> = vec![
        Box::new(MaintainNeighbors::default()),
        Box::new(Bootstrap::default()),
        Box::new(PruneConnections::default()),
        Box::new(EstablishConnections::default()),
        Box::new(ExchangePieces::default()),
        Box::new(DepartCompleted::default()),
    ];
    if config.shake_at.is_some() {
        stages.push(Box::new(ShakePeers));
    }
    stages.push(Box::new(SampleMetrics));
    stages
}
