//! Connection establishment.

use rand::Rng;

use crate::engine::SwarmCore;
use crate::peer::PeerId;
use crate::stages::RoundStage;

/// Fills free connection slots from the potential set: tit-for-tat
/// preference with an optimistic-unchoke slot, success probability
/// `p_n`, capped at `k` connections and optionally at
/// `new_connections_per_round` initiations.
#[derive(Debug, Default)]
pub struct EstablishConnections {
    order: Vec<PeerId>,
    candidates: Vec<PeerId>,
}

// bt-stage: reads(config, round, tracker), writes(audit, cohort, obs, profile, rng, store)
impl RoundStage for EstablishConnections {
    fn name(&self) -> &'static str {
        "establish"
    }

    fn timer_name(&self) -> &'static str {
        "round.establish"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        let k = core.config.max_connections as usize;
        // Randomized service order prevents low ids from monopolizing
        // slots (Fisher–Yates, identical RNG consumption to a shuffle).
        self.order.clear();
        self.order.extend_from_slice(core.tracker.peers());
        for i in (1..self.order.len()).rev() {
            let j = core.rng.gen_range(0..=i);
            self.order.swap(i, j);
        }
        let attempt_cap = core
            .config
            .new_connections_per_round
            .map_or(usize::MAX, |c| c as usize);
        // Candidate-viability comparisons, for cost attribution: each
        // collection pass scans the peer's full neighbor set.
        let mut total_comparisons = 0u64;
        for &id in &self.order {
            let mut initiated = 0usize;
            let mut comparisons = 0u64;
            loop {
                if initiated >= attempt_cap || core.store.peer(id).connections.len() >= k {
                    break;
                }
                // Potential candidates; with blind encounters the remote
                // slot occupancy is unknown at selection time.
                let blind = core.config.blind_encounters;
                self.candidates.clear();
                {
                    let store = &core.store;
                    let me = store.peer(id);
                    comparisons += me.neighbors.len() as u64;
                    for &other in &me.neighbors {
                        let viable = store.get(other).is_some_and(|o| {
                            !me.is_connected(other)
                                && (blind || o.connections.len() < k)
                                && me.have.can_trade_with(&o.have)
                        });
                        if viable {
                            self.candidates.push(other);
                        }
                    }
                }
                if self.candidates.is_empty() {
                    break;
                }
                // Optimistic unchoke or tit-for-tat preference.
                let choice = if core.rng.gen::<f64>() < core.config.optimistic_prob {
                    self.candidates[core.rng.gen_range(0..self.candidates.len())]
                } else {
                    let me = core.store.peer(id);
                    self.candidates
                        .sort_by_key(|&c| (std::cmp::Reverse(me.credit_for(c)), c));
                    self.candidates[0]
                };
                // A blind attempt against a fully busy target fails.
                core.obs.conn_attempts.incr();
                let target_busy = core.store.peer(choice).connections.len() >= k;
                if !target_busy && core.rng.gen::<f64>() < core.config.p_new_connection {
                    core.store.peer_mut(id).connections.push(choice);
                    core.store.peer_mut(choice).connections.push(id);
                    core.obs.conn_successes.incr();
                    core.audit.conn_opened += 1;
                    core.cohort.slot(core.round, id.seq(), choice.seq(), true);
                    core.cohort.slot(core.round, choice.seq(), id.seq(), true);
                    initiated += 1;
                } else {
                    // Failed attempt consumes the round's chance with this
                    // candidate; stop trying to avoid infinite retries.
                    break;
                }
            }
            if comparisons > 0 {
                core.profile.add_peer_work(id.seq(), comparisons);
            }
            total_comparisons += comparisons;
        }
        core.profile
            .add_work("establish.candidate_comparisons", total_comparisons);
    }
}
