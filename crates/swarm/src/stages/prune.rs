//! Connection pruning.

use rand::Rng;

use crate::engine::SwarmCore;
use crate::peer::PeerId;
use crate::stages::RoundStage;

/// Drops connections that lost mutual interest or fail the per-round
/// `p_r` survival roll (the paper's re-encounter probability).
#[derive(Debug, Default)]
pub struct PruneConnections {
    pairs: Vec<(PeerId, PeerId)>,
}

// bt-stage: reads(config, round, tracker), writes(audit, cohort, profile, rng, store)
impl RoundStage for PruneConnections {
    fn name(&self) -> &'static str {
        "prune"
    }

    fn timer_name(&self) -> &'static str {
        "round.prune"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        core.collect_connection_pairs(&mut self.pairs);
        core.profile
            .add_work("prune.pairs_checked", self.pairs.len() as u64);
        for &(a, b) in &self.pairs {
            let tradable = core
                .store
                .peer(a)
                .have
                .can_trade_with(&core.store.peer(b).have);
            let survives = core.rng.gen::<f64>() < core.config.p_reencounter;
            if !tradable || !survives {
                core.store.peer_mut(a).connections.retain(|&p| p != b);
                core.store.peer_mut(b).connections.retain(|&p| p != a);
                core.audit.conn_closed += 1;
                core.cohort.slot(core.round, a.seq(), b.seq(), false);
                core.cohort.slot(core.round, b.seq(), a.seq(), false);
            }
        }
    }
}
