//! Per-round metrics sampling.

use bt_model::{DownloadState, Phase};

use crate::engine::SwarmCore;
use crate::stages::RoundStage;

/// Compact code a [`Phase`] is traced under in cohort streams
/// (`Bootstrap=0`, `Efficient=1`, `LastDownload=2`, `Done=3`).
pub(crate) fn phase_code(phase: Phase) -> u8 {
    match phase {
        Phase::Bootstrap => 0,
        Phase::Efficient => 1,
        Phase::LastDownload => 2,
        Phase::Done => 3,
    }
}

/// Samples population, replication entropy (straight off the
/// replication index — the old engine rescanned every bitfield here),
/// potential-set sizes bucketed by pieces held, slot utilization, and
/// the per-observer trajectories.
#[derive(Debug, Default)]
pub struct SampleMetrics;

// bt-stage: reads(config, replication, round, store, tracker), writes(audit, cohort, metrics, profile)
impl RoundStage for SampleMetrics {
    fn name(&self) -> &'static str {
        "sample"
    }

    fn timer_name(&self) -> &'static str {
        "round.sample"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        let round = core.round;
        let population = core.tracker.len();
        core.profile
            .add_work("sample.peers_sampled", population as u64);
        core.audit.metric_samples += population as u64;
        core.metrics.population.push((round, population as u64));
        // Replication entropy over the leecher population.
        core.metrics.entropy.push((round, core.replication.entropy()));
        // Potential-set sizes and utilization are steady-state
        // measurements, so they respect the warm-up.
        let in_steady_state = round >= core.config.metrics_warmup_rounds;
        let k = f64::from(core.config.max_connections);
        let obs_lo = u64::from(core.config.observe_from);
        let obs_hi = obs_lo + u64::from(core.config.observers);
        let mut conn_total = 0usize;
        for i in 0..population {
            let id = core.tracker.peers()[i];
            let potential = core.potential_size(id);
            let held = core.store.peer(id).have.count() as usize;
            if in_steady_state {
                core.metrics.potential_sum_by_pieces[held] += f64::from(potential);
                core.metrics.potential_count_by_pieces[held] += 1;
            }
            conn_total += core.store.peer(id).connections.len();
            if core.cohort.is_member(id.seq()) {
                let connections = core.store.peer(id).connections.len() as u32;
                let pieces = held as u32;
                core.cohort.observe(round, id.seq(), pieces, connections);
                let state = DownloadState::new(connections, pieces, potential);
                let phase = Phase::classify(state, core.config.pieces);
                core.cohort.phase(round, id.seq(), phase_code(phase));
            }
            if (obs_lo..obs_hi).contains(&id.seq()) {
                let connections = core.store.peer(id).connections.len() as u32;
                let pieces = core.store.peer(id).have.count();
                let log = core
                    .metrics
                    .observers
                    .iter_mut()
                    .find(|l| l.id == id)
                    .expect("observer log pre-created at spawn");
                log.rounds.push(round);
                log.pieces.push(pieces);
                log.potential.push(potential);
                log.connections.push(connections);
            }
        }
        if in_steady_state && population > 0 {
            core.metrics.utilization_sum += conn_total as f64 / (population as f64 * k);
            core.metrics.utilization_samples += 1;
        }
    }
}
