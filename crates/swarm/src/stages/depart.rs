//! Departures: completed peers leave immediately.

use crate::engine::SwarmCore;
use crate::metrics::CompletionRecord;
use crate::peer::PeerId;
use crate::stages::RoundStage;

/// Removes every peer that completed its download this round (the
/// paper's no-seeding assumption) and records its completion, unless it
/// joined during the metrics warm-up window.
///
/// Disabling this stage turns the swarm into a closed population where
/// finished peers linger as de-facto seeds — useful for seeding-ratio
/// scenarios, though completion metrics then stay empty.
#[derive(Debug, Default)]
pub struct DepartCompleted {
    done: Vec<PeerId>,
}

// bt-stage: reads(config, round), writes(audit, cohort, metrics, obs, piece_cells, profile, replication, store, tracker)
impl RoundStage for DepartCompleted {
    fn name(&self) -> &'static str {
        "depart"
    }

    fn timer_name(&self) -> &'static str {
        "round.depart"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        self.done.clear();
        for &id in core.tracker.peers() {
            if core.store.peer(id).have.is_complete() {
                self.done.push(id);
            }
        }
        core.profile
            .add_work("depart.departures", self.done.len() as u64);
        for &id in &self.done {
            // core.depart is the audit hook: it tallies the departure,
            // the pieces carried away, and the connections closed.
            let peer = core.depart(id);
            core.cohort.depart(core.round, id.seq(), peer.have.count());
            // Peers that joined during warm-up carry transient startup
            // dynamics; they depart normally but leave no record.
            if peer.joined_round >= core.config.metrics_warmup_rounds {
                let mut acq: Vec<u64> = peer
                    .piece_round
                    .iter()
                    .copied()
                    .filter(|&r| r != u64::MAX)
                    .collect();
                acq.sort_unstable();
                core.metrics.completions.push(CompletionRecord {
                    id,
                    joined_round: peer.joined_round,
                    completed_round: core.round,
                    acquisition_rounds: acq,
                    slow: peer.slow,
                });
                core.obs.completions.incr();
            }
            core.metrics.departures += 1;
            core.obs.departures.incr();
        }
    }
}
