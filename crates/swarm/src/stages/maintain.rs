//! Neighbor-set maintenance: symmetric top-up from the tracker.

use crate::engine::SwarmCore;
use crate::peer::PeerId;
use crate::stages::RoundStage;

/// Tops every under-populated neighbor set back up to `s` with a fresh
/// tracker handout (paper §2.1: periodic tracker contact).
///
/// The handout excludes the peer's current neighbors by borrowing the
/// neighbor list in place — the old engine cloned it per peer per round.
///
/// Tracker contact is amortized by `reannounce_interval`: the top-up
/// runs only on rounds where `(round - 1) % interval == 0` (rounds 1,
/// R+1, 2R+1, …), so the default of 1 re-announces every round — the
/// original behavior, RNG stream included — while larger values shrink
/// `maintain.handout_entries` at the cost of staler neighborhoods.
#[derive(Debug, Default)]
pub struct MaintainNeighbors {
    handout: Vec<PeerId>,
}

// bt-stage: reads(config, round, tracker), writes(audit, cohort, profile, rng, store)
impl RoundStage for MaintainNeighbors {
    fn name(&self) -> &'static str {
        "maintain"
    }

    fn timer_name(&self) -> &'static str {
        "round.maintain"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        // Pre-reannounce configs deserialize the interval as 0; treat
        // that as the old every-round behavior.
        let interval = core.config.reannounce_interval.max(1);
        if !core.round.saturating_sub(1).is_multiple_of(interval) {
            return;
        }
        let s = core.config.neighbor_set_size as usize;
        let mut handed = 0u64;
        // No stage mutates the tracker's alive list mid-round, so
        // indexing it afresh each iteration observes a stable order.
        for i in 0..core.tracker.len() {
            let id = core.tracker.peers()[i];
            let need = s.saturating_sub(core.store.peer(id).neighbors.len());
            if need == 0 {
                continue;
            }
            core.tracker.handout_into(
                &mut self.handout,
                id,
                &core.store.peer(id).neighbors,
                need,
                &mut core.rng,
            );
            let entries = self.handout.len() as u64;
            if entries > 0 {
                core.profile.add_peer_work(id.seq(), entries);
                core.cohort.handout(core.round, id.seq(), entries as u32);
            }
            handed += entries;
            for &other in &self.handout {
                core.add_symmetric_neighbor(id, other, false);
            }
        }
        core.profile.add_work("maintain.handout_entries", handed);
        core.audit.neighbor_handouts += handed;
    }
}
