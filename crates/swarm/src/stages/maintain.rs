//! Neighbor-set maintenance: symmetric top-up from the tracker.

use crate::engine::SwarmCore;
use crate::peer::PeerId;
use crate::stages::RoundStage;

/// Tops every under-populated neighbor set back up to `s` with a fresh
/// tracker handout (paper §2.1: periodic tracker contact).
///
/// The handout excludes the peer's current neighbors by borrowing the
/// neighbor list in place — the old engine cloned it per peer per round.
#[derive(Debug, Default)]
pub struct MaintainNeighbors {
    handout: Vec<PeerId>,
}

// bt-stage: reads(config, round, tracker), writes(audit, cohort, profile, rng, store)
impl RoundStage for MaintainNeighbors {
    fn name(&self) -> &'static str {
        "maintain"
    }

    fn timer_name(&self) -> &'static str {
        "round.maintain"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        let s = core.config.neighbor_set_size as usize;
        let mut handed = 0u64;
        // No stage mutates the tracker's alive list mid-round, so
        // indexing it afresh each iteration observes a stable order.
        for i in 0..core.tracker.len() {
            let id = core.tracker.peers()[i];
            let need = s.saturating_sub(core.store.peer(id).neighbors.len());
            if need == 0 {
                continue;
            }
            core.tracker.handout_into(
                &mut self.handout,
                id,
                &core.store.peer(id).neighbors,
                need,
                &mut core.rng,
            );
            let entries = self.handout.len() as u64;
            if entries > 0 {
                core.profile.add_peer_work(id.seq(), entries);
                core.cohort.handout(core.round, id.seq(), entries as u32);
            }
            handed += entries;
            for &other in &self.handout {
                core.add_symmetric_neighbor(id, other, false);
            }
        }
        core.profile.add_work("maintain.handout_entries", handed);
        core.audit.neighbor_handouts += handed;
    }
}
