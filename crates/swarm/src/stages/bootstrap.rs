//! Bootstrap injection and origin-seed uploads.

use rand::Rng;

use bt_obs::acquire_source;

use crate::config::BootstrapInjection;
use crate::engine::SwarmCore;
use crate::peer::PeerId;
use crate::stages::RoundStage;

/// First-piece injection for empty peers (the seed / optimistic-unchoke
/// channel) followed by the origin seed's rarest-first uploads — the
/// physical source of the model's `γ` channel. Seeds do not enforce
/// tit-for-tat, so both kinds of pieces are free.
///
/// Both sub-phases read the replication index instead of rescanning all
/// alive bitfields as the old engine did.
#[derive(Debug, Default)]
pub struct Bootstrap {
    empty: Vec<PeerId>,
    weights: Vec<f64>,
    wanted: Vec<u32>,
    rarest: Vec<u32>,
}

impl Bootstrap {
    /// Empty peers acquire a first piece via the configured policy.
    /// Returns the number of successful injections, for cost attribution.
    fn inject(&mut self, core: &mut SwarmCore) -> u64 {
        let policy = core.config.bootstrap;
        let pieces = core.config.pieces;
        let mut injected = 0u64;
        self.empty.clear();
        for &id in core.tracker.peers() {
            if core.store.peer(id).have.is_empty() {
                self.empty.push(id);
            }
        }
        if self.empty.is_empty() {
            return 0;
        }
        match policy {
            BootstrapInjection::Off => {}
            BootstrapInjection::Uniform => {
                for &id in &self.empty {
                    let p = core.rng.gen_range(0..pieces);
                    if core.acquire_piece(id, p) {
                        core.obs.bootstrap_injections.incr();
                        core.cohort
                            .acquire(core.round, id.seq(), p, acquire_source::BOOTSTRAP);
                        injected += 1;
                    }
                }
            }
            BootstrapInjection::Weighted { seed_weight } => {
                // Weights are frozen before the first draw (matching the
                // old once-per-round rescan), so injections this round do
                // not skew each other.
                self.weights.clear();
                self.weights.extend(
                    core.replication
                        .counts()
                        .iter()
                        .map(|&d| d as f64 + seed_weight),
                );
                for &id in &self.empty {
                    let p = bt_markov::chain::sample_index(&self.weights, &mut core.rng) as u32;
                    if core.acquire_piece(id, p) {
                        core.obs.bootstrap_injections.incr();
                        core.cohort
                            .acquire(core.round, id.seq(), p, acquire_source::BOOTSTRAP);
                        injected += 1;
                    }
                }
            }
        }
        injected
    }

    /// The origin seed uploads `seed_uploads_per_round` pieces to random
    /// leechers, swarm-rarest-first. This is what keeps every piece
    /// obtainable in a live swarm. Returns the number of pieces
    /// uploaded, for cost attribution.
    fn seed_uploads(&mut self, core: &mut SwarmCore) -> u64 {
        let mut uploaded = 0u64;
        let uploads = core.config.seed_uploads_per_round;
        if uploads == 0 || core.tracker.is_empty() {
            return 0;
        }
        for _ in 0..uploads {
            let alive = core.tracker.peers();
            let target = alive[core.rng.gen_range(0..alive.len())];
            self.wanted.clear();
            self.wanted
                .extend(core.store.peer(target).have.iter_missing());
            // Each upload sees the counts left by the previous one: the
            // index advances on acquire, exactly like the old engine's
            // locally incremented rescan copy.
            let Some(min_rep) = self
                .wanted
                .iter()
                .map(|&p| core.replication.counts()[p as usize])
                .min()
            else {
                continue;
            };
            self.rarest.clear();
            self.rarest.extend(
                self.wanted
                    .iter()
                    .copied()
                    .filter(|&p| core.replication.counts()[p as usize] == min_rep),
            );
            let piece = self.rarest[core.rng.gen_range(0..self.rarest.len())];
            if core.acquire_piece(target, piece) {
                core.cohort
                    .acquire(core.round, target.seq(), piece, acquire_source::SEED);
                uploaded += 1;
            }
        }
        uploaded
    }
}

// bt-stage: reads(config, round, tracker), writes(audit, cohort, obs, piece_cells, profile, replication, rng, store)
impl RoundStage for Bootstrap {
    fn name(&self) -> &'static str {
        "bootstrap"
    }

    fn timer_name(&self) -> &'static str {
        "round.bootstrap"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        let injected = self.inject(core);
        core.profile.add_work("bootstrap.injections", injected);
        core.audit.bootstrap_injections += injected;
        let uploaded = self.seed_uploads(core);
        core.profile.add_work("bootstrap.seed_uploads", uploaded);
        core.audit.seed_uploads += uploaded;
    }
}
