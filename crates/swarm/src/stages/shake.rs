//! Peer-set shaking (§7.1).

use crate::engine::SwarmCore;
use crate::stages::RoundStage;

/// Peers crossing the `shake_at` completion threshold drop their whole
/// neighbor set exactly once; the maintenance stage refills them from
/// the tracker next round. A no-op when `shake_at` is unset (the
/// default pipeline omits the stage entirely in that case).
#[derive(Debug, Default)]
pub struct ShakePeers;

// bt-stage: reads(config, round, tracker), writes(audit, cohort, obs, profile, store)
impl RoundStage for ShakePeers {
    fn name(&self) -> &'static str {
        "shake"
    }

    fn timer_name(&self) -> &'static str {
        "round.shake"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        let Some(threshold) = core.config.shake_at else {
            return;
        };
        let mut shaken = 0u64;
        for i in 0..core.tracker.len() {
            let id = core.tracker.peers()[i];
            let peer = core.store.peer(id);
            if peer.shaken || peer.completion() < threshold {
                continue;
            }
            // Take the neighbor list instead of cloning it; shake()
            // clears the (now empty) list anyway.
            core.audit.conn_closed += core.store.peer(id).connections.len() as u64;
            let ex_neighbors = std::mem::take(&mut core.store.peer_mut(id).neighbors);
            core.store.peer_mut(id).shake();
            core.obs.shakes.incr();
            core.cohort.shake(core.round, id.seq());
            shaken += 1;
            for &other in &ex_neighbors {
                if let Some(o) = core.store.get_mut(other) {
                    o.remove_neighbor(id);
                }
            }
        }
        core.profile.add_work("shake.peers_shaken", shaken);
        core.audit.shaken_peers += shaken;
    }
}
