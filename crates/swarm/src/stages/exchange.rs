//! Piece exchange: one piece per direction per connection.

use crate::engine::SwarmCore;
use crate::peer::{Peer, PeerId};
use crate::piece::Bitfield;
use crate::selection::select_piece;
use crate::stages::RoundStage;

/// Executes the round's exchanges under strict tit-for-tat: every
/// connection swaps one piece in each direction, or nothing at all.
///
/// This is the engine's hot path, and all per-peer state lives in
/// slot-indexed scratch tables reused across rounds (the generational
/// store keeps slot indices dense, so the tables stay small):
///
/// * `rep` — the downloader's neighbor-local replication view, computed
///   once per round from pre-exchange bitfields for every pair member;
/// * `taken` — pieces already claimed this round per peer;
/// * `budgets` — remaining upload budget (slow-peer bandwidth class).
///
/// `stamp` marks which slots were initialized this round; stale entries
/// from earlier rounds are never read, so nothing needs clearing. The
/// old engine kept these as `Vec<(PeerId, _)>` association lists with
/// linear scans per access — O(pairs · population) per round.
#[derive(Debug, Default)]
pub struct ExchangePieces {
    pairs: Vec<(PeerId, PeerId)>,
    stamp: Vec<u64>,
    rep: Vec<Vec<u64>>,
    taken: Vec<Vec<u32>>,
    budgets: Vec<u32>,
}

/// Prefer finishing an in-flight partial piece the uploader has (block
/// continuity); otherwise the caller picks a fresh piece.
fn continue_piece(downloader: &Peer, uploader_have: &Bitfield) -> Option<u32> {
    downloader
        .partial
        .keys()
        .copied()
        .filter(|&piece| uploader_have.contains(piece))
        .min()
}

impl ExchangePieces {
    /// Initializes the scratch tables for every peer appearing in a pair
    /// this round. Views are computed from pre-exchange bitfields: the
    /// paper's peers select against the replication state advertised at
    /// the start of the round, not against in-flight deliveries.
    ///
    /// Returns the number of bitfield words scanned while accumulating
    /// the neighbor-local replication views, for cost attribution.
    fn prepare(&mut self, core: &SwarmCore) -> u64 {
        let pieces = core.config.pieces as usize;
        let words_per_field = (pieces as u64).div_ceil(64);
        let mut words_scanned = 0u64;
        let round = core.round;
        let capacity = core.store.capacity();
        if self.stamp.len() < capacity {
            self.stamp.resize(capacity, 0);
            self.rep.resize_with(capacity, Vec::new);
            self.taken.resize_with(capacity, Vec::new);
            self.budgets.resize(capacity, 0);
        }
        for &(a, b) in &self.pairs {
            for id in [a, b] {
                let slot = id.slot() as usize;
                if self.stamp[slot] == round {
                    continue;
                }
                self.stamp[slot] = round;
                let peer = core.store.peer(id);
                // Heterogeneous bandwidth: slow peers can serve only a
                // bounded number of block-transfers per round.
                self.budgets[slot] = if peer.slow {
                    core.config.slow_upload_budget
                } else {
                    u32::MAX
                };
                self.taken[slot].clear();
                let counts = &mut self.rep[slot];
                counts.clear();
                counts.resize(pieces, 0);
                for &n in &peer.neighbors {
                    if let Some(other) = core.store.get(n) {
                        other.have.accumulate_into(counts);
                        words_scanned += words_per_field;
                    }
                }
            }
        }
        words_scanned
    }
}

// bt-stage: reads(config, round, tracker), writes(audit, cohort, obs, piece_cells, profile, replication, rng, store)
impl RoundStage for ExchangePieces {
    fn name(&self) -> &'static str {
        "exchange"
    }

    fn timer_name(&self) -> &'static str {
        "round.exchange"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        let strategy = core.config.piece_selection;
        core.collect_connection_pairs(&mut self.pairs);
        let words_scanned = self.prepare(core);
        core.profile
            .add_work("exchange.bitfield_words", words_scanned);
        let mut transfers = 0u64;
        for i in 0..self.pairs.len() {
            let (a, b) = self.pairs[i];
            let (slot_a, slot_b) = (a.slot() as usize, b.slot() as usize);
            // Strict tit-for-tat needs upload budget on both sides.
            if self.budgets[slot_a] == 0 || self.budgets[slot_b] == 0 {
                continue;
            }
            // Re-check tradability: earlier exchanges this round may have
            // exhausted the novelty.
            if !core
                .store
                .peer(a)
                .have
                .can_trade_with(&core.store.peer(b).have)
            {
                core.store.peer_mut(a).connections.retain(|&p| p != b);
                core.store.peer_mut(b).connections.retain(|&p| p != a);
                core.audit.conn_closed += 1;
                core.cohort.slot(core.round, a.seq(), b.seq(), false);
                core.cohort.slot(core.round, b.seq(), a.seq(), false);
                continue;
            }
            let wanted_a = {
                let peer_a = core.store.peer(a);
                let have_b = &core.store.peer(b).have;
                match continue_piece(peer_a, have_b) {
                    Some(piece) => Some(piece),
                    None => select_piece(
                        strategy,
                        &peer_a.have,
                        have_b,
                        &self.rep[slot_a],
                        &self.taken[slot_a],
                        &mut core.rng,
                    ),
                }
            };
            let wanted_b = {
                let peer_b = core.store.peer(b);
                let have_a = &core.store.peer(a).have;
                match continue_piece(peer_b, have_a) {
                    Some(piece) => Some(piece),
                    None => select_piece(
                        strategy,
                        &peer_b.have,
                        have_a,
                        &self.rep[slot_b],
                        &self.taken[slot_b],
                        &mut core.rng,
                    ),
                }
            };
            // Strict tit-for-tat: the swap happens only if both directions
            // carry a block.
            let (Some(piece_a), Some(piece_b)) = (wanted_a, wanted_b) else {
                continue;
            };
            if core.receive_block(a, piece_a) {
                core.store.peer_mut(a).record_credit(b);
                core.cohort
                    .acquire(core.round, a.seq(), piece_a, bt_obs::acquire_source::EXCHANGE);
            }
            if core.receive_block(b, piece_b) {
                core.store.peer_mut(b).record_credit(a);
                core.cohort
                    .acquire(core.round, b.seq(), piece_b, bt_obs::acquire_source::EXCHANGE);
            }
            // One block moved in each direction.
            core.obs.pieces_exchanged.add(2);
            transfers += 2;
            core.profile.add_peer_work(a.seq(), 1);
            core.profile.add_peer_work(b.seq(), 1);
            self.taken[slot_a].push(piece_a);
            self.taken[slot_b].push(piece_b);
            self.budgets[slot_a] = self.budgets[slot_a].saturating_sub(1);
            self.budgets[slot_b] = self.budgets[slot_b].saturating_sub(1);
        }
        core.profile.add_work("exchange.piece_transfers", transfers);
    }
}
