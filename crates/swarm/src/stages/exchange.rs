//! Piece exchange: one piece per direction per connection, executed as
//! a two-phase plan/commit stage.
//!
//! **Plan** (parallel, read-only): over an immutable [`CoreView`], every
//! connection pair gets a ranked candidate list per direction, drawn
//! from a stateless [`PlanStream`] keyed off run seed + round + the
//! pair's sequence numbers + direction. Worker threads only distribute
//! pairs across shards; since no decision depends on which shard made
//! it, the output is byte-identical at every `--threads` value and a
//! 1-shard plan equals an N-shard plan exactly.
//!
//! **Commit** (serial, RNG-free): applies decisions in canonical pair
//! order — live tradability re-check, candidate resolution against live
//! taken/possession state, block transfers, credits, budgets, audit,
//! cohort, piece-cell, and profiler events all land in deterministic
//! order.
//!
//! Candidates are ranked against *start-of-round* bitfields: the
//! paper's peers select against the replication state advertised at the
//! start of the round, not against in-flight deliveries. Block
//! continuity (finishing an in-flight partial piece) is resolved live
//! at commit — it depends on mid-round partial state but needs no
//! randomness.

use crate::engine::{CoreView, SwarmCore};
use crate::peer::{Peer, PeerId};
use crate::piece::Bitfield;
use crate::selection::{rank_pieces, PlanStream};
use crate::stages::RoundStage;

/// Executes the round's exchanges under strict tit-for-tat: every
/// connection swaps one piece in each direction, or nothing at all.
///
/// This is the engine's hot path, and all per-peer state lives in
/// slot-indexed scratch tables reused across rounds (the generational
/// store keeps slot indices dense, so the tables stay small):
///
/// * `rep` — the downloader's neighbor-local replication view, computed
///   once per round from pre-exchange bitfields for every pair member;
/// * `taken` — pieces already claimed this round per peer;
/// * `budgets` — remaining upload budget (slow-peer bandwidth class);
/// * `plans` — per-pair ranked candidate lists from the plan phase.
///
/// `stamp` marks which slots were initialized this round; stale entries
/// from earlier rounds are never read, so nothing needs clearing.
#[derive(Debug, Default)]
pub struct ExchangePieces {
    pairs: Vec<(PeerId, PeerId)>,
    stamp: Vec<u64>,
    rep: Vec<Vec<u64>>,
    taken: Vec<Vec<u32>>,
    budgets: Vec<u32>,
    plans: Vec<PairPlan>,
    involved: Vec<PeerId>,
    threads: u32,
}

/// The plan phase's output for one connection pair: a ranked candidate
/// list per download direction (`down_lo` = the lower-sequence peer
/// downloads from the higher, `down_hi` the reverse).
#[derive(Debug, Default)]
struct PairPlan {
    down_lo: Vec<u32>,
    down_hi: Vec<u32>,
}

/// Prefer finishing an in-flight partial piece the uploader has (block
/// continuity); otherwise the caller resolves a planned candidate.
fn continue_piece(downloader: &Peer, uploader_have: &Bitfield) -> Option<u32> {
    downloader
        .partial
        .keys()
        .copied()
        .filter(|&piece| uploader_have.contains(piece))
        .min()
}

/// Resolves the piece one direction of a pair actually downloads:
/// block continuity first, then the best planned candidate the
/// downloader neither holds nor has already claimed this round, then —
/// mirroring the serial fallback — the best unheld candidate even if
/// claimed elsewhere (duplicates are deduplicated on receipt).
fn resolve_candidate(
    downloader: &Peer,
    uploader_have: &Bitfield,
    candidates: &[u32],
    taken: &[u32],
) -> Option<u32> {
    if let Some(piece) = continue_piece(downloader, uploader_have) {
        return Some(piece);
    }
    candidates
        .iter()
        .copied()
        .find(|&c| !downloader.have.contains(c) && !taken.contains(&c))
        .or_else(|| {
            candidates
                .iter()
                .copied()
                .find(|&c| !downloader.have.contains(c))
        })
}

/// Fills the neighbor-local replication views for one shard of involved
/// peers, counting scanned bitfield words into `words` for cost
/// attribution.
fn fill_rep_shard(view: CoreView<'_>, tasks: &mut [(PeerId, &mut Vec<u64>)], words: &mut u64) {
    let pieces = view.config.pieces as usize;
    let words_per_field = (pieces as u64).div_ceil(64);
    for (id, counts) in tasks {
        let peer = view.store.peer(*id);
        counts.clear();
        counts.resize(pieces, 0);
        for &n in &peer.neighbors {
            if let Some(other) = view.store.get(n) {
                other.have.accumulate_into(counts);
                *words += words_per_field;
            }
        }
    }
}

/// Plans one shard of connection pairs: per direction, a ranked
/// candidate list drawn from that direction's [`PlanStream`].
fn plan_pairs_shard(
    view: CoreView<'_>,
    rep: &[Vec<u64>],
    pairs: &[(PeerId, PeerId)],
    plans: &mut [PairPlan],
) {
    let strategy = view.config.piece_selection;
    let seed = view.config.seed;
    // A downloader invalidates at most one candidate per other
    // connection (a claim or a mid-round acquisition), so k + 1 ranked
    // candidates always leave a usable one when any exists.
    let limit = view.config.max_connections as usize + 1;
    for (&(a, b), plan) in pairs.iter().zip(plans) {
        let peer_a = view.store.peer(a);
        let peer_b = view.store.peer(b);
        let mut stream = PlanStream::pair(seed, view.round, a.seq(), b.seq(), 0);
        rank_pieces(
            strategy,
            &peer_a.have,
            &peer_b.have,
            &rep[a.slot() as usize],
            limit,
            &mut stream,
            &mut plan.down_lo,
        );
        let mut stream = PlanStream::pair(seed, view.round, a.seq(), b.seq(), 1);
        rank_pieces(
            strategy,
            &peer_b.have,
            &peer_a.have,
            &rep[b.slot() as usize],
            limit,
            &mut stream,
            &mut plan.down_hi,
        );
    }
}

impl ExchangePieces {
    /// The read-only plan phase: initializes the round's scratch tables,
    /// fills the neighbor-local replication views, and ranks candidate
    /// pieces for every pair direction — sharded across the configured
    /// worker count. Returns the number of bitfield words scanned while
    /// accumulating replication views, for cost attribution.
    fn plan(&mut self, core: &SwarmCore) -> u64 {
        let round = core.round;
        let view = core.view();

        // Serial prepare walk: stamp the slots involved this round and
        // reset their budgets and claim lists. Views are computed from
        // pre-exchange bitfields: the paper's peers select against the
        // replication state advertised at the start of the round.
        let capacity = view.store.capacity();
        if self.stamp.len() < capacity {
            self.stamp.resize(capacity, 0);
            self.rep.resize_with(capacity, Vec::new);
            self.taken.resize_with(capacity, Vec::new);
            self.budgets.resize(capacity, 0);
        }
        self.involved.clear();
        for &(a, b) in &self.pairs {
            for id in [a, b] {
                let slot = id.slot() as usize;
                if self.stamp[slot] == round {
                    continue;
                }
                self.stamp[slot] = round;
                self.involved.push(id);
                // Heterogeneous bandwidth: slow peers can serve only a
                // bounded number of block-transfers per round.
                self.budgets[slot] = if view.store.peer(id).slow {
                    view.config.slow_upload_budget
                } else {
                    u32::MAX
                };
                self.taken[slot].clear();
            }
        }
        let workers = (self.threads.max(1) as usize).min(self.involved.len().max(1));

        // Parallel replication-view fill. Each involved peer owns a
        // distinct slot, so handing shards disjoint `&mut` count
        // buffers needs no locking: the buffers come from one
        // `iter_mut` pass (slot order) zipped against the involved ids
        // sorted the same way.
        self.involved.sort_unstable_by_key(|id| id.slot());
        let stamp = &self.stamp;
        let mut tasks: Vec<(PeerId, &mut Vec<u64>)> = self
            .involved
            .iter()
            .copied()
            .zip(
                self.rep
                    .iter_mut()
                    .enumerate()
                    .filter(|&(slot, _)| stamp[slot] == round)
                    .map(|(_, counts)| counts),
            )
            .collect();
        let mut lane_words = vec![0u64; workers];
        if workers <= 1 {
            fill_rep_shard(view, &mut tasks, &mut lane_words[0]);
        } else {
            let shard = tasks.len().div_ceil(workers).max(1);
            std::thread::scope(|scope| {
                for (task_shard, words) in tasks.chunks_mut(shard).zip(lane_words.iter_mut()) {
                    scope.spawn(move || fill_rep_shard(view, task_shard, words));
                }
            });
        }
        // Fixed lane-order merge (summation commutes, but the order is
        // pinned anyway so the merge never becomes scheduling-visible).
        let words_scanned: u64 = lane_words.iter().sum();

        // Parallel pair planning over immutable replication views.
        self.plans.resize_with(self.pairs.len(), PairPlan::default);
        let rep = &self.rep;
        let pair_workers = (self.threads.max(1) as usize).min(self.pairs.len().max(1));
        if pair_workers <= 1 {
            plan_pairs_shard(view, rep, &self.pairs, &mut self.plans);
        } else {
            let shard = self.pairs.len().div_ceil(pair_workers).max(1);
            let pairs = &self.pairs;
            std::thread::scope(|scope| {
                for (pair_shard, plan_shard) in
                    pairs.chunks(shard).zip(self.plans.chunks_mut(shard))
                {
                    scope.spawn(move || plan_pairs_shard(view, rep, pair_shard, plan_shard));
                }
            });
        }
        words_scanned
    }

    /// The serial, RNG-free commit phase: applies planned decisions in
    /// canonical pair order. Returns the number of block transfers.
    fn commit(&mut self, core: &mut SwarmCore) -> u64 {
        let mut transfers = 0u64;
        for i in 0..self.pairs.len() {
            let (a, b) = self.pairs[i];
            let (slot_a, slot_b) = (a.slot() as usize, b.slot() as usize);
            // Strict tit-for-tat needs upload budget on both sides.
            if self.budgets[slot_a] == 0 || self.budgets[slot_b] == 0 {
                continue;
            }
            // Re-check tradability live: earlier commits this round may
            // have exhausted the novelty.
            if !core
                .store
                .peer(a)
                .have
                .can_trade_with(&core.store.peer(b).have)
            {
                core.store.peer_mut(a).connections.retain(|&p| p != b);
                core.store.peer_mut(b).connections.retain(|&p| p != a);
                core.audit.conn_closed += 1;
                core.cohort.slot(core.round, a.seq(), b.seq(), false);
                core.cohort.slot(core.round, b.seq(), a.seq(), false);
                continue;
            }
            let wanted_a = resolve_candidate(
                core.store.peer(a),
                &core.store.peer(b).have,
                &self.plans[i].down_lo,
                &self.taken[slot_a],
            );
            let wanted_b = resolve_candidate(
                core.store.peer(b),
                &core.store.peer(a).have,
                &self.plans[i].down_hi,
                &self.taken[slot_b],
            );
            // Strict tit-for-tat: the swap happens only if both
            // directions carry a block.
            let (Some(piece_a), Some(piece_b)) = (wanted_a, wanted_b) else {
                continue;
            };
            if core.receive_block(a, piece_a) {
                core.store.peer_mut(a).record_credit(b);
                core.cohort
                    .acquire(core.round, a.seq(), piece_a, bt_obs::acquire_source::EXCHANGE);
            }
            if core.receive_block(b, piece_b) {
                core.store.peer_mut(b).record_credit(a);
                core.cohort
                    .acquire(core.round, b.seq(), piece_b, bt_obs::acquire_source::EXCHANGE);
            }
            // One block moved in each direction.
            core.obs.pieces_exchanged.add(2);
            transfers += 2;
            core.profile.add_peer_work(a.seq(), 1);
            core.profile.add_peer_work(b.seq(), 1);
            self.taken[slot_a].push(piece_a);
            self.taken[slot_b].push(piece_b);
            self.budgets[slot_a] = self.budgets[slot_a].saturating_sub(1);
            self.budgets[slot_b] = self.budgets[slot_b].saturating_sub(1);
        }
        transfers
    }
}

// bt-stage: plan-reads(config, round, tracker), commit-writes(audit, cohort, obs, piece_cells, profile, replication, store)
impl RoundStage for ExchangePieces {
    fn name(&self) -> &'static str {
        "exchange"
    }

    fn timer_name(&self) -> &'static str {
        "round.exchange"
    }

    fn run(&mut self, core: &mut SwarmCore) {
        core.collect_connection_pairs(&mut self.pairs);
        let words_scanned = self.plan(core);
        core.profile
            .add_work("exchange.bitfield_words", words_scanned);
        let transfers = self.commit(core);
        core.profile.add_work("exchange.piece_transfers", transfers);
    }

    fn set_threads(&mut self, threads: u32) {
        self.threads = threads;
    }
}
