//! Incrementally maintained per-piece replication counts.
//!
//! The paper's stability analysis (§6) and the engine's rarest-first
//! machinery both consume the global replication vector `d(p)` — how
//! many alive peers hold each piece. The monolithic engine recomputed it
//! by rescanning every alive bitfield at four call sites per round
//! (bootstrap weighting, seed uploads, metrics sampling, snapshots),
//! an O(N·B) cost each time. [`ReplicationIndex`] instead folds the
//! three events that can change the vector into O(1)/O(B) updates:
//!
//! * a peer **acquires** a piece → that piece's count rises by one;
//! * a peer **arrives** holding pieces → each held piece rises by one;
//! * a peer **departs** → each piece it held falls by one.
//!
//! The from-scratch rebuild ([`selection::replication_counts`]) is kept
//! as the property-test oracle: after any interleaving of the three
//! events, the index must equal the rebuild exactly.
//!
//! [`selection::replication_counts`]: crate::selection::replication_counts

use crate::piece::Bitfield;

/// Global per-piece replication counts, updated event-by-event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationIndex {
    counts: Vec<u64>,
}

impl ReplicationIndex {
    /// An all-zero index over `pieces` pieces.
    #[must_use]
    pub fn new(pieces: u32) -> Self {
        ReplicationIndex {
            counts: vec![0; pieces as usize],
        }
    }

    /// The replication vector `d(p)`, indexed by piece.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Records that an alive peer acquired `piece` (by exchange, seed
    /// upload, bootstrap injection, or initial endowment).
    pub fn on_acquire(&mut self, piece: u32) {
        self.counts[piece as usize] += 1;
    }

    /// Records the arrival of a peer already holding `have`.
    ///
    /// The engine endows initial pieces through the acquire path, so it
    /// only ever calls this with empty bitfields today; the method
    /// exists so external stages and tests can inject pre-loaded peers.
    pub fn on_arrival(&mut self, have: &Bitfield) {
        have.accumulate_into(&mut self.counts);
    }

    /// Records the departure of a peer that held `have`.
    pub fn on_departure(&mut self, have: &Bitfield) {
        for piece in have.iter() {
            let count = &mut self.counts[piece as usize];
            debug_assert!(*count > 0, "departure of piece {piece} underflows index");
            *count = count.saturating_sub(1);
        }
    }

    /// Replication entropy `E = min d / max d` of the current counts
    /// (§6 of the paper).
    #[must_use]
    pub fn entropy(&self) -> f64 {
        crate::engine::entropy_of(&self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(pieces: u32, held: &[u32]) -> Bitfield {
        let mut field = Bitfield::new(pieces);
        for &p in held {
            field.set(p);
        }
        field
    }

    #[test]
    fn events_accumulate() {
        let mut index = ReplicationIndex::new(4);
        index.on_arrival(&bf(4, &[0, 2]));
        index.on_acquire(2);
        index.on_acquire(3);
        assert_eq!(index.counts(), &[1, 0, 2, 1]);
        index.on_departure(&bf(4, &[0, 2]));
        assert_eq!(index.counts(), &[0, 0, 1, 1]);
    }

    #[test]
    fn matches_oracle_on_simple_history() {
        let fields = [bf(8, &[0, 1, 2]), bf(8, &[2, 3]), bf(8, &[7])];
        let mut index = ReplicationIndex::new(8);
        for field in &fields {
            index.on_arrival(field);
        }
        let oracle = crate::selection::replication_counts(8, fields.iter());
        assert_eq!(index.counts(), &oracle[..]);
    }

    #[test]
    fn entropy_of_uniform_counts_is_one() {
        let mut index = ReplicationIndex::new(3);
        for p in 0..3 {
            index.on_acquire(p);
        }
        assert!((index.entropy() - 1.0).abs() < 1e-12);
    }
}
