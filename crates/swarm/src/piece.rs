//! Pieces and piece-possession bitfields.

use rand::Rng;

/// Identifier of a piece: its index in `0..B`.
pub type PieceId = u32;

/// A fixed-size bitfield recording which of a file's `B` pieces a peer
/// holds.
///
/// # Example
///
/// ```
/// use bt_swarm::piece::Bitfield;
///
/// let mut have = Bitfield::new(10);
/// have.set(3);
/// have.set(7);
/// assert_eq!(have.count(), 2);
/// assert!(have.contains(3));
/// assert!(!have.is_complete());
/// let missing: Vec<u32> = have.iter_missing().collect();
/// assert_eq!(missing.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bitfield {
    words: Vec<u64>,
    len: u32,
    count: u32,
}

impl Bitfield {
    /// Creates an empty bitfield over `len` pieces.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    pub fn new(len: u32) -> Self {
        assert!(len > 0, "a file has at least one piece");
        Bitfield {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// Creates a complete bitfield (a seed's possession map).
    #[must_use]
    pub fn full(len: u32) -> Self {
        let mut bf = Bitfield::new(len);
        for p in 0..len {
            bf.set(p);
        }
        bf
    }

    /// Number of pieces in the file.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the peer holds no pieces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of pieces held.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether all pieces are held.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.count == self.len
    }

    /// Whether piece `p` is held.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len`.
    #[must_use]
    pub fn contains(&self, p: PieceId) -> bool {
        assert!(p < self.len, "piece {p} out of range {}", self.len);
        self.words[(p / 64) as usize] & (1 << (p % 64)) != 0
    }

    /// Marks piece `p` as held. Returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len`.
    pub fn set(&mut self, p: PieceId) -> bool {
        assert!(p < self.len, "piece {p} out of range {}", self.len);
        let word = &mut self.words[(p / 64) as usize];
        let mask = 1 << (p % 64);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.count += 1;
        true
    }

    /// Iterates over held pieces in increasing order.
    ///
    /// Word-at-a-time via `trailing_zeros`, so sparse bitfields cost
    /// O(words + held) rather than O(len).
    pub fn iter(&self) -> SetBits<'_> {
        SetBits(WordBits::new(self.words.iter().copied()))
    }

    /// Iterates over missing pieces in increasing order.
    pub fn iter_missing(&self) -> impl Iterator<Item = PieceId> + '_ {
        let last = self.words.len().saturating_sub(1);
        let tail_bits = self.len % 64;
        let words = self.words.iter().enumerate().map(move |(i, &word)| {
            // Invert, then mask off the phantom bits past `len` in the
            // final word so they do not read as "missing".
            if i == last && tail_bits != 0 {
                !word & ((1u64 << tail_bits) - 1)
            } else {
                !word
            }
        });
        WordBits::new(words)
    }

    /// Adds one to `counts[p]` for every held piece `p` — the inner
    /// loop of replication counting, word-at-a-time.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is shorter than `len` pieces.
    pub fn accumulate_into(&self, counts: &mut [u64]) {
        assert!(
            counts.len() >= self.len as usize,
            "count table shorter than bitfield"
        );
        for (i, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let p = i * 64 + bits.trailing_zeros() as usize;
                counts[p] += 1;
                bits &= bits - 1;
            }
        }
    }

    /// Whether `other` holds at least one piece that `self` lacks
    /// (`self` is *interested in* `other`, in protocol terms).
    ///
    /// # Panics
    ///
    /// Panics if the bitfields cover different files.
    #[must_use]
    pub fn is_interested_in(&self, other: &Bitfield) -> bool {
        assert_eq!(self.len, other.len, "bitfields cover different files");
        self.words
            .iter()
            .zip(&other.words)
            .any(|(mine, theirs)| theirs & !mine != 0)
    }

    /// Whether `self` and `other` can trade under strict tit-for-tat:
    /// each holds at least one piece the other lacks (the paper's
    /// potential-set membership test).
    #[must_use]
    pub fn can_trade_with(&self, other: &Bitfield) -> bool {
        self.is_interested_in(other) && other.is_interested_in(self)
    }

    /// Pieces `other` holds that `self` lacks, in increasing order.
    #[must_use]
    pub fn wanted_from(&self, other: &Bitfield) -> Vec<PieceId> {
        assert_eq!(self.len, other.len, "bitfields cover different files");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(mine, theirs)| theirs & !mine);
        WordBits::new(words).collect()
    }

    /// A uniformly random missing piece, or `None` if complete.
    pub fn random_missing<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PieceId> {
        let missing: Vec<PieceId> = self.iter_missing().collect();
        if missing.is_empty() {
            None
        } else {
            Some(missing[rng.gen_range(0..missing.len())])
        }
    }
}

/// Iterator over the set bits of a stream of 64-bit words, yielding
/// bit indices in increasing order via `trailing_zeros`.
struct WordBits<I> {
    words: I,
    current: u64,
    /// Base piece index of the word in `current`. Starts one word
    /// "before" zero so the first load lands on base 0.
    base: u32,
}

impl<I: Iterator<Item = u64>> WordBits<I> {
    fn new(words: I) -> Self {
        WordBits {
            words,
            current: 0,
            base: 0u32.wrapping_sub(64),
        }
    }
}

impl<I: Iterator<Item = u64>> Iterator for WordBits<I> {
    type Item = PieceId;

    fn next(&mut self) -> Option<PieceId> {
        while self.current == 0 {
            self.current = self.words.next()?;
            self.base = self.base.wrapping_add(64);
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.base + bit)
    }
}

/// Iterator over held pieces, returned by [`Bitfield::iter`].
pub struct SetBits<'a>(WordBits<std::iter::Copied<std::slice::Iter<'a, u64>>>);

impl Iterator for SetBits<'_> {
    type Item = PieceId;

    fn next(&mut self) -> Option<PieceId> {
        self.0.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_is_empty_full_is_complete() {
        let empty = Bitfield::new(100);
        assert!(empty.is_empty());
        assert_eq!(empty.count(), 0);
        let full = Bitfield::full(100);
        assert!(full.is_complete());
        assert_eq!(full.count(), 100);
    }

    #[test]
    fn set_is_idempotent() {
        let mut bf = Bitfield::new(65);
        assert!(bf.set(64));
        assert!(!bf.set(64));
        assert_eq!(bf.count(), 1);
        assert!(bf.contains(64));
        assert!(!bf.contains(63));
    }

    #[test]
    fn iter_and_missing_partition() {
        let mut bf = Bitfield::new(10);
        bf.set(1);
        bf.set(9);
        let have: Vec<_> = bf.iter().collect();
        let missing: Vec<_> = bf.iter_missing().collect();
        assert_eq!(have, vec![1, 9]);
        assert_eq!(have.len() + missing.len(), 10);
        assert!(!missing.contains(&1));
    }

    #[test]
    fn interest_is_directional() {
        let mut a = Bitfield::new(4);
        let mut b = Bitfield::new(4);
        a.set(0);
        b.set(0);
        b.set(1);
        assert!(a.is_interested_in(&b)); // b has piece 1
        assert!(!b.is_interested_in(&a)); // a has nothing new
        assert!(!a.can_trade_with(&b));
    }

    #[test]
    fn trade_requires_mutual_novelty() {
        let mut a = Bitfield::new(4);
        let mut b = Bitfield::new(4);
        a.set(0);
        b.set(1);
        assert!(a.can_trade_with(&b));
        assert!(b.can_trade_with(&a));
    }

    #[test]
    fn identical_sets_cannot_trade() {
        let mut a = Bitfield::new(4);
        let mut b = Bitfield::new(4);
        for p in [0, 2] {
            a.set(p);
            b.set(p);
        }
        assert!(!a.can_trade_with(&b));
    }

    #[test]
    fn wanted_from_lists_difference() {
        let mut a = Bitfield::new(5);
        let mut b = Bitfield::new(5);
        a.set(0);
        b.set(0);
        b.set(2);
        b.set(4);
        assert_eq!(a.wanted_from(&b), vec![2, 4]);
        assert!(b.wanted_from(&a).is_empty());
    }

    #[test]
    fn random_missing_respects_support() {
        let mut bf = Bitfield::new(6);
        for p in [0, 1, 2, 4, 5] {
            bf.set(p);
        }
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            assert_eq!(bf.random_missing(&mut rng), Some(3));
        }
        bf.set(3);
        assert_eq!(bf.random_missing(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_bounds_checked() {
        let _ = Bitfield::new(5).contains(5);
    }

    #[test]
    #[should_panic(expected = "different files")]
    fn interest_requires_same_len() {
        let _ = Bitfield::new(5).is_interested_in(&Bitfield::new(6));
    }

    #[test]
    fn word_boundary_cases() {
        let mut bf = Bitfield::new(128);
        bf.set(63);
        bf.set(64);
        bf.set(127);
        assert_eq!(bf.iter().collect::<Vec<_>>(), vec![63, 64, 127]);
        assert_eq!(bf.count(), 3);
    }

    #[test]
    fn iter_missing_masks_phantom_tail_bits() {
        // 70 pieces = one full word + a 6-bit tail; the 58 phantom bits
        // of the second word must never surface as "missing".
        let mut bf = Bitfield::new(70);
        for p in 0..70 {
            bf.set(p);
        }
        assert_eq!(bf.iter_missing().count(), 0);
        let mut partial = Bitfield::new(70);
        partial.set(0);
        partial.set(69);
        let missing: Vec<_> = partial.iter_missing().collect();
        assert_eq!(missing.len(), 68);
        assert_eq!(missing.first(), Some(&1));
        assert_eq!(missing.last(), Some(&68));
    }

    #[test]
    fn accumulate_into_counts_each_held_piece() {
        let mut a = Bitfield::new(70);
        let mut b = Bitfield::new(70);
        for p in [0, 63, 64, 69] {
            a.set(p);
        }
        b.set(63);
        let mut counts = vec![0u64; 70];
        a.accumulate_into(&mut counts);
        b.accumulate_into(&mut counts);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[63], 2);
        assert_eq!(counts[64], 1);
        assert_eq!(counts[69], 1);
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }
}
