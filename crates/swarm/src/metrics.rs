//! Measurement collection for swarm runs.
//!
//! Everything the paper's figures need: per-round population and entropy
//! series (Fig. 4(b)/(c)), potential-set size aggregated by piece count
//! (Fig. 1(a)), first-passage times to each piece count (Fig. 1(b)),
//! per-acquisition-index inter-piece times (Fig. 4(d)), connection-slot
//! utilization (Fig. 4(a)), and full per-round logs for designated
//! observer peers (Fig. 2).

use serde::{Deserialize, Serialize};

use crate::peer::PeerId;

/// Outcome record of a completed download.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionRecord {
    /// The peer that completed.
    pub id: PeerId,
    /// Round it joined.
    pub joined_round: u64,
    /// Round it held the full file.
    pub completed_round: u64,
    /// Rounds (absolute) at which the 1st, 2nd, … piece was acquired,
    /// sorted ascending.
    pub acquisition_rounds: Vec<u64>,
    /// Whether the peer belonged to the slow bandwidth class.
    #[serde(default)]
    pub slow: bool,
}

impl CompletionRecord {
    /// Total download duration in rounds.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.completed_round - self.joined_round
    }

    /// Rounds spent waiting for the `j`-th piece (1-based):
    /// `acq[j] − acq[j−1]`, with the first piece measured from the join
    /// round. Returns `None` if `j` is out of range.
    #[must_use]
    pub fn inter_piece_time(&self, j: usize) -> Option<u64> {
        if j == 0 || j > self.acquisition_rounds.len() {
            return None;
        }
        let prev = if j == 1 {
            self.joined_round
        } else {
            self.acquisition_rounds[j - 2]
        };
        Some(self.acquisition_rounds[j - 1].saturating_sub(prev))
    }
}

/// Per-round log of a designated observer peer — the raw material of the
/// paper's Fig. 2 and of the trace toolkit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverLog {
    /// The observed peer.
    pub id: PeerId,
    /// Sampled rounds (absolute).
    pub rounds: Vec<u64>,
    /// Pieces held at each sample.
    pub pieces: Vec<u32>,
    /// Potential-set size at each sample.
    pub potential: Vec<u32>,
    /// Active connections at each sample.
    pub connections: Vec<u32>,
}

impl ObserverLog {
    /// Creates an empty log for `id`.
    #[must_use]
    pub fn new(id: PeerId) -> Self {
        ObserverLog {
            id,
            rounds: Vec::new(),
            pieces: Vec::new(),
            potential: Vec::new(),
            connections: Vec::new(),
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// Aggregated metrics of a swarm run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SwarmMetrics {
    /// `(round, leecher population)` samples.
    pub population: Vec<(u64, u64)>,
    /// `(round, entropy E = min(d)/max(d))` samples.
    pub entropy: Vec<(u64, f64)>,
    /// Completion records, in completion order.
    pub completions: Vec<CompletionRecord>,
    /// Σ potential-set sizes, bucketed by pieces held.
    pub potential_sum_by_pieces: Vec<f64>,
    /// Sample counts per bucket.
    pub potential_count_by_pieces: Vec<u64>,
    /// Σ per-round slot utilization samples.
    pub utilization_sum: f64,
    /// Number of utilization samples.
    pub utilization_samples: u64,
    /// Full logs of observer peers.
    pub observers: Vec<ObserverLog>,
    /// Total arrivals (including initial leechers).
    pub arrivals: u64,
    /// Total completed departures.
    pub departures: u64,
    /// Rounds executed.
    pub rounds_run: u64,
}

impl SwarmMetrics {
    /// Creates an empty collector for a file of `pieces` pieces.
    #[must_use]
    pub fn new(pieces: u32) -> Self {
        SwarmMetrics {
            potential_sum_by_pieces: vec![0.0; pieces as usize + 1],
            potential_count_by_pieces: vec![0; pieces as usize + 1],
            ..SwarmMetrics::default()
        }
    }

    /// Mean potential-set size at each piece count (NaN where unobserved)
    /// — the Fig. 1(a) series before normalization.
    #[must_use]
    pub fn mean_potential_by_pieces(&self) -> Vec<f64> {
        self.potential_sum_by_pieces
            .iter()
            .zip(&self.potential_count_by_pieces)
            .map(|(&sum, &n)| if n == 0 { f64::NAN } else { sum / n as f64 })
            .collect()
    }

    /// Fig. 1(a): mean potential-set size divided by the neighbor-set size.
    #[must_use]
    pub fn potential_ratio_by_pieces(&self, neighbor_set_size: u32) -> Vec<f64> {
        self.mean_potential_by_pieces()
            .iter()
            .map(|v| v / f64::from(neighbor_set_size))
            .collect()
    }

    /// Fig. 1(b): mean round (relative to join) at which completed peers
    /// first held `b` pieces, for `b = 0..=B` (NaN if no completions).
    #[must_use]
    #[allow(clippy::needless_range_loop)] // index b is the piece count itself
    pub fn mean_time_to_pieces(&self, pieces: u32) -> Vec<f64> {
        let mut out = vec![f64::NAN; pieces as usize + 1];
        if self.completions.is_empty() {
            return out;
        }
        out[0] = 0.0;
        for b in 1..=pieces as usize {
            let mut sum = 0.0;
            let mut n = 0u64;
            for rec in &self.completions {
                if let Some(&round) = rec.acquisition_rounds.get(b - 1) {
                    sum += (round - rec.joined_round) as f64;
                    n += 1;
                }
            }
            if n > 0 {
                out[b] = sum / n as f64;
            }
        }
        out
    }

    /// Fig. 4(d): mean inter-piece time for each acquisition index
    /// `1..=B` over completed peers (index 0 of the result is unused NaN).
    #[must_use]
    #[allow(clippy::needless_range_loop)] // index j is the acquisition index
    pub fn mean_inter_piece_times(&self, pieces: u32) -> Vec<f64> {
        let mut out = vec![f64::NAN; pieces as usize + 1];
        for j in 1..=pieces as usize {
            let mut sum = 0.0;
            let mut n = 0u64;
            for rec in &self.completions {
                if let Some(t) = rec.inter_piece_time(j) {
                    sum += t as f64;
                    n += 1;
                }
            }
            if n > 0 {
                out[j] = sum / n as f64;
            }
        }
        out
    }

    /// Mean bootstrap duration over completions: rounds from joining to
    /// holding a second piece (the paper's bootstrap-phase exit). NaN if
    /// there are no completions with at least two pieces.
    #[must_use]
    pub fn mean_bootstrap_rounds(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for rec in &self.completions {
            if let Some(&second) = rec.acquisition_rounds.get(1) {
                sum += (second - rec.joined_round) as f64;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Mean download duration in rounds split by bandwidth class:
    /// `(fast, slow)`; NaN entries where a class has no completions.
    #[must_use]
    pub fn mean_download_rounds_by_class(&self) -> (f64, f64) {
        let mean_of = |slow: bool| {
            let durations: Vec<f64> = self
                .completions
                .iter()
                .filter(|r| r.slow == slow)
                .map(|r| r.duration() as f64)
                .collect();
            if durations.is_empty() {
                f64::NAN
            } else {
                durations.iter().sum::<f64>() / durations.len() as f64
            }
        };
        (mean_of(false), mean_of(true))
    }

    /// Mean download duration in rounds over completions (NaN if none).
    #[must_use]
    pub fn mean_download_rounds(&self) -> f64 {
        if self.completions.is_empty() {
            return f64::NAN;
        }
        self.completions
            .iter()
            .map(|r| r.duration() as f64)
            .sum::<f64>()
            / self.completions.len() as f64
    }

    /// Average connection-slot utilization (the Fig. 4(a) "simulation"
    /// series); NaN if never sampled.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization_samples == 0 {
            f64::NAN
        } else {
            self.utilization_sum / self.utilization_samples as f64
        }
    }

    /// Final entropy sample, or NaN.
    #[must_use]
    pub fn final_entropy(&self) -> f64 {
        self.entropy.last().map_or(f64::NAN, |&(_, e)| e)
    }

    /// Final population sample, or 0.
    #[must_use]
    pub fn final_population(&self) -> u64 {
        self.population.last().map_or(0, |&(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(joined: u64, acq: &[u64]) -> CompletionRecord {
        CompletionRecord {
            id: PeerId::synthetic(1),
            joined_round: joined,
            completed_round: *acq.last().unwrap(),
            acquisition_rounds: acq.to_vec(),
            slow: false,
        }
    }

    #[test]
    fn completion_duration_and_gaps() {
        let rec = record(10, &[12, 13, 17]);
        assert_eq!(rec.duration(), 7);
        assert_eq!(rec.inter_piece_time(1), Some(2));
        assert_eq!(rec.inter_piece_time(2), Some(1));
        assert_eq!(rec.inter_piece_time(3), Some(4));
        assert_eq!(rec.inter_piece_time(0), None);
        assert_eq!(rec.inter_piece_time(4), None);
    }

    #[test]
    fn mean_time_to_pieces_averages_over_completions() {
        let mut m = SwarmMetrics::new(3);
        m.completions.push(record(0, &[1, 2, 3]));
        m.completions.push(record(10, &[13, 14, 15]));
        let mean = m.mean_time_to_pieces(3);
        assert_eq!(mean[0], 0.0);
        assert!((mean[1] - 2.0).abs() < 1e-12); // (1 + 3) / 2
        assert!((mean[3] - 4.0).abs() < 1e-12); // (3 + 5) / 2
    }

    #[test]
    fn mean_time_to_pieces_empty_is_nan() {
        let m = SwarmMetrics::new(3);
        assert!(m.mean_time_to_pieces(3).iter().all(|v| v.is_nan()));
        assert!(m.mean_download_rounds().is_nan());
    }

    #[test]
    fn inter_piece_means() {
        let mut m = SwarmMetrics::new(3);
        m.completions.push(record(0, &[1, 2, 10]));
        let gaps = m.mean_inter_piece_times(3);
        assert!(gaps[0].is_nan());
        assert!((gaps[3] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn potential_ratio_normalizes() {
        let mut m = SwarmMetrics::new(2);
        m.potential_sum_by_pieces[1] = 30.0;
        m.potential_count_by_pieces[1] = 10;
        let ratio = m.potential_ratio_by_pieces(6);
        assert!((ratio[1] - 0.5).abs() < 1e-12);
        assert!(ratio[0].is_nan());
    }

    #[test]
    fn utilization_mean() {
        let mut m = SwarmMetrics::new(2);
        assert!(m.mean_utilization().is_nan());
        m.utilization_sum = 1.5;
        m.utilization_samples = 3;
        assert!((m.mean_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn final_series_accessors() {
        let mut m = SwarmMetrics::new(2);
        assert!(m.final_entropy().is_nan());
        assert_eq!(m.final_population(), 0);
        m.entropy.push((5, 0.7));
        m.population.push((5, 42));
        assert_eq!(m.final_entropy(), 0.7);
        assert_eq!(m.final_population(), 42);
    }

    #[test]
    fn observer_log_len() {
        let mut log = ObserverLog::new(PeerId::synthetic(0));
        assert!(log.is_empty());
        log.rounds.push(1);
        log.pieces.push(0);
        log.potential.push(2);
        log.connections.push(0);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn metrics_serialize() {
        let m = SwarmMetrics::new(4);
        let json = serde_json::to_string(&m).unwrap();
        let back: SwarmMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
