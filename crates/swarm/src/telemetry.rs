//! Per-round telemetry: time-series recording, online phase detection,
//! and anomaly flight recording.
//!
//! A [`TelemetryRecorder`] attached to a [`Swarm`](crate::Swarm) turns the
//! point-in-time [`Snapshot`] into a first-class per-round time-series
//! layer:
//!
//! * every `stride`-th round it captures a [`TelemetrySample`] —
//!   population, replication entropy, the availability histogram,
//!   per-peer piece-count quantiles, and connection-slot utilization —
//!   retaining a bounded window in a [`bt_obs::SeriesStore`] and
//!   streaming the full run as JSON lines or CSV;
//! * an online [`PhaseDetector`] per observer peer tags rounds as
//!   bootstrap / efficient / last-download using the §3 potential-set
//!   criteria ([`bt_model::Phase::classify`]) and emits each transition
//!   as a [`PhaseEvent`] through the stream and the `tracing` layer
//!   (target `bt_swarm::phase`);
//! * an optional flight recorder ([`bt_des::FlightRecorder`]) keeps the
//!   last `capacity` per-round [`FlightEvent`]s and dumps them exactly
//!   once when an anomaly trigger fires — entropy below a floor, or an
//!   observer stalled (no piece progress, e.g. on an empty potential
//!   set) for a configured number of rounds.
//!
//! The JSON-lines stream is a sequence of [`TelemetryRecord`]s, one per
//! line: a leading `Meta`, then `Sample` / `Phase` / `Flight` records in
//! round order. `btlab report` reads this stream back with
//! [`read_records_from_path`].

use std::io::{BufRead, Write};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use bt_des::FlightRecorder;
use bt_model::{DownloadState, Phase};
use bt_obs::SeriesStore;

use crate::config::SwarmConfig;
use crate::snapshot::Snapshot;

/// Version of the telemetry stream schema.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Run-level header of a telemetry stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryMeta {
    /// Stream schema version ([`TELEMETRY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Number of pieces `B`.
    pub pieces: u32,
    /// Connection cap `k`.
    pub max_connections: u32,
    /// Neighbor-set size `s`.
    pub neighbor_set_size: u32,
    /// RNG seed of the run.
    pub seed: u64,
    /// Sampling stride in rounds.
    pub stride: u64,
}

/// One per-round swarm-level sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySample {
    /// Round the sample was taken.
    pub round: u64,
    /// Leecher population.
    pub population: u64,
    /// Replication entropy `min(d)/max(d)` (§6), exactly the
    /// [`Snapshot::capture`] value.
    pub entropy: f64,
    /// Pieces currently held by nobody.
    pub extinct_pieces: u64,
    /// Availability histogram: `availability[r]` pieces are replicated
    /// exactly `r` times.
    pub availability: Vec<u64>,
    /// Piece-count quantiles over peers: min, p25, p50, p75, max.
    pub piece_quantiles: [u32; 5],
    /// Mean active-connection degree.
    pub mean_degree: f64,
    /// Connection-slot utilization: mean degree over the cap `k`.
    pub slot_utilization: f64,
}

impl TelemetrySample {
    /// Derives a sample from a snapshot.
    #[must_use]
    pub fn from_snapshot(snapshot: &Snapshot, max_connections: u32) -> Self {
        let availability: Vec<u64> = (0..snapshot.availability.n_bins())
            .map(|i| snapshot.availability.bin_count(i))
            .collect();
        let q = |fraction: f64| -> u32 {
            if snapshot.piece_counts.is_empty() {
                return 0;
            }
            let idx = ((snapshot.piece_counts.len() - 1) as f64 * fraction).round() as usize;
            snapshot.piece_counts.get(idx).copied().unwrap_or(0)
        };
        let mean_degree = snapshot.mean_degree();
        let slot_utilization = if max_connections == 0 {
            0.0
        } else {
            mean_degree / f64::from(max_connections)
        };
        TelemetrySample {
            round: snapshot.round,
            population: snapshot.population,
            entropy: snapshot.entropy,
            extinct_pieces: snapshot.extinct_pieces() as u64,
            availability,
            piece_quantiles: [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)],
            mean_degree,
            slot_utilization,
        }
    }
}

/// A phase transition of one observer peer, detected online.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseEvent {
    /// The observer peer.
    pub peer: u64,
    /// Round the peer entered the phase.
    pub round: u64,
    /// The phase entered.
    pub phase: Phase,
}

/// A note in the stream that the flight recorder dumped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightNote {
    /// Round the trigger fired.
    pub round: u64,
    /// Why it fired.
    pub reason: String,
    /// Number of events captured in the dump.
    pub events: u64,
}

/// One line of the JSON-lines telemetry stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryRecord {
    /// Run-level header (first record of a stream).
    Meta(TelemetryMeta),
    /// A per-round swarm sample.
    Sample(TelemetrySample),
    /// An observer phase transition.
    Phase(PhaseEvent),
    /// A flight-recorder dump notification.
    Flight(FlightNote),
}

/// Errors from telemetry stream I/O.
#[derive(Debug)]
pub enum TelemetryError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line of the stream failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::Io(e) => write!(f, "telemetry i/o error: {e}"),
            TelemetryError::Parse { line, detail } => {
                write!(f, "telemetry parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

impl From<std::io::Error> for TelemetryError {
    fn from(e: std::io::Error) -> Self {
        TelemetryError::Io(e)
    }
}

/// Serializes records as a JSON-lines stream.
///
/// # Errors
///
/// Returns [`TelemetryError::Io`] on write failure.
pub fn write_records<W: Write>(w: &mut W, records: &[TelemetryRecord]) -> Result<(), TelemetryError> {
    for record in records {
        let line = serde_json::to_string(record).map_err(|e| TelemetryError::Parse {
            line: 0,
            detail: e.to_string(),
        })?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Parses a JSON-lines telemetry stream. Blank lines are skipped.
///
/// # Errors
///
/// Returns [`TelemetryError::Io`] on read failure and
/// [`TelemetryError::Parse`] with a 1-based line number on a malformed
/// line.
pub fn read_records<R: BufRead>(r: R) -> Result<Vec<TelemetryRecord>, TelemetryError> {
    let mut records = Vec::new();
    for (index, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: TelemetryRecord =
            serde_json::from_str(&line).map_err(|e| TelemetryError::Parse {
                line: index + 1,
                detail: e.to_string(),
            })?;
        records.push(record);
    }
    Ok(records)
}

/// Reads a telemetry stream from a file.
///
/// # Errors
///
/// See [`read_records`].
pub fn read_records_from_path(
    path: &std::path::Path,
) -> Result<Vec<TelemetryRecord>, TelemetryError> {
    let file = std::fs::File::open(path)?;
    read_records(std::io::BufReader::new(file))
}

/// Measured phase boundaries of one observer, in absolute rounds,
/// reconstructed from its [`PhaseEvent`] stream. `btlab report` averages
/// these across completed observers and compares them against the
/// analytical [`bt_model::PhaseBoundaries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserverBoundaries {
    /// The observer peer.
    pub peer: u64,
    /// Estimated join round (one before the first observation).
    pub join: u64,
    /// Round of the first transition out of bootstrap, if any.
    pub bootstrap_end: Option<u64>,
    /// Round of the first entry into the last-download phase (or
    /// completion when the peer finishes straight from trading).
    pub efficient_end: Option<u64>,
    /// Round the peer completed and departed.
    pub completion: Option<u64>,
}

impl ObserverBoundaries {
    /// Reconstructs boundaries from one peer's transitions, in stream
    /// order. Returns `None` on an empty slice.
    #[must_use]
    pub fn from_events(events: &[PhaseEvent]) -> Option<Self> {
        let first = events.first()?;
        let peer = first.peer;
        let join = first.round.saturating_sub(1);
        let bootstrap_end = events
            .iter()
            .find(|e| e.phase != Phase::Bootstrap)
            .map(|e| e.round);
        let completion = events
            .iter()
            .find(|e| e.phase == Phase::Done)
            .map(|e| e.round);
        let efficient_end = events
            .iter()
            .find(|e| e.phase == Phase::LastDownload)
            .map(|e| e.round)
            .or(completion);
        Some(ObserverBoundaries {
            peer,
            join,
            bootstrap_end,
            efficient_end,
            completion,
        })
    }

    /// Per-phase durations `[bootstrap, efficient, last]` in rounds since
    /// joining; `None` until the observer has completed.
    #[must_use]
    pub fn durations(&self) -> Option<[f64; 3]> {
        let completion = self.completion?;
        let bootstrap_end = self.bootstrap_end.unwrap_or(completion);
        let efficient_end = self.efficient_end.unwrap_or(completion);
        Some([
            (bootstrap_end - self.join) as f64,
            efficient_end.saturating_sub(bootstrap_end) as f64,
            completion.saturating_sub(efficient_end) as f64,
        ])
    }
}

/// Online phase classification of one observer peer against the §3
/// potential-set criteria.
///
/// Fed one `(pieces, potential, connections)` observation per round, the
/// detector maps it to the model state `(n, b, i)` and reports a
/// [`PhaseEvent`] whenever [`Phase::classify`] changes its answer.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    peer: u64,
    pieces: u32,
    current: Option<Phase>,
}

impl PhaseDetector {
    /// Creates a detector for observer `peer` in a file of `pieces`
    /// pieces.
    #[must_use]
    pub fn new(peer: u64, pieces: u32) -> Self {
        PhaseDetector {
            peer,
            pieces,
            current: None,
        }
    }

    /// The observed peer.
    #[must_use]
    pub fn peer(&self) -> u64 {
        self.peer
    }

    /// The phase last classified, if any observation was made.
    #[must_use]
    pub fn current(&self) -> Option<Phase> {
        self.current
    }

    /// Classifies one per-round observation; returns the transition event
    /// if the phase changed.
    pub fn observe(
        &mut self,
        round: u64,
        pieces_held: u32,
        potential: u32,
        connections: u32,
    ) -> Option<PhaseEvent> {
        let state = DownloadState::new(connections, pieces_held, potential);
        self.transition_to(Phase::classify(state, self.pieces), round)
    }

    /// Marks the peer as departed-on-completion (observers leave the
    /// swarm the round they finish, so they stop appearing in samples).
    pub fn complete(&mut self, round: u64) -> Option<PhaseEvent> {
        self.transition_to(Phase::Done, round)
    }

    fn transition_to(&mut self, phase: Phase, round: u64) -> Option<PhaseEvent> {
        if self.current == Some(phase) {
            return None;
        }
        self.current = Some(phase);
        Some(PhaseEvent {
            peer: self.peer,
            round,
            phase,
        })
    }
}

/// Anomaly-capture configuration for the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightOptions {
    /// Ring capacity: how many recent per-round events a dump contains.
    pub capacity: usize,
    /// Trigger when entropy drops below this floor (with a non-empty
    /// swarm).
    pub entropy_floor: Option<f64>,
    /// Trigger when an observer makes no piece progress for this many
    /// consecutive rounds (catches stalls on an empty potential set).
    pub stall_rounds: Option<u64>,
    /// Where to write the dump as JSON; `None` keeps it in memory only
    /// (see [`TelemetryRecorder::flight_dump`]).
    pub path: Option<PathBuf>,
}

impl Default for FlightOptions {
    fn default() -> Self {
        FlightOptions {
            capacity: 64,
            entropy_floor: None,
            stall_rounds: None,
            path: None,
        }
    }
}

/// One per-round event retained by the flight recorder — a compact
/// summary of the swarm state leading up to an anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Round of the event.
    pub round: u64,
    /// Leecher population.
    pub population: u64,
    /// Replication entropy.
    pub entropy: f64,
    /// Pieces held by nobody.
    pub extinct_pieces: u64,
    /// Mean active-connection degree.
    pub mean_degree: f64,
}

/// A flight-recorder dump: the trigger context plus the events that
/// preceded it. This is the document written to [`FlightOptions::path`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDumpRecord {
    /// Why the trigger fired.
    pub reason: String,
    /// Round the trigger fired.
    pub round: u64,
    /// Events recorded over the run, including rotated-out ones.
    pub recorded: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// Output format of the telemetry stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryFormat {
    /// One [`TelemetryRecord`] as JSON per line (the machine-readable,
    /// re-parseable format).
    #[default]
    Jsonl,
    /// Sample rows only, with a header (phase/flight records and the
    /// variable-length availability histogram are omitted).
    Csv,
}

impl std::str::FromStr for TelemetryFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(TelemetryFormat::Jsonl),
            "csv" => Ok(TelemetryFormat::Csv),
            other => Err(format!("unknown telemetry format `{other}`; use jsonl or csv")),
        }
    }
}

/// Construction options of a [`TelemetryRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryOptions {
    /// Sample every `stride`-th round (zero is normalized to 1). Phase
    /// detection and flight recording stay per-round regardless.
    pub stride: u64,
    /// In-memory samples retained per series (zero is normalized to 1).
    pub capacity: usize,
    /// Stream output format.
    pub format: TelemetryFormat,
    /// Flight-recorder configuration; `None` disables anomaly capture.
    pub flight: Option<FlightOptions>,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            stride: 1,
            capacity: 4096,
            format: TelemetryFormat::default(),
            flight: None,
        }
    }
}

/// One observer peer's state in a round, as handed to the recorder by
/// the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserverSample {
    /// The observer peer id.
    pub peer: u64,
    /// Pieces held.
    pub pieces: u32,
    /// Potential-set size.
    pub potential: u32,
    /// Active connections.
    pub connections: u32,
}

/// Per-observer piece-progress tracking for the stall trigger.
#[derive(Debug, Clone)]
struct StallTrack {
    peer: u64,
    last_pieces: u32,
    last_potential: u32,
    stalled_rounds: u64,
}

/// The per-round telemetry pipeline attached to a swarm via
/// [`Swarm::attach_telemetry`](crate::Swarm::attach_telemetry).
pub struct TelemetryRecorder {
    meta: Option<TelemetryMeta>,
    options: TelemetryOptions,
    store: SeriesStore,
    writer: Option<Box<dyn Write + Send>>,
    detectors: Vec<PhaseDetector>,
    phase_events: Vec<PhaseEvent>,
    stalls: Vec<StallTrack>,
    flight: Option<FlightRecorder<FlightEvent>>,
    flight_dump: Option<FlightDumpRecord>,
    samples: u64,
}

impl TelemetryRecorder {
    /// Creates a recorder that retains telemetry in memory only.
    #[must_use]
    pub fn new(options: TelemetryOptions) -> Self {
        let store = SeriesStore::new(options.stride, options.capacity);
        let flight = options
            .flight
            .as_ref()
            .map(|f| FlightRecorder::new(f.capacity));
        TelemetryRecorder {
            meta: None,
            options,
            store,
            writer: None,
            detectors: Vec::new(),
            phase_events: Vec::new(),
            stalls: Vec::new(),
            flight,
            flight_dump: None,
            samples: 0,
        }
    }

    /// Streams records to `writer` in addition to the in-memory store.
    #[must_use]
    pub fn to_writer(mut self, writer: Box<dyn Write + Send>) -> Self {
        self.writer = Some(writer);
        self
    }

    /// Binds the recorder to a run's configuration, emitting the stream
    /// header. Called by `Swarm::attach_telemetry`.
    pub fn bind(&mut self, config: &SwarmConfig) {
        if self.meta.is_some() {
            return;
        }
        let meta = TelemetryMeta {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            pieces: config.pieces,
            max_connections: config.max_connections,
            neighbor_set_size: config.neighbor_set_size,
            seed: config.seed,
            stride: self.store.stride(),
        };
        match self.options.format {
            TelemetryFormat::Jsonl => self.write_record(&TelemetryRecord::Meta(meta.clone())),
            TelemetryFormat::Csv => self.write_line(
                "round,population,entropy,extinct_pieces,\
                 pieces_min,pieces_p25,pieces_p50,pieces_p75,pieces_max,\
                 mean_degree,slot_utilization",
            ),
        }
        self.meta = Some(meta);
    }

    /// Records one round from a full [`Snapshot`]. Equivalent to
    /// [`TelemetryRecorder::record_sample`] with
    /// [`TelemetrySample::from_snapshot`]; the engine's hot loop uses
    /// `record_sample` directly with a sketch-built sample so the
    /// per-round cost stays sublinear in population.
    pub fn record_round(
        &mut self,
        snapshot: &Snapshot,
        max_connections: u32,
        observers: &[ObserverSample],
    ) {
        let sample = TelemetrySample::from_snapshot(snapshot, max_connections);
        self.record_sample(&sample, observers);
    }

    /// Records one round from a pre-built sample: feeds phase detectors
    /// every round, samples the series on the stride, and runs the
    /// anomaly triggers.
    pub fn record_sample(&mut self, sample: &TelemetrySample, observers: &[ObserverSample]) {
        let Some(meta) = self.meta.clone() else {
            debug_assert!(false, "record_sample before bind");
            return;
        };
        let round = sample.round;

        // Online phase detection, every round.
        let mut events = Vec::new();
        for obs in observers {
            if !self.detectors.iter().any(|d| d.peer() == obs.peer) {
                self.detectors.push(PhaseDetector::new(obs.peer, meta.pieces));
            }
            if let Some(detector) = self.detectors.iter_mut().find(|d| d.peer() == obs.peer) {
                events.extend(detector.observe(round, obs.pieces, obs.potential, obs.connections));
            }
        }
        // Observers that vanished from the sample departed on completion.
        for detector in &mut self.detectors {
            if detector.current() != Some(Phase::Done)
                && !observers.iter().any(|o| o.peer == detector.peer())
            {
                events.extend(detector.complete(round));
            }
        }
        for event in events {
            self.emit_phase(event);
        }

        // Series sampling on the stride.
        if self.store.accepts(round) {
            let sample = sample.clone();
            self.store.record("entropy", round, sample.entropy);
            self.store
                .record("population", round, sample.population as f64);
            self.store
                .record("utilization", round, sample.slot_utilization);
            self.store
                .record("extinct_pieces", round, sample.extinct_pieces as f64);
            match self.options.format {
                TelemetryFormat::Jsonl => {
                    self.write_record(&TelemetryRecord::Sample(sample));
                }
                TelemetryFormat::Csv => {
                    let [p0, p25, p50, p75, p100] = sample.piece_quantiles;
                    let line = format!(
                        "{},{},{},{},{p0},{p25},{p50},{p75},{p100},{},{}",
                        sample.round,
                        sample.population,
                        sample.entropy,
                        sample.extinct_pieces,
                        sample.mean_degree,
                        sample.slot_utilization,
                    );
                    self.write_line(&line);
                }
            }
            self.samples += 1;
        }

        // Flight recording and anomaly triggers, every round.
        self.update_stalls(observers, meta.pieces);
        if self.flight.is_some() {
            let event = FlightEvent {
                round,
                population: sample.population,
                entropy: sample.entropy,
                extinct_pieces: sample.extinct_pieces,
                mean_degree: sample.mean_degree,
            };
            if let Some(flight) = self.flight.as_mut() {
                flight.record(event);
            }
            if let Some(reason) = self.trigger_reason(sample) {
                self.fire_trigger(round, &reason);
            }
        }
    }

    /// Flushes the stream writer; called when the run finishes.
    pub fn finish(&mut self) {
        if let Some(writer) = self.writer.as_mut() {
            if let Err(e) = writer.flush() {
                tracing::warn!(target: "bt_swarm::telemetry", error = e.to_string(); "telemetry flush failed");
            }
        }
    }

    /// The bounded in-memory series store (`entropy`, `population`,
    /// `utilization`, `extinct_pieces`).
    #[must_use]
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// All phase transitions detected so far, in emission order.
    #[must_use]
    pub fn phase_events(&self) -> &[PhaseEvent] {
        &self.phase_events
    }

    /// The flight dump, if a trigger has fired.
    #[must_use]
    pub fn flight_dump(&self) -> Option<&FlightDumpRecord> {
        self.flight_dump.as_ref()
    }

    /// Number of samples emitted (after the stride).
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The stream header, once bound to a run.
    #[must_use]
    pub fn meta(&self) -> Option<&TelemetryMeta> {
        self.meta.as_ref()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn emit_phase(&mut self, event: PhaseEvent) {
        tracing::info!(
            target: "bt_swarm::phase",
            peer = event.peer,
            round = event.round,
            phase = event.phase.to_string();
            "observer phase transition"
        );
        if self.options.format == TelemetryFormat::Jsonl {
            self.write_record(&TelemetryRecord::Phase(event));
        }
        self.phase_events.push(event);
    }

    fn update_stalls(&mut self, observers: &[ObserverSample], pieces: u32) {
        let stall_enabled = self
            .options
            .flight
            .as_ref()
            .is_some_and(|f| f.stall_rounds.is_some());
        if !stall_enabled {
            return;
        }
        for obs in observers {
            match self.stalls.iter_mut().find(|s| s.peer == obs.peer) {
                Some(track) => {
                    if obs.pieces > track.last_pieces || obs.pieces >= pieces {
                        track.stalled_rounds = 0;
                    } else {
                        track.stalled_rounds += 1;
                    }
                    track.last_pieces = obs.pieces;
                    track.last_potential = obs.potential;
                }
                None => self.stalls.push(StallTrack {
                    peer: obs.peer,
                    last_pieces: obs.pieces,
                    last_potential: obs.potential,
                    stalled_rounds: 0,
                }),
            }
        }
        // Departed observers cannot stall.
        self.stalls
            .retain(|s| observers.iter().any(|o| o.peer == s.peer));
    }

    fn trigger_reason(&self, sample: &TelemetrySample) -> Option<String> {
        let flight = self.options.flight.as_ref()?;
        if let Some(floor) = flight.entropy_floor {
            if sample.population > 0 && sample.entropy < floor {
                return Some(format!(
                    "entropy {:.4} below floor {:.4} at round {}",
                    sample.entropy, floor, sample.round
                ));
            }
        }
        if let Some(limit) = flight.stall_rounds {
            if let Some(track) = self
                .stalls
                .iter()
                .find(|s| limit > 0 && s.stalled_rounds >= limit)
            {
                let detail = if track.last_potential == 0 {
                    " (empty potential set)"
                } else {
                    ""
                };
                return Some(format!(
                    "observer {} stalled at {} pieces for {} rounds{} at round {}",
                    track.peer, track.last_pieces, track.stalled_rounds, detail, sample.round
                ));
            }
        }
        None
    }

    fn fire_trigger(&mut self, round: u64, reason: &str) {
        let Some(dump) = self
            .flight
            .as_mut()
            .and_then(|flight| flight.trigger(round, reason))
        else {
            return; // already disarmed: exactly one dump per run
        };
        let record = FlightDumpRecord {
            reason: dump.reason,
            round: dump.tick,
            recorded: dump.recorded,
            events: dump.events,
        };
        tracing::warn!(
            target: "bt_swarm::flight",
            round = round,
            reason = reason.to_string(),
            events = record.events.len() as u64;
            "flight recorder dumped"
        );
        if let Some(path) = self.options.flight.as_ref().and_then(|f| f.path.clone()) {
            match serde_json::to_string_pretty(&record) {
                Ok(json) => {
                    if let Some(parent) = path.parent() {
                        let _ = std::fs::create_dir_all(parent);
                    }
                    if let Err(e) = std::fs::write(&path, json) {
                        tracing::warn!(target: "bt_swarm::flight", path = path.display().to_string(), error = e.to_string(); "failed to write flight dump");
                    }
                }
                Err(e) => {
                    tracing::warn!(target: "bt_swarm::flight", error = e.to_string(); "failed to serialize flight dump");
                }
            }
        }
        if self.options.format == TelemetryFormat::Jsonl {
            self.write_record(&TelemetryRecord::Flight(FlightNote {
                round,
                reason: reason.to_string(),
                events: record.events.len() as u64,
            }));
        }
        self.flight_dump = Some(record);
    }

    fn write_record(&mut self, record: &TelemetryRecord) {
        match serde_json::to_string(record) {
            Ok(line) => self.write_line(&line),
            Err(e) => {
                tracing::warn!(target: "bt_swarm::telemetry", error = e.to_string(); "failed to serialize telemetry record");
            }
        }
    }

    /// Writes one line to the stream; a failing writer is dropped (with a
    /// warning) rather than aborting the simulation.
    fn write_line(&mut self, line: &str) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        if let Err(e) = writeln!(writer, "{line}") {
            tracing::warn!(target: "bt_swarm::telemetry", error = e.to_string(); "telemetry write failed; disabling stream");
            self.writer = None;
        }
    }
}

impl std::fmt::Debug for TelemetryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryRecorder")
            .field("samples", &self.samples)
            .field("phase_events", &self.phase_events.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_walks_the_three_phases() {
        let mut d = PhaseDetector::new(3, 10);
        // Fresh peer: bootstrap.
        let e = d.observe(1, 0, 0, 0).unwrap();
        assert_eq!(e.phase, Phase::Bootstrap);
        assert_eq!(e.round, 1);
        // Still bootstrap: no event.
        assert!(d.observe(2, 1, 2, 0).is_none());
        // Trading: efficient.
        assert_eq!(d.observe(3, 2, 3, 1).unwrap().phase, Phase::Efficient);
        // Stalled late: last-download.
        assert_eq!(d.observe(9, 8, 0, 0).unwrap().phase, Phase::LastDownload);
        // Departure: done.
        assert_eq!(d.complete(12).unwrap().phase, Phase::Done);
        assert!(d.complete(13).is_none(), "done is absorbing");
        assert_eq!(d.current(), Some(Phase::Done));
    }

    #[test]
    fn detector_maps_connections_into_stock() {
        let mut d = PhaseDetector::new(0, 10);
        // One piece, one connection: stock 2 > 1, efficient.
        assert_eq!(d.observe(1, 1, 0, 1).unwrap().phase, Phase::Efficient);
    }

    #[test]
    fn sample_from_snapshot_quantiles_empty() {
        // Quantile helper handles the empty swarm without panicking via
        // the from_snapshot path; covered end-to-end in tests/telemetry.rs.
        let format: TelemetryFormat = "jsonl".parse().unwrap();
        assert_eq!(format, TelemetryFormat::Jsonl);
        assert_eq!("csv".parse::<TelemetryFormat>().unwrap(), TelemetryFormat::Csv);
        assert!("tsv".parse::<TelemetryFormat>().is_err());
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let records = vec![
            TelemetryRecord::Meta(TelemetryMeta {
                schema_version: TELEMETRY_SCHEMA_VERSION,
                pieces: 10,
                max_connections: 3,
                neighbor_set_size: 6,
                seed: 7,
                stride: 1,
            }),
            TelemetryRecord::Sample(TelemetrySample {
                round: 1,
                population: 5,
                entropy: 0.25,
                extinct_pieces: 2,
                availability: vec![2, 3, 5],
                piece_quantiles: [0, 1, 2, 3, 4],
                mean_degree: 1.5,
                slot_utilization: 0.5,
            }),
            TelemetryRecord::Phase(PhaseEvent {
                peer: 3,
                round: 1,
                phase: Phase::Bootstrap,
            }),
            TelemetryRecord::Flight(FlightNote {
                round: 9,
                reason: "entropy 0.0100 below floor 0.0500 at round 9".into(),
                events: 4,
            }),
        ];
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        let back = read_records(&buf[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn boundaries_from_full_walk() {
        let ev = |round, phase| PhaseEvent {
            peer: 2,
            round,
            phase,
        };
        let events = [
            ev(1, Phase::Bootstrap),
            ev(4, Phase::Efficient),
            ev(40, Phase::LastDownload),
            ev(46, Phase::Done),
        ];
        let b = ObserverBoundaries::from_events(&events).unwrap();
        assert_eq!(b.peer, 2);
        assert_eq!(b.join, 0);
        assert_eq!(b.bootstrap_end, Some(4));
        assert_eq!(b.efficient_end, Some(40));
        assert_eq!(b.completion, Some(46));
        assert_eq!(b.durations(), Some([4.0, 36.0, 6.0]));

        // A peer that finishes straight from trading has no last phase.
        let events = [ev(3, Phase::Bootstrap), ev(5, Phase::Efficient), ev(20, Phase::Done)];
        let b = ObserverBoundaries::from_events(&events).unwrap();
        assert_eq!(b.join, 2);
        assert_eq!(b.efficient_end, Some(20));
        assert_eq!(b.durations(), Some([3.0, 15.0, 0.0]));

        // An incomplete observer has no durations yet.
        let events = [ev(1, Phase::Bootstrap)];
        let b = ObserverBoundaries::from_events(&events).unwrap();
        assert_eq!(b.completion, None);
        assert_eq!(b.durations(), None);
        assert!(ObserverBoundaries::from_events(&[]).is_none());
    }

    #[test]
    fn parse_error_carries_line_number() {
        let input = b"{\"Phase\":{\"peer\":1,\"round\":2,\"phase\":\"Bootstrap\"}}\ngarbage\n";
        match read_records(&input[..]) {
            Err(TelemetryError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
