//! Cached observability handles for the swarm engine.
//!
//! All counter and timer lookups happen once, at swarm construction;
//! the round loop then touches pre-resolved atomic handles only. See
//! DESIGN.md ("Observability") for the counter and timer name schema.

use bt_obs::{Counter, Registry, Timer};

/// Counter and timer handles used by the round loop.
///
/// Counter names are prefixed `swarm.`, phase timers `round.`; the
/// names are part of the manifest schema and must stay stable.
#[derive(Clone)]
pub(crate) struct SwarmObs {
    /// Peers that joined (`swarm.arrivals`).
    pub arrivals: Counter,
    /// Peers that departed on completion (`swarm.departures`).
    pub departures: Counter,
    /// Completion records kept after warm-up (`swarm.completions`).
    pub completions: Counter,
    /// Connection attempts rolled (`swarm.conn_attempts`).
    pub conn_attempts: Counter,
    /// Connections established (`swarm.conn_successes`).
    pub conn_successes: Counter,
    /// Block transfers, one per direction (`swarm.pieces_exchanged`).
    pub pieces_exchanged: Counter,
    /// Neighbor-set shakes (`swarm.shakes`).
    pub shakes: Counter,
    /// First pieces injected into empty peers (`swarm.bootstrap_injections`).
    pub bootstrap_injections: Counter,
    /// Peak simultaneous population, max-gauge (`swarm.peak_population`).
    pub peak_population: Counter,
    /// Rounds executed (`swarm.rounds`).
    pub rounds: Counter,
    /// Neighbor-maintenance phase timer (`round.maintain`).
    pub t_maintain: Timer,
    /// Bootstrap-injection + seed-upload phase timer (`round.bootstrap`).
    pub t_bootstrap: Timer,
    /// Connection-pruning phase timer (`round.prune`).
    pub t_prune: Timer,
    /// Connection-establishment phase timer (`round.establish`).
    pub t_establish: Timer,
    /// Piece-exchange phase timer (`round.exchange`).
    pub t_exchange: Timer,
    /// Metrics-sampling phase timer (`round.sample`).
    pub t_sample: Timer,
}

impl SwarmObs {
    /// Resolves all handles in `registry`.
    pub fn new(registry: Registry) -> SwarmObs {
        SwarmObs {
            arrivals: registry.counter("swarm.arrivals"),
            departures: registry.counter("swarm.departures"),
            completions: registry.counter("swarm.completions"),
            conn_attempts: registry.counter("swarm.conn_attempts"),
            conn_successes: registry.counter("swarm.conn_successes"),
            pieces_exchanged: registry.counter("swarm.pieces_exchanged"),
            shakes: registry.counter("swarm.shakes"),
            bootstrap_injections: registry.counter("swarm.bootstrap_injections"),
            peak_population: registry.counter("swarm.peak_population"),
            rounds: registry.counter("swarm.rounds"),
            t_maintain: registry.timer("round.maintain"),
            t_bootstrap: registry.timer("round.bootstrap"),
            t_prune: registry.timer("round.prune"),
            t_establish: registry.timer("round.establish"),
            t_exchange: registry.timer("round.exchange"),
            t_sample: registry.timer("round.sample"),
        }
    }
}

impl std::fmt::Debug for SwarmObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwarmObs").finish_non_exhaustive()
    }
}
