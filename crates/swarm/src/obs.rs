//! Cached observability handles for the swarm engine.
//!
//! All counter lookups happen once, at swarm construction; the round
//! loop then touches pre-resolved atomic handles only. Phase timers are
//! resolved by the stage pipeline (each [`crate::stages::RoundStage`]
//! names its own `round.*` timer). See DESIGN.md ("Observability") for
//! the counter and timer name schema.

// Audited: this module *is* the model/observer boundary — resolving
// counter and timer handles walks the registry's lock-guarded tables,
// once, at construction. bt-lint: allow-file(shared-interior-mut)

use bt_obs::{Counter, Registry, Timer};

/// Counter handles used by the round loop.
///
/// Counter names are prefixed `swarm.`; the names are part of the
/// manifest schema and must stay stable.
#[derive(Clone)]
pub(crate) struct SwarmObs {
    /// Peers that joined (`swarm.arrivals`).
    pub arrivals: Counter,
    /// Peers that departed on completion (`swarm.departures`).
    pub departures: Counter,
    /// Completion records kept after warm-up (`swarm.completions`).
    pub completions: Counter,
    /// Connection attempts rolled (`swarm.conn_attempts`).
    pub conn_attempts: Counter,
    /// Connections established (`swarm.conn_successes`).
    pub conn_successes: Counter,
    /// Block transfers, one per direction (`swarm.pieces_exchanged`).
    pub pieces_exchanged: Counter,
    /// Neighbor-set shakes (`swarm.shakes`).
    pub shakes: Counter,
    /// First pieces injected into empty peers (`swarm.bootstrap_injections`).
    pub bootstrap_injections: Counter,
    /// Peak simultaneous population, max-gauge (`swarm.peak_population`).
    pub peak_population: Counter,
    /// Rounds executed (`swarm.rounds`).
    pub rounds: Counter,
    /// Wall time in the telemetry observer (`obs.telemetry`). The
    /// `obs.` prefix routes it into the manifest's `obs_share`, the
    /// quantity the `--obs-budget` gate checks.
    pub telemetry_timer: Timer,
    /// Wall time in the doctor's monitor checks (`obs.doctor`).
    pub doctor_timer: Timer,
    /// Wall time in the heartbeat emitter (`obs.heartbeat`).
    pub heartbeat_timer: Timer,
}

impl SwarmObs {
    /// Resolves all handles in `registry`.
    pub fn new(registry: Registry) -> SwarmObs {
        SwarmObs {
            arrivals: registry.counter("swarm.arrivals"),
            departures: registry.counter("swarm.departures"),
            completions: registry.counter("swarm.completions"),
            conn_attempts: registry.counter("swarm.conn_attempts"),
            conn_successes: registry.counter("swarm.conn_successes"),
            pieces_exchanged: registry.counter("swarm.pieces_exchanged"),
            shakes: registry.counter("swarm.shakes"),
            bootstrap_injections: registry.counter("swarm.bootstrap_injections"),
            peak_population: registry.counter("swarm.peak_population"),
            rounds: registry.counter("swarm.rounds"),
            telemetry_timer: registry.timer("obs.telemetry"),
            doctor_timer: registry.timer("obs.doctor"),
            heartbeat_timer: registry.timer("obs.heartbeat"),
        }
    }
}

impl std::fmt::Debug for SwarmObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwarmObs").finish_non_exhaustive()
    }
}
