//! Point-in-time diagnostics of a running swarm.
//!
//! [`Snapshot`] captures the distributional state the §6 analysis reasons
//! about — piece availability, peer piece-count spread, connection degrees
//! — in one pass over the swarm, using the [`bt_des::stats::Histogram`]
//! collector for the availability profile.

use bt_des::stats::Histogram;

use crate::engine::{entropy_of, Swarm};

/// A diagnostic snapshot of the swarm at one round.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Round the snapshot was taken.
    pub round: u64,
    /// Leecher population.
    pub population: u64,
    /// Per-piece replication counts.
    pub replication: Vec<u64>,
    /// Replication entropy `min(d)/max(d)`.
    pub entropy: f64,
    /// Histogram of piece availability (replication counts across pieces).
    pub availability: Histogram,
    /// Piece counts held per peer, sorted ascending.
    pub piece_counts: Vec<u32>,
    /// Active-connection counts per peer, sorted ascending.
    pub degrees: Vec<u32>,
}

impl Snapshot {
    /// Captures a snapshot of `swarm`.
    ///
    /// # Panics
    ///
    /// Never panics: an empty swarm produces an empty snapshot.
    #[must_use]
    pub fn capture(swarm: &Swarm) -> Self {
        let ids = swarm.alive_peer_ids();
        // Straight off the incrementally maintained replication index —
        // no per-capture rescan of every alive bitfield.
        let replication = swarm.replication_counts().to_vec();
        let max_rep = replication.iter().max().copied().unwrap_or(0);
        // One unit-width bucket per replication count 0..=max_rep, so the
        // profile is exact even in high-replication swarms (no clamping).
        let mut availability = Histogram::new(0.0, (max_rep + 1) as f64, max_rep as usize + 1)
            .expect("0 < max_rep + 1 and at least one bucket");
        for &d in &replication {
            availability.record(d as f64);
        }
        let mut piece_counts: Vec<u32> = ids
            .iter()
            .map(|&id| swarm.peer_bitfield(id).count())
            .collect();
        piece_counts.sort_unstable();
        let mut degrees: Vec<u32> = ids
            .iter()
            .map(|&id| swarm.peer_connection_count(id))
            .collect();
        degrees.sort_unstable();
        Snapshot {
            round: swarm.round(),
            population: ids.len() as u64,
            entropy: entropy_of(&replication),
            replication,
            availability,
            piece_counts,
            degrees,
        }
    }

    /// Median piece count held (0 for an empty swarm).
    #[must_use]
    pub fn median_pieces(&self) -> u32 {
        if self.piece_counts.is_empty() {
            0
        } else {
            self.piece_counts[self.piece_counts.len() / 2]
        }
    }

    /// Mean connection degree (0 for an empty swarm).
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        if self.degrees.is_empty() {
            0.0
        } else {
            self.degrees.iter().map(|&d| f64::from(d)).sum::<f64>() / self.degrees.len() as f64
        }
    }

    /// Number of pieces currently held by nobody (extinct until the seed
    /// re-injects them).
    #[must_use]
    pub fn extinct_pieces(&self) -> usize {
        self.replication.iter().filter(|&&d| d == 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitialPieces;
    use crate::SwarmConfig;

    fn swarm_after(rounds: u32) -> Swarm {
        let config = SwarmConfig::builder()
            .pieces(12)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(1.0)
            .initial_leechers(10)
            .initial_pieces(InitialPieces::Random { count: 4 })
            .max_rounds(1_000)
            .seed(71)
            .build()
            .unwrap();
        let mut swarm = Swarm::new(config);
        for _ in 0..rounds {
            swarm.step_round();
        }
        swarm
    }

    #[test]
    fn snapshot_is_consistent() {
        let swarm = swarm_after(10);
        let snap = Snapshot::capture(&swarm);
        assert_eq!(snap.round, 10);
        assert_eq!(snap.population as usize, snap.piece_counts.len());
        assert_eq!(snap.piece_counts.len(), snap.degrees.len());
        assert_eq!(snap.replication.len(), 12);
        assert!((0.0..=1.0).contains(&snap.entropy));
        // Availability histogram saw every piece.
        assert_eq!(snap.availability.total(), 12);
        // Sorted outputs.
        assert!(snap.piece_counts.windows(2).all(|w| w[0] <= w[1]));
        assert!(snap.degrees.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn summary_statistics() {
        // Capture before any endowed peer can have completed and
        // departed (8 missing pieces at 3 connections needs 3+ rounds),
        // so the median is robustly positive for any RNG stream.
        let swarm = swarm_after(2);
        let snap = Snapshot::capture(&swarm);
        assert!(snap.median_pieces() >= 1, "endowed peers hold pieces");
        assert!(snap.mean_degree() >= 0.0);
        assert!(snap.extinct_pieces() <= 12);
    }

    #[test]
    fn high_replication_is_not_clamped() {
        // 100 peers all holding every piece: replication 100 everywhere,
        // which the old 64-bucket clamp misfiled into coarse bins.
        let config = SwarmConfig::builder()
            .pieces(4)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(0.0)
            .initial_leechers(100)
            .initial_pieces(InitialPieces::Random { count: 4 })
            .bootstrap(crate::config::BootstrapInjection::Off)
            .seed_uploads_per_round(0)
            .max_rounds(5)
            .seed(5)
            .build()
            .unwrap();
        let swarm = Swarm::new(config);
        let snap = Snapshot::capture(&swarm);
        let max_rep = *snap.replication.iter().max().unwrap();
        assert!(max_rep > 64, "scenario must exceed the old clamp");
        assert_eq!(snap.availability.n_bins() as u64, max_rep + 1);
        // Every count lands in its own unit-width bucket.
        assert_eq!(snap.availability.bin_count(max_rep as usize), 4);
        assert_eq!(snap.availability.overflow(), 0);
        assert_eq!(snap.availability.bin_bounds(max_rep as usize).0, max_rep as f64);
    }

    #[test]
    fn empty_swarm_snapshot() {
        let config = SwarmConfig::builder()
            .pieces(5)
            .max_connections(1)
            .neighbor_set_size(1)
            .arrival_rate(0.0)
            .initial_leechers(0)
            .max_rounds(5)
            .seed(0)
            .build()
            .unwrap();
        let swarm = Swarm::new(config);
        let snap = Snapshot::capture(&swarm);
        assert_eq!(snap.population, 0);
        assert_eq!(snap.median_pieces(), 0);
        assert_eq!(snap.mean_degree(), 0.0);
        assert_eq!(snap.extinct_pieces(), 5);
        assert_eq!(snap.entropy, 0.0);
    }
}
