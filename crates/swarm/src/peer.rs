//! Peer state.

use std::collections::BTreeMap;

use crate::piece::Bitfield;

pub use crate::store::PeerId;

/// A leecher participating in the swarm.
///
/// Neighbor and connection sets are kept as ordered vectors (sizes are
/// small — at most `s` and `k`), and the credit/partial tables as
/// `BTreeMap`s, so every iteration order is deterministic and seeded
/// replay is exact.
#[derive(Debug, Clone)]
pub struct Peer {
    /// This peer's identifier.
    pub id: PeerId,
    /// Which pieces the peer holds.
    pub have: Bitfield,
    /// Round at which the peer joined.
    pub joined_round: u64,
    /// Current neighbor set (symmetric relation, capped at `s`).
    pub neighbors: Vec<PeerId>,
    /// Currently active connections (subset of `neighbors`, capped at `k`).
    pub connections: Vec<PeerId>,
    /// Pieces received from each neighbor, for tit-for-tat ranking.
    pub credit: BTreeMap<PeerId, u32>,
    /// Round at which each piece was acquired (`u64::MAX` = not yet).
    pub piece_round: Vec<u64>,
    /// Blocks received of pieces still in flight (piece id → blocks done).
    pub partial: BTreeMap<u32, u32>,
    /// Whether the peer has already shaken its neighbor set (§7.1).
    pub shaken: bool,
    /// Whether this peer belongs to the slow bandwidth class
    /// (heterogeneous-bandwidth extension; false in the paper's setting).
    pub slow: bool,
}

impl Peer {
    /// Creates a peer with no pieces.
    #[must_use]
    pub fn new(id: PeerId, pieces: u32, joined_round: u64) -> Self {
        Peer {
            id,
            have: Bitfield::new(pieces),
            joined_round,
            neighbors: Vec::new(),
            connections: Vec::new(),
            credit: BTreeMap::new(),
            piece_round: vec![u64::MAX; pieces as usize],
            partial: BTreeMap::new(),
            shaken: false,
            slow: false,
        }
    }

    /// Records acquisition of `piece` at `round`. Returns `true` if the
    /// piece was new.
    pub fn acquire(&mut self, piece: u32, round: u64) -> bool {
        if self.have.set(piece) {
            self.piece_round[piece as usize] = round;
            self.partial.remove(&piece);
            true
        } else {
            false
        }
    }

    /// Records one received block of `piece` at `round`. Completes the
    /// piece (and returns `true`) once `blocks_per_piece` blocks are in.
    /// Blocks of already-held pieces are ignored.
    pub fn receive_block(&mut self, piece: u32, blocks_per_piece: u32, round: u64) -> bool {
        if self.have.contains(piece) {
            return false;
        }
        let progress = self.partial.entry(piece).or_insert(0);
        *progress += 1;
        if *progress >= blocks_per_piece {
            self.acquire(piece, round)
        } else {
            false
        }
    }

    /// Total blocks received of in-flight (incomplete) pieces.
    #[must_use]
    pub fn partial_blocks(&self) -> u64 {
        self.partial.values().map(|&b| u64::from(b)).sum()
    }

    /// Whether `other` is currently a neighbor.
    #[must_use]
    pub fn is_neighbor(&self, other: PeerId) -> bool {
        self.neighbors.contains(&other)
    }

    /// Whether an active connection to `other` exists.
    #[must_use]
    pub fn is_connected(&self, other: PeerId) -> bool {
        self.connections.contains(&other)
    }

    /// Adds a neighbor if absent. Returns `true` on change.
    pub fn add_neighbor(&mut self, other: PeerId) -> bool {
        if other == self.id || self.is_neighbor(other) {
            return false;
        }
        self.neighbors.push(other);
        true
    }

    /// Removes a neighbor (and any connection to it). Returns `true` on
    /// change.
    pub fn remove_neighbor(&mut self, other: PeerId) -> bool {
        let before = self.neighbors.len();
        self.neighbors.retain(|&p| p != other);
        self.connections.retain(|&p| p != other);
        before != self.neighbors.len()
    }

    /// Tit-for-tat credit accrued from `other`.
    #[must_use]
    pub fn credit_for(&self, other: PeerId) -> u32 {
        self.credit.get(&other).copied().unwrap_or(0)
    }

    /// Records a piece received from `other`.
    pub fn record_credit(&mut self, other: PeerId) {
        *self.credit.entry(other).or_insert(0) += 1;
    }

    /// Completion fraction `pieces held / B`.
    #[must_use]
    pub fn completion(&self) -> f64 {
        f64::from(self.have.count()) / f64::from(self.have.len())
    }

    /// Drops the entire neighbor set and all connections (§7.1 shake).
    pub fn shake(&mut self) {
        self.neighbors.clear();
        self.connections.clear();
        self.shaken = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_peer_is_empty() {
        let p = Peer::new(PeerId::synthetic(1), 10, 5);
        assert_eq!(p.have.count(), 0);
        assert_eq!(p.joined_round, 5);
        assert!(p.neighbors.is_empty());
        assert_eq!(p.completion(), 0.0);
    }

    #[test]
    fn acquire_records_round_once() {
        let mut p = Peer::new(PeerId::synthetic(1), 10, 0);
        assert!(p.acquire(3, 7));
        assert!(!p.acquire(3, 9));
        assert_eq!(p.piece_round[3], 7);
        assert_eq!(p.have.count(), 1);
    }

    #[test]
    fn neighbor_management() {
        let mut p = Peer::new(PeerId::synthetic(1), 5, 0);
        assert!(p.add_neighbor(PeerId::synthetic(2)));
        assert!(!p.add_neighbor(PeerId::synthetic(2)), "no duplicates");
        assert!(!p.add_neighbor(PeerId::synthetic(1)), "never own neighbor");
        assert!(p.is_neighbor(PeerId::synthetic(2)));
        p.connections.push(PeerId::synthetic(2));
        assert!(p.remove_neighbor(PeerId::synthetic(2)));
        assert!(!p.is_connected(PeerId::synthetic(2)), "connection dropped too");
        assert!(!p.remove_neighbor(PeerId::synthetic(2)));
    }

    #[test]
    fn credit_accrues() {
        let mut p = Peer::new(PeerId::synthetic(1), 5, 0);
        assert_eq!(p.credit_for(PeerId::synthetic(2)), 0);
        p.record_credit(PeerId::synthetic(2));
        p.record_credit(PeerId::synthetic(2));
        assert_eq!(p.credit_for(PeerId::synthetic(2)), 2);
    }

    #[test]
    fn completion_fraction() {
        let mut p = Peer::new(PeerId::synthetic(1), 4, 0);
        p.acquire(0, 0);
        p.acquire(1, 0);
        assert!((p.completion() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shake_clears_topology() {
        let mut p = Peer::new(PeerId::synthetic(1), 4, 0);
        p.add_neighbor(PeerId::synthetic(2));
        p.connections.push(PeerId::synthetic(2));
        p.shake();
        assert!(p.neighbors.is_empty());
        assert!(p.connections.is_empty());
        assert!(p.shaken);
    }

    #[test]
    fn peer_id_displays() {
        assert_eq!(PeerId::synthetic(7).to_string(), "peer#7");
    }
}
