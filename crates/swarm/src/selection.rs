//! Piece-selection strategies (§2.1): rarest-first and random-first.

use rand::Rng;

use crate::config::PieceSelection;
use crate::piece::{Bitfield, PieceId};

/// Picks which piece to download from a connected peer.
///
/// * `mine` — the downloader's bitfield;
/// * `theirs` — the uploader's bitfield;
/// * `replication` — per-piece replication counts over the downloader's
///   neighbor set (used by rarest-first; ties broken uniformly at random);
/// * `taken` — pieces already claimed this round on other connections
///   (avoids downloading the same piece twice in one round).
///
/// Returns `None` when the uploader has nothing new to offer.
///
/// # Example
///
/// ```
/// use bt_swarm::config::PieceSelection;
/// use bt_swarm::piece::Bitfield;
/// use bt_swarm::selection::select_piece;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mine = Bitfield::new(4);
/// let theirs = Bitfield::full(4);
/// let replication = [5, 1, 5, 5]; // piece 1 is rare
/// let mut rng = StdRng::seed_from_u64(0);
/// let picked = select_piece(
///     PieceSelection::RarestFirst,
///     &mine,
///     &theirs,
///     &replication,
///     &[],
///     &mut rng,
/// );
/// assert_eq!(picked, Some(1));
/// ```
pub fn select_piece<R: Rng + ?Sized>(
    strategy: PieceSelection,
    mine: &Bitfield,
    theirs: &Bitfield,
    replication: &[u64],
    taken: &[PieceId],
    rng: &mut R,
) -> Option<PieceId> {
    let mut wanted: Vec<PieceId> = mine
        .wanted_from(theirs)
        .into_iter()
        .filter(|p| !taken.contains(p))
        .collect();
    if wanted.is_empty() {
        // Fall back to pieces already claimed elsewhere rather than idling
        // the connection — duplicates are deduplicated on receipt.
        wanted = mine.wanted_from(theirs);
    }
    if wanted.is_empty() {
        return None;
    }
    match strategy {
        PieceSelection::RandomFirst => Some(wanted[rng.gen_range(0..wanted.len())]),
        PieceSelection::RarestFirst => {
            assert!(
                replication.len() == mine.len() as usize,
                "replication vector must cover all {} pieces",
                mine.len()
            );
            let min_rep = wanted
                .iter()
                .map(|&p| replication[p as usize])
                .min()
                .expect("wanted is non-empty");
            let rarest: Vec<PieceId> = wanted
                .into_iter()
                .filter(|&p| replication[p as usize] == min_rep)
                .collect();
            Some(rarest[rng.gen_range(0..rarest.len())])
        }
    }
}

/// Per-piece replication counts over a collection of bitfields (the view a
/// peer has of its neighbor set, and the quantity whose skew defines the
/// §6 entropy).
///
/// The engine no longer calls this on its hot paths: global counts come
/// from the incrementally maintained [`crate::replication::ReplicationIndex`],
/// and neighbor-local views are accumulated word-wise by the exchange
/// stage. This from-scratch rebuild is kept as the *oracle* the
/// property tests and [`crate::engine::Swarm::assert_invariants`] check
/// the index against.
#[must_use]
pub fn replication_counts<'a, I>(pieces: u32, fields: I) -> Vec<u64>
where
    I: IntoIterator<Item = &'a Bitfield>,
{
    let mut counts = vec![0u64; pieces as usize];
    for field in fields {
        for p in field.iter() {
            counts[p as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bf(pieces: u32, have: &[u32]) -> Bitfield {
        let mut b = Bitfield::new(pieces);
        for &p in have {
            b.set(p);
        }
        b
    }

    #[test]
    fn rarest_first_picks_minimum_replication() {
        let mine = bf(5, &[0]);
        let theirs = bf(5, &[1, 2, 3]);
        let replication = [9, 4, 1, 4, 9];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let p = select_piece(
                PieceSelection::RarestFirst,
                &mine,
                &theirs,
                &replication,
                &[],
                &mut rng,
            );
            assert_eq!(p, Some(2));
        }
    }

    #[test]
    fn rarest_first_breaks_ties_within_minimum() {
        let mine = bf(4, &[]);
        let theirs = bf(4, &[0, 1, 2, 3]);
        let replication = [2, 2, 7, 7];
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = select_piece(
                PieceSelection::RarestFirst,
                &mine,
                &theirs,
                &replication,
                &[],
                &mut rng,
            )
            .unwrap();
            assert!(p < 2, "only pieces 0 and 1 are rarest, got {p}");
            seen.insert(p);
        }
        assert_eq!(seen.len(), 2, "both ties should be hit eventually");
    }

    #[test]
    fn random_first_covers_all_wanted() {
        let mine = bf(6, &[0]);
        let theirs = bf(6, &[1, 2, 3, 4, 5]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(
                select_piece(
                    PieceSelection::RandomFirst,
                    &mine,
                    &theirs,
                    &[],
                    &[],
                    &mut rng,
                )
                .unwrap(),
            );
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn nothing_to_offer_returns_none() {
        let mine = bf(4, &[0, 1]);
        let theirs = bf(4, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            select_piece(
                PieceSelection::RandomFirst,
                &mine,
                &theirs,
                &[],
                &[],
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn taken_pieces_avoided_when_alternatives_exist() {
        let mine = bf(4, &[]);
        let theirs = bf(4, &[0, 1]);
        let replication = [1, 1, 1, 1];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let p = select_piece(
                PieceSelection::RarestFirst,
                &mine,
                &theirs,
                &replication,
                &[0],
                &mut rng,
            );
            assert_eq!(p, Some(1));
        }
    }

    #[test]
    fn taken_fallback_when_everything_claimed() {
        let mine = bf(4, &[]);
        let theirs = bf(4, &[2]);
        let mut rng = StdRng::seed_from_u64(5);
        // Piece 2 is already claimed, but it is all the uploader has.
        let p = select_piece(
            PieceSelection::RandomFirst,
            &mine,
            &theirs,
            &[],
            &[2],
            &mut rng,
        );
        assert_eq!(p, Some(2));
    }

    #[test]
    fn replication_counts_sum() {
        let fields = [bf(4, &[0, 1]), bf(4, &[1, 2]), bf(4, &[1])];
        let counts = replication_counts(4, fields.iter());
        assert_eq!(counts, vec![1, 3, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "replication vector")]
    fn rarest_first_checks_replication_length() {
        let mine = bf(4, &[]);
        let theirs = bf(4, &[0]);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = select_piece(
            PieceSelection::RarestFirst,
            &mine,
            &theirs,
            &[1, 2],
            &[],
            &mut rng,
        );
    }
}
