//! Piece-selection strategies (§2.1): rarest-first and random-first.
//!
//! Selection is generic over a [`Substream`] — a source of uniform
//! picks. The serial engine path feeds it the model `StdRng`; the
//! parallel exchange plan phase feeds it a [`PlanStream`], a stateless
//! per-pair-direction SplitMix64 stream keyed off run identity alone so
//! that decisions are independent of worker count and shard layout.

use rand::Rng;

use crate::config::PieceSelection;
use crate::piece::{Bitfield, PieceId};

/// A source of uniform random picks for piece selection.
///
/// Implemented by the model RNG (`StdRng`, the serial engine path) and
/// by [`PlanStream`] (the parallel plan phase). Keeping selection
/// generic over this trait — rather than `rand::Rng` — lets the plan
/// phase draw from deterministic per-pair streams that never touch the
/// serial model RNG.
pub trait Substream {
    /// Returns a uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// May panic if `n == 0`; callers pick from non-empty candidate
    /// sets.
    fn pick(&mut self, n: usize) -> usize;
}

impl Substream for rand::rngs::StdRng {
    fn pick(&mut self, n: usize) -> usize {
        self.gen_range(0..n)
    }
}

/// A stateless SplitMix64 pick stream keyed from run identity.
///
/// The parallel exchange plan derives one stream per connection-pair
/// direction via [`PlanStream::pair`], chaining the run seed, round,
/// both peer sequence numbers, and the direction through the same
/// SplitMix64 mix `bt_des::SeedStream` uses for substream derivation.
/// Because the key depends only on *what* is being decided — never on
/// which worker or shard decides it — the resulting bytes are identical
/// at any `--threads` value, and a 1-shard plan equals an N-shard plan
/// bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct PlanStream {
    state: u64,
}

impl PlanStream {
    /// Derives the stream for one direction of a connection pair in one
    /// round: `lo`/`hi` are the canonical (sorted) peer sequence
    /// numbers and `dir` is 0 for the lo→hi download and 1 for hi→lo.
    #[must_use]
    pub fn pair(seed: u64, round: u64, lo: u64, hi: u64, dir: u64) -> Self {
        let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
        for salt in [round, lo, hi, dir] {
            h = splitmix64(h ^ salt);
        }
        PlanStream { state: h }
    }

    /// The next raw 64-bit draw (SplitMix64 sequence step).
    fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }
}

impl Substream for PlanStream {
    fn pick(&mut self, n: usize) -> usize {
        // Modulo bias is ~n / 2^64 — negligible at piece-count scale.
        (self.next_u64() % n as u64) as usize
    }
}

/// SplitMix64 finalizer, mirroring `bt_des::rng`'s derivation mix so
/// plan streams and seed substreams share one well-studied permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Picks which piece to download from a connected peer.
///
/// * `mine` — the downloader's bitfield;
/// * `theirs` — the uploader's bitfield;
/// * `replication` — per-piece replication counts over the downloader's
///   neighbor set (used by rarest-first; ties broken uniformly at random);
/// * `taken` — pieces already claimed this round on other connections
///   (avoids downloading the same piece twice in one round).
///
/// Returns `None` when the uploader has nothing new to offer.
///
/// # Example
///
/// ```
/// use bt_swarm::config::PieceSelection;
/// use bt_swarm::piece::Bitfield;
/// use bt_swarm::selection::select_piece;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mine = Bitfield::new(4);
/// let theirs = Bitfield::full(4);
/// let replication = [5, 1, 5, 5]; // piece 1 is rare
/// let mut rng = StdRng::seed_from_u64(0);
/// let picked = select_piece(
///     PieceSelection::RarestFirst,
///     &mine,
///     &theirs,
///     &replication,
///     &[],
///     &mut rng,
/// );
/// assert_eq!(picked, Some(1));
/// ```
pub fn select_piece<S: Substream + ?Sized>(
    strategy: PieceSelection,
    mine: &Bitfield,
    theirs: &Bitfield,
    replication: &[u64],
    taken: &[PieceId],
    rng: &mut S,
) -> Option<PieceId> {
    let mut wanted: Vec<PieceId> = mine
        .wanted_from(theirs)
        .into_iter()
        .filter(|p| !taken.contains(p))
        .collect();
    if wanted.is_empty() {
        // Fall back to pieces already claimed elsewhere rather than idling
        // the connection — duplicates are deduplicated on receipt.
        wanted = mine.wanted_from(theirs);
    }
    if wanted.is_empty() {
        return None;
    }
    match strategy {
        PieceSelection::RandomFirst => Some(wanted[rng.pick(wanted.len())]),
        PieceSelection::RarestFirst => {
            assert!(
                replication.len() == mine.len() as usize,
                "replication vector must cover all {} pieces",
                mine.len()
            );
            let min_rep = wanted
                .iter()
                .map(|&p| replication[p as usize])
                .min()
                .expect("wanted is non-empty");
            let rarest: Vec<PieceId> = wanted
                .into_iter()
                .filter(|&p| replication[p as usize] == min_rep)
                .collect();
            Some(rarest[rng.pick(rarest.len())])
        }
    }
}

/// Ranks up to `limit` candidate pieces to download from a connected
/// peer, best first, into `out` (cleared first).
///
/// This is [`select_piece`] iterated without replacement: each rank is
/// drawn by the same rule (uniform over wanted for random-first,
/// uniform over the rarest wanted for rarest-first) from the pieces not
/// yet ranked. The parallel exchange plan emits a ranked list per
/// connection direction so the serial commit can take the first
/// candidate still valid against live taken/possession state — a
/// downloader invalidates at most `max_connections` candidates in one
/// round (one claim or acquisition per other connection), so
/// `limit = max_connections + 1` always leaves a usable candidate when
/// one exists.
///
/// # Panics
///
/// Panics (like [`select_piece`]) if `strategy` is rarest-first and
/// `replication` does not cover all pieces.
pub fn rank_pieces<S: Substream + ?Sized>(
    strategy: PieceSelection,
    mine: &Bitfield,
    theirs: &Bitfield,
    replication: &[u64],
    limit: usize,
    rng: &mut S,
    out: &mut Vec<PieceId>,
) {
    out.clear();
    let mut remaining = mine.wanted_from(theirs);
    if remaining.is_empty() {
        return;
    }
    if strategy == PieceSelection::RarestFirst {
        assert!(
            replication.len() == mine.len() as usize,
            "replication vector must cover all {} pieces",
            mine.len()
        );
    }
    while out.len() < limit && !remaining.is_empty() {
        let idx = match strategy {
            PieceSelection::RandomFirst => rng.pick(remaining.len()),
            PieceSelection::RarestFirst => {
                let min_rep = remaining
                    .iter()
                    .map(|&p| replication[p as usize])
                    .min()
                    .expect("remaining is non-empty");
                let ties = remaining
                    .iter()
                    .filter(|&&p| replication[p as usize] == min_rep)
                    .count();
                let nth = rng.pick(ties);
                remaining
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| replication[p as usize] == min_rep)
                    .nth(nth)
                    .map(|(i, _)| i)
                    .expect("tie index within tie count")
            }
        };
        out.push(remaining.swap_remove(idx));
    }
}

/// Per-piece replication counts over a collection of bitfields (the view a
/// peer has of its neighbor set, and the quantity whose skew defines the
/// §6 entropy).
///
/// The engine no longer calls this on its hot paths: global counts come
/// from the incrementally maintained [`crate::replication::ReplicationIndex`],
/// and neighbor-local views are accumulated word-wise by the exchange
/// stage. This from-scratch rebuild is kept as the *oracle* the
/// property tests and [`crate::engine::Swarm::assert_invariants`] check
/// the index against.
#[must_use]
pub fn replication_counts<'a, I>(pieces: u32, fields: I) -> Vec<u64>
where
    I: IntoIterator<Item = &'a Bitfield>,
{
    let mut counts = vec![0u64; pieces as usize];
    for field in fields {
        for p in field.iter() {
            counts[p as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bf(pieces: u32, have: &[u32]) -> Bitfield {
        let mut b = Bitfield::new(pieces);
        for &p in have {
            b.set(p);
        }
        b
    }

    #[test]
    fn rarest_first_picks_minimum_replication() {
        let mine = bf(5, &[0]);
        let theirs = bf(5, &[1, 2, 3]);
        let replication = [9, 4, 1, 4, 9];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let p = select_piece(
                PieceSelection::RarestFirst,
                &mine,
                &theirs,
                &replication,
                &[],
                &mut rng,
            );
            assert_eq!(p, Some(2));
        }
    }

    #[test]
    fn rarest_first_breaks_ties_within_minimum() {
        let mine = bf(4, &[]);
        let theirs = bf(4, &[0, 1, 2, 3]);
        let replication = [2, 2, 7, 7];
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = select_piece(
                PieceSelection::RarestFirst,
                &mine,
                &theirs,
                &replication,
                &[],
                &mut rng,
            )
            .unwrap();
            assert!(p < 2, "only pieces 0 and 1 are rarest, got {p}");
            seen.insert(p);
        }
        assert_eq!(seen.len(), 2, "both ties should be hit eventually");
    }

    #[test]
    fn random_first_covers_all_wanted() {
        let mine = bf(6, &[0]);
        let theirs = bf(6, &[1, 2, 3, 4, 5]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(
                select_piece(
                    PieceSelection::RandomFirst,
                    &mine,
                    &theirs,
                    &[],
                    &[],
                    &mut rng,
                )
                .unwrap(),
            );
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn nothing_to_offer_returns_none() {
        let mine = bf(4, &[0, 1]);
        let theirs = bf(4, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            select_piece(
                PieceSelection::RandomFirst,
                &mine,
                &theirs,
                &[],
                &[],
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn taken_pieces_avoided_when_alternatives_exist() {
        let mine = bf(4, &[]);
        let theirs = bf(4, &[0, 1]);
        let replication = [1, 1, 1, 1];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let p = select_piece(
                PieceSelection::RarestFirst,
                &mine,
                &theirs,
                &replication,
                &[0],
                &mut rng,
            );
            assert_eq!(p, Some(1));
        }
    }

    #[test]
    fn taken_fallback_when_everything_claimed() {
        let mine = bf(4, &[]);
        let theirs = bf(4, &[2]);
        let mut rng = StdRng::seed_from_u64(5);
        // Piece 2 is already claimed, but it is all the uploader has.
        let p = select_piece(
            PieceSelection::RandomFirst,
            &mine,
            &theirs,
            &[],
            &[2],
            &mut rng,
        );
        assert_eq!(p, Some(2));
    }

    #[test]
    fn plan_stream_is_reproducible() {
        let mut a = PlanStream::pair(42, 3, 10, 17, 0);
        let mut b = PlanStream::pair(42, 3, 10, 17, 0);
        let draws_a: Vec<usize> = (0..16).map(|_| a.pick(1000)).collect();
        let draws_b: Vec<usize> = (0..16).map(|_| b.pick(1000)).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().all(|&d| d < 1000));
    }

    #[test]
    fn plan_stream_keys_separate_streams() {
        let base: Vec<usize> = {
            let mut s = PlanStream::pair(42, 3, 10, 17, 0);
            (0..8).map(|_| s.pick(usize::MAX)).collect()
        };
        for key in [
            PlanStream::pair(43, 3, 10, 17, 0), // seed
            PlanStream::pair(42, 4, 10, 17, 0), // round
            PlanStream::pair(42, 3, 11, 17, 0), // lo
            PlanStream::pair(42, 3, 10, 18, 0), // hi
            PlanStream::pair(42, 3, 10, 17, 1), // direction
        ] {
            let mut s = key;
            let draws: Vec<usize> = (0..8).map(|_| s.pick(usize::MAX)).collect();
            assert_ne!(draws, base, "key {key:?} must not collide with base");
        }
    }

    #[test]
    fn plan_stream_drives_selection() {
        // select_piece accepts a PlanStream wherever it accepts the
        // model RNG, and the pick lands in the wanted set.
        let mine = bf(8, &[0]);
        let theirs = bf(8, &[1, 2, 3]);
        let mut stream = PlanStream::pair(7, 1, 0, 1, 0);
        for _ in 0..32 {
            let p = select_piece(
                PieceSelection::RandomFirst,
                &mine,
                &theirs,
                &[],
                &[],
                &mut stream,
            )
            .expect("uploader has novel pieces");
            assert!([1, 2, 3].contains(&p));
        }
    }

    #[test]
    fn rank_pieces_lists_distinct_wanted_pieces() {
        let mine = bf(8, &[0]);
        let theirs = bf(8, &[1, 2, 3, 4]);
        let mut stream = PlanStream::pair(1, 1, 0, 1, 0);
        let mut out = Vec::new();
        rank_pieces(
            PieceSelection::RandomFirst,
            &mine,
            &theirs,
            &[],
            10,
            &mut stream,
            &mut out,
        );
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4], "all wanted pieces, each once");
    }

    #[test]
    fn rank_pieces_respects_limit_and_empty_want() {
        let mine = bf(8, &[]);
        let theirs = bf(8, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let mut stream = PlanStream::pair(2, 1, 0, 1, 0);
        let mut out = vec![99];
        rank_pieces(
            PieceSelection::RandomFirst,
            &mine,
            &theirs,
            &[],
            3,
            &mut stream,
            &mut out,
        );
        assert_eq!(out.len(), 3);
        let full = bf(8, &[0, 1, 2, 3, 4, 5, 6, 7]);
        rank_pieces(
            PieceSelection::RandomFirst,
            &full,
            &theirs,
            &[],
            3,
            &mut stream,
            &mut out,
        );
        assert!(out.is_empty(), "nothing wanted clears the output");
    }

    #[test]
    fn rank_pieces_orders_rarest_first() {
        let mine = bf(6, &[]);
        let theirs = bf(6, &[0, 1, 2, 3]);
        let replication = [9, 1, 5, 5, 0, 0];
        let mut stream = PlanStream::pair(3, 1, 0, 1, 0);
        let mut out = Vec::new();
        rank_pieces(
            PieceSelection::RarestFirst,
            &mine,
            &theirs,
            &replication,
            10,
            &mut stream,
            &mut out,
        );
        assert_eq!(out[0], 1, "unique rarest piece ranks first");
        assert_eq!(out[3], 0, "most replicated ranks last");
        assert!(out[1] == 2 || out[1] == 3, "ties fill the middle ranks");
    }

    #[test]
    fn replication_counts_sum() {
        let fields = [bf(4, &[0, 1]), bf(4, &[1, 2]), bf(4, &[1])];
        let counts = replication_counts(4, fields.iter());
        assert_eq!(counts, vec![1, 3, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "replication vector")]
    fn rarest_first_checks_replication_length() {
        let mine = bf(4, &[]);
        let theirs = bf(4, &[0]);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = select_piece(
            PieceSelection::RarestFirst,
            &mine,
            &theirs,
            &[1, 2],
            &[],
            &mut rng,
        );
    }
}
