//! The swarm simulation engine.
//!
//! A round-based protocol simulation driven by the `bt-des` kernel. One
//! round corresponds to one piece-exchange period (one step of the paper's
//! Markov model): arrivals are a Poisson process, each round every active
//! connection swaps one piece in each direction under strict tit-for-tat,
//! and peers depart the moment they complete.
//!
//! Per round, in order:
//!
//! 1. neighbor-set maintenance (symmetric top-up from the tracker),
//! 2. bootstrap injection (empty peers acquire their first piece via the
//!    seed / optimistic-unchoke channel),
//! 3. connection pruning (departures, lost mutual interest, and the
//!    `1 − p_r` per-round survival roll),
//! 4. connection establishment (tit-for-tat preference with an optimistic
//!    slot, success probability `p_n`, capped at `k` and by the potential
//!    set),
//! 5. piece exchange (one piece per direction per connection, rarest-first
//!    or random-first),
//! 6. completions depart; peers crossing the shake threshold shake (§7.1),
//! 7. metrics sampling.

use rand::rngs::StdRng;
use rand::Rng;

use bt_des::{Duration, SeedStream, SimTime, Simulator};
use bt_markov::dist::sample_exponential;

use crate::config::{BootstrapInjection, InitialPieces, SwarmConfig};
use crate::metrics::{CompletionRecord, ObserverLog, SwarmMetrics};
use crate::obs::SwarmObs;
use crate::peer::{Peer, PeerId};
use crate::selection::{replication_counts, select_piece};
use crate::snapshot::Snapshot;
use crate::telemetry::{ObserverSample, TelemetryRecorder};
use crate::tracker::Tracker;

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A new leecher joins the swarm.
    Arrival,
    /// One piece-exchange round elapses.
    Round,
}

/// A running (or finished) swarm simulation.
///
/// # Example
///
/// ```
/// use bt_swarm::{Swarm, SwarmConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SwarmConfig::builder()
///     .pieces(20)
///     .max_connections(3)
///     .neighbor_set_size(8)
///     .arrival_rate(1.0)
///     .initial_leechers(10)
///     .max_rounds(200)
///     .seed(42)
///     .build()?;
/// let metrics = Swarm::new(config).run();
/// assert!(metrics.departures > 0, "someone should finish in 200 rounds");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Swarm {
    config: SwarmConfig,
    peers: Vec<Option<Peer>>,
    tracker: Tracker,
    round: u64,
    rng: StdRng,
    metrics: SwarmMetrics,
    obs: SwarmObs,
    telemetry: Option<TelemetryRecorder>,
}

impl Swarm {
    /// Creates a swarm with its initial leechers in place, counting into
    /// the process-global [`bt_obs::Registry`].
    #[must_use]
    pub fn new(config: SwarmConfig) -> Self {
        Swarm::with_registry(config, bt_obs::Registry::global())
    }

    /// Like [`Swarm::new`], but counters and phase timers accumulate in
    /// the given registry — used by tests and harnesses that need
    /// isolated totals.
    #[must_use]
    pub fn with_registry(config: SwarmConfig, registry: bt_obs::Registry) -> Self {
        let rng = SeedStream::new(config.seed).rng("swarm", 0);
        let mut swarm = Swarm {
            metrics: SwarmMetrics::new(config.pieces),
            peers: Vec::new(),
            tracker: Tracker::new(),
            round: 0,
            rng,
            obs: SwarmObs::new(registry),
            telemetry: None,
            config,
        };
        for _ in 0..swarm.config.initial_leechers {
            let id = swarm.spawn_peer();
            swarm.endow_initial(id);
        }
        swarm
    }

    /// The configuration this swarm runs under.
    #[must_use]
    pub fn config(&self) -> &SwarmConfig {
        &self.config
    }

    /// The metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &SwarmMetrics {
        &self.metrics
    }

    /// Current leecher population.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.tracker.len() as u64
    }

    /// Current round number.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Identifiers of the currently alive peers, in join order.
    #[must_use]
    pub fn alive_peer_ids(&self) -> Vec<PeerId> {
        self.tracker.peers().to_vec()
    }

    /// The possession bitfield of an alive peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer has departed.
    #[must_use]
    pub fn peer_bitfield(&self, id: PeerId) -> &crate::piece::Bitfield {
        &self.peer(id).have
    }

    /// The active-connection count of an alive peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer has departed.
    #[must_use]
    pub fn peer_connection_count(&self, id: PeerId) -> u32 {
        self.peer(id).connections.len() as u32
    }

    /// Attaches a per-round telemetry recorder, binding it to this run's
    /// configuration. Subsequent rounds feed it samples, phase-detector
    /// observations, and flight-recorder events.
    pub fn attach_telemetry(&mut self, mut recorder: TelemetryRecorder) {
        recorder.bind(&self.config);
        self.telemetry = Some(recorder);
    }

    /// The attached telemetry recorder, if any.
    #[must_use]
    pub fn telemetry(&self) -> Option<&TelemetryRecorder> {
        self.telemetry.as_ref()
    }

    /// Detaches and returns the telemetry recorder (flushing its stream),
    /// e.g. to inspect it after driving rounds with [`Swarm::step_round`].
    pub fn take_telemetry(&mut self) -> Option<TelemetryRecorder> {
        let mut recorder = self.telemetry.take();
        if let Some(r) = recorder.as_mut() {
            r.finish();
        }
        recorder
    }

    /// Runs the simulation to its stop condition and returns the metrics.
    #[must_use]
    pub fn run(mut self) -> SwarmMetrics {
        let _span = tracing::info_span!(target: "bt_swarm", "swarm.run").entered();
        tracing::info!(
            target: "bt_swarm",
            pieces = self.config.pieces,
            k = self.config.max_connections,
            s = self.config.neighbor_set_size,
            lambda = self.config.arrival_rate,
            initial = self.config.initial_leechers,
            seed = self.config.seed;
            "swarm run starting"
        );
        let mut sim: Simulator<Event> = Simulator::new();
        if self.config.arrival_rate > 0.0 {
            let gap = sample_exponential(self.config.arrival_rate, &mut self.rng);
            sim.schedule(SimTime::from_secs(gap), Event::Arrival);
        }
        sim.schedule(SimTime::from_secs(1.0), Event::Round);
        sim.run(|sim, _time, event| match event {
            Event::Arrival => {
                let id = self.spawn_peer();
                let _ = id;
                let gap = sample_exponential(self.config.arrival_rate, &mut self.rng);
                sim.schedule_in(Duration::from_secs(gap), Event::Arrival);
            }
            Event::Round => {
                self.round += 1;
                self.execute_round();
                let done_rounds = self.round >= self.config.max_rounds;
                let done_completions = self
                    .config
                    .stop_after_completions
                    .is_some_and(|n| self.metrics.completions.len() as u64 >= n);
                if done_rounds || done_completions {
                    sim.request_stop();
                } else {
                    sim.schedule_in(Duration::from_secs(1.0), Event::Round);
                }
            }
        });
        self.metrics.rounds_run = self.round;
        if let Some(recorder) = self.telemetry.as_mut() {
            recorder.finish();
        }
        tracing::info!(
            target: "bt_swarm",
            rounds = self.metrics.rounds_run,
            arrivals = self.metrics.arrivals,
            departures = self.metrics.departures,
            completions = self.metrics.completions.len(),
            final_population = self.metrics.final_population();
            "swarm run finished"
        );
        self.metrics
    }

    /// Runs exactly one round without the DES driver (step-level control
    /// for tests and custom harnesses). Note: Poisson arrivals are
    /// scheduled by [`Swarm::run`]'s event loop, so stepped swarms see no
    /// new arrivals.
    pub fn step_round(&mut self) {
        self.round += 1;
        self.execute_round();
        self.metrics.rounds_run = self.round;
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn spawn_peer(&mut self) -> PeerId {
        let id = PeerId(self.peers.len() as u64);
        let mut peer = Peer::new(id, self.config.pieces, self.round);
        if self.config.slow_peer_fraction > 0.0 {
            peer.slow = self.rng.gen::<f64>() < self.config.slow_peer_fraction;
        }
        // Initial neighbor handout on join (tracker contact). With
        // bootstrap relief (§4.3), the tracker fills up to half the slots
        // with peers trapped in the bootstrap phase, so the newcomer's
        // fresh pieces reach them.
        let want = self.config.neighbor_set_size as usize;
        let mut handout = Vec::with_capacity(want);
        if self.config.bootstrap_relief {
            let mut trapped: Vec<PeerId> = self
                .tracker
                .peers()
                .iter()
                .copied()
                .filter(|&p| {
                    self.peers[p.0 as usize]
                        .as_ref()
                        .is_some_and(|peer| peer.have.count() <= 1)
                })
                .collect();
            let take = (want / 2).min(trapped.len());
            for i in 0..take {
                let j = self.rng.gen_range(i..trapped.len());
                trapped.swap(i, j);
            }
            handout.extend_from_slice(&trapped[..take]);
        }
        let rest = self
            .tracker
            .handout(id, &handout, want - handout.len(), &mut self.rng);
        handout.extend(rest);
        self.peers.push(Some(peer));
        let evict = self.config.join_eviction;
        for other in handout {
            self.add_symmetric_neighbor(id, other, evict);
        }
        self.tracker.register(id);
        self.metrics.arrivals += 1;
        self.obs.arrivals.incr();
        self.obs.peak_population.record_max(self.tracker.len() as u64);
        let obs_lo = u64::from(self.config.observe_from);
        let obs_hi = obs_lo + u64::from(self.config.observers);
        if (obs_lo..obs_hi).contains(&id.0) {
            self.metrics.observers.push(ObserverLog::new(id));
        }
        id
    }

    /// Makes `a` and `b` neighbors symmetrically. With `evict` set (used
    /// when integrating a joining peer), a full side evicts a random
    /// neighbor it is not actively connected to — so newcomers always find
    /// room, as when a BitTorrent client accepts an incoming connection.
    /// Without it (steady-state top-ups), the add fails if either side is
    /// full, keeping established neighborhoods stable between tracker
    /// contacts.
    fn add_symmetric_neighbor(&mut self, a: PeerId, b: PeerId, evict: bool) -> bool {
        if a == b || self.peer(a).is_neighbor(b) {
            return false;
        }
        let s = self.config.neighbor_set_size as usize;
        for id in [a, b] {
            if self.peer(id).neighbors.len() >= s && (!evict || !self.evict_idle_neighbor(id)) {
                return false;
            }
        }
        self.peer_mut(a).add_neighbor(b);
        self.peer_mut(b).add_neighbor(a);
        true
    }

    /// Evicts a uniformly random neighbor of `id` that is not an active
    /// connection, removing the backlink too. Returns false if every
    /// neighbor is connected.
    fn evict_idle_neighbor(&mut self, id: PeerId) -> bool {
        let idle: Vec<PeerId> = self
            .peer(id)
            .neighbors
            .iter()
            .copied()
            .filter(|&n| !self.peer(id).is_connected(n))
            .collect();
        if idle.is_empty() {
            return false;
        }
        let victim = idle[self.rng.gen_range(0..idle.len())];
        self.peer_mut(id).remove_neighbor(victim);
        if let Some(v) = self.peers[victim.0 as usize].as_mut() {
            v.remove_neighbor(id);
        }
        true
    }

    fn endow_initial(&mut self, id: PeerId) {
        let endowment = self.config.initial_pieces;
        let pieces = self.config.pieces;
        match endowment {
            InitialPieces::Empty => {}
            InitialPieces::Random { count } => {
                let mut got = 0;
                let mut guard = 0;
                while got < count && guard < 100_000 {
                    guard += 1;
                    let p = self.rng.gen_range(0..pieces);
                    if self.peer_mut(id).acquire(p, 0) {
                        got += 1;
                    }
                }
            }
            InitialPieces::Skewed { count, strength } => {
                let weights: Vec<f64> = (0..pieces).map(|j| strength.powi(j as i32)).collect();
                let mut got = 0;
                let mut guard = 0;
                while got < count && guard < 10_000 {
                    guard += 1;
                    let p = bt_markov::chain::sample_index(&weights, &mut self.rng) as u32;
                    if self.peer_mut(id).acquire(p, 0) {
                        got += 1;
                    }
                }
            }
        }
    }

    fn peer(&self, id: PeerId) -> &Peer {
        self.peers[id.0 as usize]
            .as_ref()
            .expect("peer departed but was referenced")
    }

    fn peer_mut(&mut self, id: PeerId) -> &mut Peer {
        self.peers[id.0 as usize]
            .as_mut()
            .expect("peer departed but was referenced")
    }

    fn alive_ids(&self) -> Vec<PeerId> {
        self.tracker.peers().to_vec()
    }

    fn execute_round(&mut self) {
        let _span = tracing::debug_span!(target: "bt_swarm::round", "swarm.round").entered();
        self.obs.rounds.incr();
        {
            let _g = self.obs.t_maintain.start();
            self.maintain_neighbors();
        }
        {
            let _g = self.obs.t_bootstrap.start();
            self.bootstrap_injection();
            self.seed_uploads();
        }
        {
            let _g = self.obs.t_prune.start();
            self.prune_connections();
        }
        {
            let _g = self.obs.t_establish.start();
            self.establish_connections();
        }
        {
            let _g = self.obs.t_exchange.start();
            self.exchange_pieces();
            self.handle_completions();
            self.handle_shakes();
        }
        {
            let _g = self.obs.t_sample.start();
            self.sample_metrics();
        }
        if self.telemetry.is_some() {
            self.record_telemetry();
        }
        tracing::debug!(
            target: "bt_swarm::round",
            round = self.round,
            population = self.tracker.len(),
            departures = self.metrics.departures;
            "round complete"
        );
    }

    /// Symmetric neighbor-set top-up from the tracker.
    fn maintain_neighbors(&mut self) {
        let s = self.config.neighbor_set_size as usize;
        for id in self.alive_ids() {
            let need = s.saturating_sub(self.peer(id).neighbors.len());
            if need == 0 {
                continue;
            }
            let exclude = self.peer(id).neighbors.clone();
            let handout = self.tracker.handout(id, &exclude, need, &mut self.rng);
            for other in handout {
                self.add_symmetric_neighbor(id, other, false);
            }
        }
    }

    /// Empty peers acquire a first piece via the seed / optimistic-unchoke
    /// channel.
    fn bootstrap_injection(&mut self) {
        let policy = self.config.bootstrap;
        let pieces = self.config.pieces;
        let empty: Vec<PeerId> = self
            .alive_ids()
            .into_iter()
            .filter(|&id| self.peer(id).have.is_empty())
            .collect();
        if empty.is_empty() {
            return;
        }
        match policy {
            BootstrapInjection::Off => {}
            BootstrapInjection::Uniform => {
                for id in empty {
                    let p = self.rng.gen_range(0..pieces);
                    let round = self.round;
                    if self.peer_mut(id).acquire(p, round) {
                        self.obs.bootstrap_injections.incr();
                    }
                }
            }
            BootstrapInjection::Weighted { seed_weight } => {
                let alive = self.alive_ids();
                let replication =
                    replication_counts(pieces, alive.iter().map(|&id| &self.peer(id).have));
                let weights: Vec<f64> = replication
                    .iter()
                    .map(|&d| d as f64 + seed_weight)
                    .collect();
                for id in empty {
                    let p = bt_markov::chain::sample_index(&weights, &mut self.rng) as u32;
                    let round = self.round;
                    if self.peer_mut(id).acquire(p, round) {
                        self.obs.bootstrap_injections.incr();
                    }
                }
            }
        }
    }

    /// The origin seed uploads `seed_uploads_per_round` pieces to random
    /// leechers, swarm-rarest-first. Seeds do not enforce tit-for-tat, so
    /// these pieces are free; this is what keeps every piece obtainable in
    /// a live swarm and is the physical source of the model's `γ` channel.
    fn seed_uploads(&mut self) {
        let uploads = self.config.seed_uploads_per_round;
        if uploads == 0 {
            return;
        }
        let alive = self.alive_ids();
        if alive.is_empty() {
            return;
        }
        let pieces = self.config.pieces;
        let mut replication =
            replication_counts(pieces, alive.iter().map(|&id| &self.peer(id).have));
        for _ in 0..uploads {
            let target = alive[self.rng.gen_range(0..alive.len())];
            if self.peers[target.0 as usize].is_none() {
                continue;
            }
            let wanted: Vec<u32> = self.peer(target).have.iter_missing().collect();
            let Some(&min_rep) = wanted.iter().map(|&p| &replication[p as usize]).min() else {
                continue;
            };
            let rarest: Vec<u32> = wanted
                .into_iter()
                .filter(|&p| replication[p as usize] == min_rep)
                .collect();
            let piece = rarest[self.rng.gen_range(0..rarest.len())];
            let round = self.round;
            if self.peer_mut(target).acquire(piece, round) {
                replication[piece as usize] += 1;
            }
        }
    }

    /// All current connections as canonical `(low, high)` pairs.
    fn connection_pairs(&self) -> Vec<(PeerId, PeerId)> {
        let mut pairs = Vec::new();
        for id in self.alive_ids() {
            for &other in &self.peer(id).connections {
                if id < other {
                    pairs.push((id, other));
                }
            }
        }
        pairs.sort();
        pairs
    }

    /// Drop connections that lost mutual interest or fail the per-round
    /// survival roll.
    fn prune_connections(&mut self) {
        for (a, b) in self.connection_pairs() {
            let tradable = self.peer(a).have.can_trade_with(&self.peer(b).have);
            let survives = self.rng.gen::<f64>() < self.config.p_reencounter;
            if !tradable || !survives {
                self.peer_mut(a).connections.retain(|&p| p != b);
                self.peer_mut(b).connections.retain(|&p| p != a);
            }
        }
    }

    /// Fill free connection slots from the potential set: tit-for-tat
    /// preference with an optimistic-unchoke slot, success `p_n`.
    fn establish_connections(&mut self) {
        let k = self.config.max_connections as usize;
        let mut order = self.alive_ids();
        // Randomized service order prevents low ids from monopolizing slots.
        for i in (1..order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let attempt_cap = self
            .config
            .new_connections_per_round
            .map_or(usize::MAX, |c| c as usize);
        for id in order {
            let mut initiated = 0usize;
            loop {
                if initiated >= attempt_cap || self.peer(id).connections.len() >= k {
                    break;
                }
                // Potential candidates; with blind encounters the remote
                // slot occupancy is unknown at selection time.
                let blind = self.config.blind_encounters;
                let me = self.peer(id);
                let mut candidates: Vec<PeerId> = me
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|&other| {
                        self.peers[other.0 as usize].as_ref().is_some_and(|o| {
                            !me.is_connected(other)
                                && (blind || o.connections.len() < k)
                                && me.have.can_trade_with(&o.have)
                        })
                    })
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                // Optimistic unchoke or tit-for-tat preference.
                let choice = if self.rng.gen::<f64>() < self.config.optimistic_prob {
                    candidates[self.rng.gen_range(0..candidates.len())]
                } else {
                    candidates
                        .sort_by_key(|&c| (std::cmp::Reverse(self.peer(id).credit_for(c)), c));
                    candidates[0]
                };
                // A blind attempt against a fully busy target fails.
                self.obs.conn_attempts.incr();
                let target_busy = self.peer(choice).connections.len() >= k;
                if !target_busy && self.rng.gen::<f64>() < self.config.p_new_connection {
                    self.peer_mut(id).connections.push(choice);
                    self.peer_mut(choice).connections.push(id);
                    self.obs.conn_successes.incr();
                    initiated += 1;
                } else {
                    // Failed attempt consumes the round's chance with this
                    // candidate; stop trying to avoid infinite retries.
                    break;
                }
            }
        }
    }

    /// One piece per direction per connection, strict tit-for-tat.
    fn exchange_pieces(&mut self) {
        let pieces = self.config.pieces;
        let strategy = self.config.piece_selection;
        // Neighbor-local replication views, computed once per round.
        let alive = self.alive_ids();
        let mut replication: Vec<(PeerId, Vec<u64>)> = Vec::with_capacity(alive.len());
        for &id in &alive {
            let counts = replication_counts(
                pieces,
                self.peer(id)
                    .neighbors
                    .iter()
                    .filter_map(|&n| self.peers[n.0 as usize].as_ref())
                    .map(|p| &p.have),
            );
            replication.push((id, counts));
        }
        fn lookup<T>(table: &[(PeerId, T)], id: PeerId) -> &T {
            table
                .iter()
                .find(|&&(p, _)| p == id)
                .map(|(_, v)| v)
                .expect("alive peer present in per-round table")
        }
        fn lookup_idx<T>(table: &[(PeerId, T)], id: PeerId) -> usize {
            table
                .iter()
                .position(|&(p, _)| p == id)
                .expect("alive peer present in per-round table")
        }
        let mut taken: Vec<(PeerId, Vec<u32>)> = alive.iter().map(|&id| (id, Vec::new())).collect();
        // Heterogeneous bandwidth: slow peers can serve only a bounded
        // number of block-transfers per round.
        let mut budgets: Vec<(PeerId, u32)> = alive
            .iter()
            .map(|&id| {
                let budget = if self.peer(id).slow {
                    self.config.slow_upload_budget
                } else {
                    u32::MAX
                };
                (id, budget)
            })
            .collect();
        for (a, b) in self.connection_pairs() {
            // Strict tit-for-tat needs upload budget on both sides.
            if *lookup(&budgets, a) == 0 || *lookup(&budgets, b) == 0 {
                continue;
            }
            // Re-check tradability: earlier exchanges this round may have
            // exhausted the novelty.
            if !self.peer(a).have.can_trade_with(&self.peer(b).have) {
                self.peer_mut(a).connections.retain(|&p| p != b);
                self.peer_mut(b).connections.retain(|&p| p != a);
                continue;
            }
            let have_a = self.peer(a).have.clone();
            let have_b = self.peer(b).have.clone();
            // Prefer finishing an in-flight partial piece the uploader has
            // (block continuity); otherwise pick a fresh piece.
            let continue_piece =
                |downloader: &crate::peer::Peer, uploader_have: &crate::piece::Bitfield| {
                    downloader
                        .partial
                        .keys()
                        .copied()
                        .filter(|&piece| uploader_have.contains(piece))
                        .min()
                };
            let wanted_a = continue_piece(self.peer(a), &have_b).or_else(|| {
                let rep_a: &Vec<u64> = lookup(&replication, a);
                let taken_a: Vec<u32> = lookup(&taken, a).clone();
                select_piece(strategy, &have_a, &have_b, rep_a, &taken_a, &mut self.rng)
            });
            let wanted_b = continue_piece(self.peer(b), &have_a).or_else(|| {
                let rep_b: &Vec<u64> = lookup(&replication, b);
                let taken_b: Vec<u32> = lookup(&taken, b).clone();
                select_piece(strategy, &have_b, &have_a, rep_b, &taken_b, &mut self.rng)
            });
            // Strict tit-for-tat: the swap happens only if both directions
            // carry a block.
            let (Some(pa), Some(pb)) = (wanted_a, wanted_b) else {
                continue;
            };
            let round = self.round;
            let blocks = self.config.blocks_per_piece;
            if self.peer_mut(a).receive_block(pa, blocks, round) {
                self.peer_mut(a).record_credit(b);
            }
            if self.peer_mut(b).receive_block(pb, blocks, round) {
                self.peer_mut(b).record_credit(a);
            }
            // One block moved in each direction.
            self.obs.pieces_exchanged.add(2);
            let ta = lookup_idx(&taken, a);
            taken[ta].1.push(pa);
            let tb = lookup_idx(&taken, b);
            taken[tb].1.push(pb);
            for id in [a, b] {
                let idx = lookup_idx(&budgets, id);
                budgets[idx].1 = budgets[idx].1.saturating_sub(1);
            }
        }
    }

    /// Completed peers depart immediately (paper assumption).
    fn handle_completions(&mut self) {
        let done: Vec<PeerId> = self
            .alive_ids()
            .into_iter()
            .filter(|&id| self.peer(id).have.is_complete())
            .collect();
        for id in done {
            let peer = self.peers[id.0 as usize]
                .take()
                .expect("completing peer is alive");
            self.tracker.deregister(id);
            for &other in &peer.neighbors {
                if let Some(o) = self.peers[other.0 as usize].as_mut() {
                    o.remove_neighbor(id);
                }
            }
            // Peers that joined during warm-up carry transient startup
            // dynamics; they depart normally but leave no record.
            if peer.joined_round >= self.config.metrics_warmup_rounds {
                let mut acq: Vec<u64> = peer
                    .piece_round
                    .iter()
                    .copied()
                    .filter(|&r| r != u64::MAX)
                    .collect();
                acq.sort_unstable();
                self.metrics.completions.push(CompletionRecord {
                    id,
                    joined_round: peer.joined_round,
                    completed_round: self.round,
                    acquisition_rounds: acq,
                    slow: peer.slow,
                });
                self.obs.completions.incr();
            }
            self.metrics.departures += 1;
            self.obs.departures.incr();
        }
    }

    /// Peers crossing the shake threshold drop their whole neighbor set
    /// (§7.1); the tracker refills them next round.
    fn handle_shakes(&mut self) {
        let Some(threshold) = self.config.shake_at else {
            return;
        };
        for id in self.alive_ids() {
            let peer = self.peer(id);
            if peer.shaken || peer.completion() < threshold {
                continue;
            }
            let ex_neighbors = self.peer(id).neighbors.clone();
            self.peer_mut(id).shake();
            self.obs.shakes.incr();
            for other in ex_neighbors {
                if let Some(o) = self.peers[other.0 as usize].as_mut() {
                    o.remove_neighbor(id);
                }
            }
        }
    }

    /// The potential set of `id`: alive neighbors with mutual tradability.
    #[must_use]
    fn potential_size(&self, id: PeerId) -> u32 {
        let me = self.peer(id);
        me.neighbors
            .iter()
            .filter(|&&n| {
                self.peers[n.0 as usize]
                    .as_ref()
                    .is_some_and(|o| me.have.can_trade_with(&o.have))
            })
            .count() as u32
    }

    /// Feeds the attached telemetry recorder one round: the full
    /// distributional snapshot plus the per-observer `(pieces, potential,
    /// connections)` states driving online phase detection.
    fn record_telemetry(&mut self) {
        let snapshot = Snapshot::capture(self);
        let obs_lo = u64::from(self.config.observe_from);
        let obs_hi = obs_lo + u64::from(self.config.observers);
        let observers: Vec<ObserverSample> = self
            .alive_ids()
            .into_iter()
            .filter(|id| (obs_lo..obs_hi).contains(&id.0))
            .map(|id| ObserverSample {
                peer: id.0,
                pieces: self.peer(id).have.count(),
                potential: self.potential_size(id),
                connections: self.peer(id).connections.len() as u32,
            })
            .collect();
        let k = self.config.max_connections;
        if let Some(recorder) = self.telemetry.as_mut() {
            recorder.record_round(&snapshot, k, &observers);
        }
    }

    fn sample_metrics(&mut self) {
        let alive = self.alive_ids();
        let round = self.round;
        self.metrics.population.push((round, alive.len() as u64));
        // Replication entropy over the leecher population.
        let replication = replication_counts(
            self.config.pieces,
            alive.iter().map(|&id| &self.peer(id).have),
        );
        self.metrics.entropy.push((round, entropy_of(&replication)));
        // Potential-set sizes bucketed by pieces held; utilization. Both
        // are steady-state measurements, so they respect the warm-up.
        let in_steady_state = round >= self.config.metrics_warmup_rounds;
        let k = self.config.max_connections as f64;
        let mut conn_total = 0usize;
        for &id in &alive {
            let potential = self.potential_size(id);
            let held = self.peer(id).have.count() as usize;
            if in_steady_state {
                self.metrics.potential_sum_by_pieces[held] += f64::from(potential);
                self.metrics.potential_count_by_pieces[held] += 1;
            }
            conn_total += self.peer(id).connections.len();
            let obs_lo = u64::from(self.config.observe_from);
            let obs_hi = obs_lo + u64::from(self.config.observers);
            if (obs_lo..obs_hi).contains(&id.0) {
                let connections = self.peer(id).connections.len() as u32;
                let pieces = self.peer(id).have.count();
                let log = self
                    .metrics
                    .observers
                    .iter_mut()
                    .find(|l| l.id == id)
                    .expect("observer log pre-created at spawn");
                log.rounds.push(round);
                log.pieces.push(pieces);
                log.potential.push(potential);
                log.connections.push(connections);
            }
        }
        if in_steady_state && !alive.is_empty() {
            self.metrics.utilization_sum += conn_total as f64 / (alive.len() as f64 * k);
            self.metrics.utilization_samples += 1;
        }
    }

    /// Checks the symmetry invariants (neighbor and connection relations);
    /// used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics on any violation.
    pub fn assert_invariants(&self) {
        for id in self.alive_ids() {
            let peer = self.peer(id);
            assert!(
                peer.connections.len() <= self.config.max_connections as usize,
                "{id} exceeds k"
            );
            for &n in &peer.neighbors {
                let other = self.peers[n.0 as usize]
                    .as_ref()
                    .unwrap_or_else(|| panic!("{id} lists departed neighbor {n}"));
                assert!(
                    other.is_neighbor(id),
                    "neighbor relation asymmetric: {id} {n}"
                );
            }
            for &c in &peer.connections {
                assert!(peer.is_neighbor(c), "{id} connected to non-neighbor {c}");
                let other = self.peers[c.0 as usize]
                    .as_ref()
                    .unwrap_or_else(|| panic!("{id} connected to departed {c}"));
                assert!(other.is_connected(id), "connection asymmetric: {id} {c}");
            }
        }
    }
}

/// Replication entropy `E = min(d)/max(d)` (§6). Zero for an empty system.
#[must_use]
pub fn entropy_of(replication: &[u64]) -> f64 {
    match (replication.iter().min(), replication.iter().max()) {
        (Some(&min), Some(&max)) if max > 0 => min as f64 / max as f64,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PieceSelection;

    fn small_config(seed: u64) -> SwarmConfig {
        SwarmConfig::builder()
            .pieces(12)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.5)
            .initial_leechers(12)
            .max_rounds(120)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn run_completes_downloads() {
        let metrics = Swarm::new(small_config(1)).run();
        assert!(metrics.departures > 0, "no peer completed in 120 rounds");
        assert_eq!(metrics.departures as usize, metrics.completions.len());
        for rec in &metrics.completions {
            assert_eq!(rec.acquisition_rounds.len(), 12);
            assert!(rec.completed_round >= rec.joined_round);
            for w in rec.acquisition_rounds.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Swarm::new(small_config(7)).run();
        let b = Swarm::new(small_config(7)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Swarm::new(small_config(1)).run();
        let b = Swarm::new(small_config(2)).run();
        assert_ne!(a, b);
    }

    #[test]
    fn invariants_hold_every_round() {
        let mut swarm = Swarm::new(small_config(3));
        for _ in 0..60 {
            swarm.step_round();
            swarm.assert_invariants();
        }
    }

    #[test]
    fn stop_after_completions_respected() {
        let config = SwarmConfig::builder()
            .pieces(8)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(1.0)
            .initial_leechers(16)
            .max_rounds(500)
            .stop_after_completions(5)
            .seed(9)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert!(metrics.departures >= 5);
        assert!(metrics.rounds_run < 500, "should stop early");
    }

    #[test]
    fn observers_record_trajectories() {
        let config = SwarmConfig::builder()
            .pieces(10)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.0)
            .initial_leechers(10)
            .max_rounds(80)
            .observers(3)
            .seed(5)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert_eq!(metrics.observers.len(), 3);
        for log in &metrics.observers {
            assert!(!log.is_empty(), "observer {} never sampled", log.id);
            // Pieces monotone.
            for w in log.pieces.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn entropy_of_cases() {
        assert_eq!(entropy_of(&[]), 0.0);
        assert_eq!(entropy_of(&[0, 5]), 0.0);
        assert_eq!(entropy_of(&[4, 4]), 1.0);
        assert_eq!(entropy_of(&[1, 4]), 0.25);
    }

    #[test]
    fn no_arrivals_zero_rate() {
        let config = SwarmConfig::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(0.0)
            .initial_leechers(6)
            .max_rounds(100)
            .seed(11)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert_eq!(metrics.arrivals, 6, "only the initial leechers");
    }

    #[test]
    fn arrivals_accumulate_with_rate() {
        let config = SwarmConfig::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(2.0)
            .initial_leechers(0)
            .max_rounds(100)
            .seed(13)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        // Poisson(2/round) over 100 rounds ≈ 200 arrivals.
        assert!(
            (100..320).contains(&metrics.arrivals),
            "got {} arrivals",
            metrics.arrivals
        );
    }

    #[test]
    fn rarest_first_beats_random_on_entropy() {
        let run = |strategy| {
            let config = SwarmConfig::builder()
                .pieces(16)
                .max_connections(3)
                .neighbor_set_size(8)
                .arrival_rate(1.0)
                .initial_leechers(20)
                .max_rounds(150)
                .piece_selection(strategy)
                .seed(17)
                .build()
                .unwrap();
            let m = Swarm::new(config).run();
            let tail = &m.entropy[m.entropy.len() / 2..];
            tail.iter().map(|&(_, e)| e).sum::<f64>() / tail.len() as f64
        };
        let rarest = run(PieceSelection::RarestFirst);
        let random = run(PieceSelection::RandomFirst);
        assert!(
            rarest >= random - 0.15,
            "rarest-first entropy {rarest} should not trail random {random} badly"
        );
    }

    #[test]
    fn shake_marks_peers() {
        let config = SwarmConfig::builder()
            .pieces(10)
            .max_connections(3)
            .neighbor_set_size(5)
            .arrival_rate(0.5)
            .initial_leechers(10)
            .max_rounds(100)
            .shake_at(0.5)
            .seed(19)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        // Peers that completed necessarily crossed the 50% threshold and
        // must have gone through a shake; the run still completes.
        assert!(metrics.departures > 0);
    }

    #[test]
    fn bootstrap_off_strands_empty_peers() {
        let config = SwarmConfig::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(0.0)
            .initial_leechers(8)
            .bootstrap(BootstrapInjection::Off)
            .seed_uploads_per_round(0)
            .max_rounds(50)
            .seed(23)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert_eq!(metrics.departures, 0, "nobody can acquire a first piece");
        assert_eq!(metrics.final_population(), 8);
    }

    #[test]
    fn initial_skew_lowers_entropy() {
        let entropy_with = |endowment| {
            let config = SwarmConfig::builder()
                .pieces(10)
                .max_connections(2)
                .neighbor_set_size(5)
                .arrival_rate(0.0)
                .initial_leechers(30)
                .initial_pieces(endowment)
                .bootstrap(BootstrapInjection::Off)
                .seed_uploads_per_round(0)
                .max_rounds(1)
                .seed(29)
                .build()
                .unwrap();
            Swarm::new(config).run().entropy[0].1
        };
        let skewed = entropy_with(InitialPieces::Skewed {
            count: 3,
            strength: 0.3,
        });
        let random = entropy_with(InitialPieces::Random { count: 3 });
        assert!(
            skewed < random,
            "skewed start ({skewed}) must be more skewed than random ({random})"
        );
    }

    #[test]
    fn utilization_is_a_fraction() {
        let metrics = Swarm::new(small_config(31)).run();
        let u = metrics.mean_utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }
}

#[cfg(test)]
mod mechanism_tests {
    use super::*;
    use crate::config::InitialPieces;
    use crate::SwarmConfig;

    #[test]
    fn shake_clears_and_refills_neighbors() {
        let config = SwarmConfig::builder()
            .pieces(10)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(0.0)
            .initial_leechers(12)
            .shake_at(0.5)
            .seed(31)
            .max_rounds(100)
            .build()
            .unwrap();
        let mut swarm = Swarm::new(config);
        let mut saw_shaken_with_neighbors = false;
        for _ in 0..100 {
            swarm.step_round();
            swarm.assert_invariants();
            for id in swarm.alive_ids() {
                let peer = swarm.peer(id);
                if peer.shaken && !peer.neighbors.is_empty() {
                    saw_shaken_with_neighbors = true;
                }
            }
        }
        assert!(
            saw_shaken_with_neighbors,
            "a shaken peer must get a fresh neighbor set from the tracker"
        );
    }

    #[test]
    fn new_connections_per_round_caps_initiations() {
        // With a cap of 1 and no prior connections, a peer can hold at most
        // 1 + (targets initiated by others) connections after round one.
        let config = SwarmConfig::builder()
            .pieces(20)
            .max_connections(5)
            .neighbor_set_size(10)
            .arrival_rate(0.0)
            .initial_leechers(10)
            .initial_pieces(InitialPieces::Random { count: 8 })
            .new_connections_per_round(1)
            .p_reencounter(1.0)
            .seed(37)
            .max_rounds(1)
            .build()
            .unwrap();
        let mut swarm = Swarm::new(config);
        swarm.step_round();
        let total: usize = swarm
            .alive_ids()
            .iter()
            .map(|&id| swarm.peer(id).connections.len())
            .sum();
        // Each of the 10 peers initiates at most once: at most 10 new
        // connections, i.e. 20 endpoint slots.
        assert!(total <= 20, "endpoints {total} exceed one initiation each");
        assert!(total > 0, "someone should connect");
    }

    #[test]
    fn blind_encounters_never_exceed_k() {
        let config = SwarmConfig::builder()
            .pieces(20)
            .max_connections(2)
            .neighbor_set_size(10)
            .arrival_rate(0.5)
            .initial_leechers(12)
            .initial_pieces(InitialPieces::Random { count: 8 })
            .blind_encounters(true)
            .seed(41)
            .max_rounds(40)
            .build()
            .unwrap();
        let mut swarm = Swarm::new(config);
        for _ in 0..40 {
            swarm.step_round();
            swarm.assert_invariants();
        }
    }

    #[test]
    fn bootstrap_relief_reduces_bootstrap_time() {
        let run = |relief: bool| {
            let config = SwarmConfig::builder()
                .pieces(30)
                .max_connections(3)
                .neighbor_set_size(4)
                .arrival_rate(0.5)
                .initial_leechers(40)
                .initial_pieces(InitialPieces::Skewed {
                    count: 10,
                    strength: 0.3,
                })
                .bootstrap(crate::BootstrapInjection::Weighted { seed_weight: 0.02 })
                .seed_uploads_per_round(1)
                .bootstrap_relief(relief)
                .metrics_warmup_rounds(3)
                .max_rounds(600)
                .stop_after_completions(25)
                .seed(43)
                .build()
                .unwrap();
            Swarm::new(config).run().mean_bootstrap_rounds()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "relief should shorten bootstrap: {with:.2} vs {without:.2}"
        );
    }

    #[test]
    fn warmup_excludes_early_completions() {
        let config = SwarmConfig::builder()
            .pieces(8)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(1.0)
            .initial_leechers(10)
            .metrics_warmup_rounds(5)
            .max_rounds(80)
            .seed(47)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        // Records only from post-warm-up joiners; departures count all.
        assert!(metrics.completions.len() as u64 <= metrics.departures);
        for rec in &metrics.completions {
            assert!(rec.joined_round >= 5, "{rec:?} joined during warm-up");
        }
    }

    #[test]
    fn seed_uploads_prefer_rarest() {
        // One peer, B=4: the seed should deliver distinct pieces in
        // sequence (each upload targets the rarest = an unheld piece).
        let config = SwarmConfig::builder()
            .pieces(4)
            .max_connections(1)
            .neighbor_set_size(1)
            .arrival_rate(0.0)
            .initial_leechers(1)
            .bootstrap(crate::BootstrapInjection::Off)
            .seed_uploads_per_round(1)
            .max_rounds(4)
            .seed(53)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert_eq!(metrics.departures, 1, "4 uploads complete 4 pieces");
        assert_eq!(metrics.completions[0].acquisition_rounds, vec![1, 2, 3, 4]);
    }
}

#[cfg(test)]
mod block_tests {
    use super::*;
    use crate::config::InitialPieces;
    use crate::SwarmConfig;

    fn block_config(blocks: u32, seed: u64) -> SwarmConfig {
        SwarmConfig::builder()
            .pieces(10)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.5)
            .initial_leechers(10)
            .initial_pieces(InitialPieces::Random { count: 3 })
            .blocks_per_piece(blocks)
            .max_rounds(600)
            .stop_after_completions(10)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_blocks_rejected() {
        assert!(SwarmConfig::builder().blocks_per_piece(0).build().is_err());
    }

    #[test]
    fn block_mode_completes_downloads() {
        let metrics = Swarm::new(block_config(4, 1)).run();
        assert!(metrics.departures >= 10);
        for rec in &metrics.completions {
            assert_eq!(rec.acquisition_rounds.len(), 10);
        }
    }

    #[test]
    fn more_blocks_mean_slower_downloads() {
        let rounds = |blocks| {
            Swarm::new(block_config(blocks, 2))
                .run()
                .mean_download_rounds()
        };
        let fast = rounds(1);
        let slow = rounds(8);
        assert!(
            slow > fast * 2.0,
            "8 blocks/piece ({slow:.1}) should be much slower than 1 ({fast:.1})"
        );
    }

    #[test]
    fn block_mode_keeps_invariants() {
        let mut swarm = Swarm::new(block_config(4, 3));
        for _ in 0..80 {
            swarm.step_round();
            swarm.assert_invariants();
            for id in swarm.alive_ids() {
                let peer = swarm.peer(id);
                for (&piece, &progress) in &peer.partial {
                    assert!(progress < 4, "partial progress must stay below completion");
                    assert!(
                        !peer.have.contains(piece),
                        "held pieces must not linger in partial"
                    );
                }
            }
        }
    }

    #[test]
    fn single_block_matches_legacy_behavior() {
        // blocks_per_piece = 1 must be byte-identical to the original
        // piece-per-round semantics (same RNG consumption).
        let metrics = Swarm::new(block_config(1, 4)).run();
        assert!(metrics.departures >= 10);
        // One piece per connection-round: a download of 10 pieces with up
        // to 3 connections finishes within a handful of rounds.
        assert!(metrics.mean_download_rounds() < 30.0);
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;
    use crate::config::InitialPieces;
    use crate::SwarmConfig;

    #[test]
    fn slow_fraction_validated() {
        assert!(SwarmConfig::builder()
            .slow_peer_fraction(1.5)
            .build()
            .is_err());
        assert!(SwarmConfig::builder()
            .slow_peer_fraction(-0.1)
            .build()
            .is_err());
        assert!(SwarmConfig::builder()
            .slow_peer_fraction(0.5)
            .slow_upload_budget(0)
            .build()
            .is_err());
    }

    #[test]
    fn slow_peers_download_slower() {
        let config = SwarmConfig::builder()
            .pieces(30)
            .max_connections(4)
            .neighbor_set_size(10)
            .arrival_rate(1.5)
            .initial_leechers(20)
            .initial_pieces(InitialPieces::Random { count: 10 })
            .slow_peer_fraction(0.4)
            .slow_upload_budget(1)
            .max_rounds(500)
            .stop_after_completions(120)
            .seed(61)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        let (fast, slow) = metrics.mean_download_rounds_by_class();
        assert!(
            fast.is_finite() && slow.is_finite(),
            "both classes complete"
        );
        assert!(
            slow > fast,
            "strict tit-for-tat makes slow peers slower: fast {fast:.1} vs slow {slow:.1}"
        );
    }

    #[test]
    fn homogeneous_default_has_no_slow_completions() {
        let config = SwarmConfig::builder()
            .pieces(10)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.5)
            .initial_leechers(10)
            .max_rounds(100)
            .seed(67)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert!(metrics.completions.iter().all(|r| !r.slow));
        let (_, slow_mean) = metrics.mean_download_rounds_by_class();
        assert!(slow_mean.is_nan());
    }
}
