//! The swarm simulation engine.
//!
//! A round-based protocol simulation driven by the `bt-des` kernel. One
//! round corresponds to one piece-exchange period (one step of the paper's
//! Markov model): arrivals are a Poisson process, each round every active
//! connection swaps one piece in each direction under strict tit-for-tat,
//! and peers depart the moment they complete.
//!
//! The engine is layered (see DESIGN.md, "Swarm engine architecture"):
//!
//! * [`crate::store::PeerStore`] — a generational slab holding the
//!   peers; stale [`PeerId`]s stop resolving instead of aliasing;
//! * [`crate::replication::ReplicationIndex`] — global per-piece
//!   replication counts maintained incrementally on acquire / arrival /
//!   departure events;
//! * [`crate::stages`] — the round as a pipeline of [`RoundStage`]s
//!   (maintain, bootstrap, prune, establish, exchange, depart, shake,
//!   sample), each swappable per scenario.
//!
//! [`SwarmCore`] is the state the stages operate on; [`Swarm`] couples a
//! core with a pipeline and the optional telemetry recorder.

use rand::rngs::StdRng;
use rand::Rng;

use bt_des::{Duration, SeedStream, SimTime, Simulator};
use bt_markov::dist::sample_exponential;

use crate::audit::SwarmAudit;
use crate::config::{InitialPieces, SwarmConfig};
use crate::metrics::{ObserverLog, SwarmMetrics};
use crate::monitors::{
    peer_slice, BundleContext, DoctorOptions, DoctorReport, FaultKind, FaultSpec, MonitorSample,
    SwarmDoctor,
};
use crate::obs::SwarmObs;
use crate::peer::{Peer, PeerId};
use crate::replication::ReplicationIndex;
use crate::selection::replication_counts;
use crate::stages::{default_pipeline, RoundStage};
use crate::store::PeerStore;
use crate::telemetry::{ObserverSample, TelemetryRecorder, TelemetrySample};
use crate::tracker::Tracker;

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A new leecher joins the swarm.
    Arrival,
    /// One piece-exchange round elapses.
    Round,
}

/// The swarm state the round stages operate on: configuration, peer
/// store, tracker, replication index, RNG, metrics, and counters.
///
/// Internal stages reach the fields directly; external
/// [`RoundStage`] implementations use the accessor methods plus the
/// mutation entry points [`acquire_piece`](SwarmCore::acquire_piece),
/// [`receive_block`](SwarmCore::receive_block), and
/// [`depart`](SwarmCore::depart), which keep the replication index in
/// sync with piece possession. Mutating bitfields through
/// [`store_mut`](SwarmCore::store_mut) directly bypasses the index —
/// [`Swarm::assert_invariants`] will catch the drift.
#[derive(Debug)]
pub struct SwarmCore {
    pub(crate) config: SwarmConfig,
    pub(crate) store: PeerStore,
    pub(crate) tracker: Tracker,
    pub(crate) replication: ReplicationIndex,
    pub(crate) round: u64,
    pub(crate) rng: StdRng,
    pub(crate) metrics: SwarmMetrics,
    pub(crate) obs: SwarmObs,
    pub(crate) profile: bt_obs::ProfileSink,
    pub(crate) audit: SwarmAudit,
    pub(crate) piece_cells: bt_obs::CountCells,
    pub(crate) cohort: bt_obs::CohortSink,
}

/// An immutable, `Sync` view of the swarm state a parallel plan phase
/// may read: configuration, peer store, and the round number.
///
/// [`SwarmCore`] itself is not `Sync` (its cohort sink owns a boxed
/// writer), so stages that shard read-only planning across worker
/// threads borrow this view instead. Store probe counting is atomic, so
/// concurrent reads through the view stay `&self` and race-free.
#[derive(Debug, Clone, Copy)]
pub struct CoreView<'a> {
    /// The run configuration.
    pub config: &'a SwarmConfig,
    /// The peer store, read-only.
    pub store: &'a PeerStore,
    /// Current round number.
    pub round: u64,
}

impl SwarmCore {
    /// The immutable view of the fields a parallel plan phase reads.
    #[must_use]
    pub fn view(&self) -> CoreView<'_> {
        CoreView {
            config: &self.config,
            store: &self.store,
            round: self.round,
        }
    }

    /// The configuration this swarm runs under.
    #[must_use]
    pub fn config(&self) -> &SwarmConfig {
        &self.config
    }

    /// Current round number (0 before the first round).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The peer store.
    #[must_use]
    pub fn store(&self) -> &PeerStore {
        &self.store
    }

    /// Mutable access to the peer store, for custom stages that edit
    /// topology (neighbors, connections, credit). Piece possession must
    /// go through [`acquire_piece`](Self::acquire_piece) /
    /// [`receive_block`](Self::receive_block) so the replication index
    /// stays in sync.
    #[must_use]
    pub fn store_mut(&mut self) -> &mut PeerStore {
        &mut self.store
    }

    /// The tracker (alive peers in join order).
    #[must_use]
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// The incrementally maintained replication index.
    #[must_use]
    pub fn replication(&self) -> &ReplicationIndex {
        &self.replication
    }

    /// The metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &SwarmMetrics {
        &self.metrics
    }

    /// The run's seeded RNG. All stage randomness must come from here —
    /// RNG call order is part of the determinism contract.
    #[must_use]
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The cost-attribution profiling sink. Stages report work counters
    /// ([`bt_obs::ProfileSink::add_work`]) and per-peer attribution
    /// ([`bt_obs::ProfileSink::add_peer_work`]) here; when profiling is
    /// disabled (the default) every call is an inlined no-op. The sink
    /// makes no RNG calls, so reporting to it never perturbs the run.
    #[must_use]
    pub fn profile_mut(&mut self) -> &mut bt_obs::ProfileSink {
        &mut self.profile
    }

    /// The always-on mutation audit (ground truth for the conservation
    /// and slot-balance monitors).
    #[must_use]
    pub fn audit(&self) -> &SwarmAudit {
        &self.audit
    }

    /// The incrementally maintained piece-count cells: exact counts of
    /// peers holding each possible number of pieces, kept in lock-step
    /// with the possession mutators so telemetry quantiles cost
    /// O(pieces) instead of a full population scan.
    #[must_use]
    pub fn piece_cells(&self) -> &bt_obs::CountCells {
        &self.piece_cells
    }

    /// The cohort lifecycle-trace sink (disabled unless
    /// [`Swarm::attach_cohort`] was called). Stages report member events
    /// here; every call is an inlined no-op while disabled.
    #[must_use]
    pub fn cohort_mut(&mut self) -> &mut bt_obs::CohortSink {
        &mut self.cohort
    }

    /// Grants `id` the given piece at the current round (bootstrap
    /// injection, seed upload, initial endowment). Returns `true` and
    /// updates the replication index if the piece was new.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not alive.
    pub fn acquire_piece(&mut self, id: PeerId, piece: u32) -> bool {
        let round = self.round;
        if self.store.peer_mut(id).acquire(piece, round) {
            self.replication.on_acquire(piece);
            self.audit.pieces_acquired += 1;
            let count = self.store.peer(id).have.count();
            self.piece_cells.shift(count - 1, count);
            true
        } else {
            false
        }
    }

    /// Delivers one block of `piece` to `id`. Returns `true` and updates
    /// the replication index if this block completed the piece.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not alive.
    pub fn receive_block(&mut self, id: PeerId, piece: u32) -> bool {
        let round = self.round;
        let blocks = self.config.blocks_per_piece;
        if self.store.peer_mut(id).receive_block(piece, blocks, round) {
            self.replication.on_acquire(piece);
            self.audit.pieces_acquired += 1;
            let count = self.store.peer(id).have.count();
            self.piece_cells.shift(count - 1, count);
            true
        } else {
            false
        }
    }

    /// Removes `id` from the swarm: deregisters it, updates the
    /// replication index for the pieces it carried away, and removes
    /// neighbor backlinks. Returns the departed peer for the caller to
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not alive.
    pub fn depart(&mut self, id: PeerId) -> Peer {
        let peer = self
            .store
            .remove(id)
            .expect("departing peer must be alive");
        self.replication.on_departure(&peer.have);
        self.piece_cells.decr(peer.have.count());
        self.audit.pieces_departed += u64::from(peer.have.count());
        self.audit.conn_closed += peer.connections.len() as u64;
        self.audit.departures += 1;
        self.tracker.deregister(id);
        for &other in &peer.neighbors {
            if let Some(o) = self.store.get_mut(other) {
                o.remove_neighbor(id);
            }
        }
        peer
    }

    /// The potential set size of `id`: alive neighbors with mutual
    /// tradability (the quantity the paper's download model tracks).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not alive.
    #[must_use]
    pub fn potential_size(&self, id: PeerId) -> u32 {
        let me = self.store.peer(id);
        me.neighbors
            .iter()
            .filter(|&&n| {
                self.store
                    .get(n)
                    .is_some_and(|o| me.have.can_trade_with(&o.have))
            })
            .count() as u32
    }

    /// Collects all current connections as canonical `(low, high)`
    /// pairs, sorted, into `out` (cleared first).
    pub fn collect_connection_pairs(&self, out: &mut Vec<(PeerId, PeerId)>) {
        out.clear();
        for &id in self.tracker.peers() {
            for &other in &self.store.peer(id).connections {
                if id < other {
                    out.push((id, other));
                }
            }
        }
        out.sort_unstable();
    }

    /// Makes `a` and `b` neighbors symmetrically. With `evict` set (used
    /// when integrating a joining peer), a full side evicts a random
    /// neighbor it is not actively connected to — so newcomers always find
    /// room, as when a BitTorrent client accepts an incoming connection.
    /// Without it (steady-state top-ups), the add fails if either side is
    /// full, keeping established neighborhoods stable between tracker
    /// contacts.
    pub fn add_symmetric_neighbor(&mut self, a: PeerId, b: PeerId, evict: bool) -> bool {
        if a == b || self.store.peer(a).is_neighbor(b) {
            return false;
        }
        let s = self.config.neighbor_set_size as usize;
        for id in [a, b] {
            if self.store.peer(id).neighbors.len() >= s && (!evict || !self.evict_idle_neighbor(id))
            {
                return false;
            }
        }
        self.store.peer_mut(a).add_neighbor(b);
        self.store.peer_mut(b).add_neighbor(a);
        true
    }

    /// Evicts a uniformly random neighbor of `id` that is not an active
    /// connection, removing the backlink too. Returns false if every
    /// neighbor is connected.
    fn evict_idle_neighbor(&mut self, id: PeerId) -> bool {
        // Count-then-nth over the same filtered order the old engine
        // collected into a Vec: one RNG draw with the same bound picks
        // the same victim, without the allocation.
        let me = self.store.peer(id);
        let idle_count = me
            .neighbors
            .iter()
            .filter(|&&n| !me.is_connected(n))
            .count();
        if idle_count == 0 {
            return false;
        }
        let pick = self.rng.gen_range(0..idle_count);
        let me = self.store.peer(id);
        let victim = me
            .neighbors
            .iter()
            .copied()
            .filter(|&n| !me.is_connected(n))
            .nth(pick)
            .expect("pick is within the idle count");
        self.store.peer_mut(id).remove_neighbor(victim);
        if let Some(v) = self.store.get_mut(victim) {
            v.remove_neighbor(id);
        }
        true
    }

    pub(crate) fn spawn_peer(&mut self) -> PeerId {
        let pieces = self.config.pieces;
        let round = self.round;
        let id = self.store.insert_with(|id| Peer::new(id, pieces, round));
        self.piece_cells.incr(0);
        if self.config.slow_peer_fraction > 0.0 {
            let slow = self.rng.gen::<f64>() < self.config.slow_peer_fraction;
            self.store.peer_mut(id).slow = slow;
        }
        // Initial neighbor handout on join (tracker contact). With
        // bootstrap relief (§4.3), the tracker fills up to half the slots
        // with peers trapped in the bootstrap phase, so the newcomer's
        // fresh pieces reach them.
        let want = self.config.neighbor_set_size as usize;
        let mut handout = Vec::with_capacity(want);
        if self.config.bootstrap_relief {
            let mut trapped: Vec<PeerId> = self
                .tracker
                .peers()
                .iter()
                .copied()
                .filter(|&p| self.store.peer(p).have.count() <= 1)
                .collect();
            let take = (want / 2).min(trapped.len());
            for i in 0..take {
                let j = self.rng.gen_range(i..trapped.len());
                trapped.swap(i, j);
            }
            handout.extend_from_slice(&trapped[..take]);
        }
        let rest = self
            .tracker
            .handout(id, &handout, want - handout.len(), &mut self.rng);
        handout.extend(rest);
        let evict = self.config.join_eviction;
        for other in handout {
            self.add_symmetric_neighbor(id, other, evict);
        }
        self.tracker.register(id);
        self.metrics.arrivals += 1;
        self.obs.arrivals.incr();
        self.obs.peak_population.record_max(self.tracker.len() as u64);
        let obs_lo = u64::from(self.config.observe_from);
        let obs_hi = obs_lo + u64::from(self.config.observers);
        if (obs_lo..obs_hi).contains(&id.seq()) {
            self.metrics.observers.push(ObserverLog::new(id));
        }
        // Offer the arrival to the cohort reservoir: one private-RNG draw
        // per arrival when enabled, zero model-RNG impact either way.
        self.cohort.offer_join(round, id.seq());
        id
    }

    pub(crate) fn endow_initial(&mut self, id: PeerId) {
        let endowment = self.config.initial_pieces;
        let pieces = self.config.pieces;
        match endowment {
            InitialPieces::Empty => {}
            InitialPieces::Random { count } => {
                let mut got = 0;
                let mut guard = 0;
                while got < count && guard < 100_000 {
                    guard += 1;
                    let p = self.rng.gen_range(0..pieces);
                    if self.acquire_piece(id, p) {
                        self.cohort
                            .acquire(self.round, id.seq(), p, bt_obs::acquire_source::ENDOW);
                        got += 1;
                    }
                }
            }
            InitialPieces::Skewed { count, strength } => {
                let weights: Vec<f64> = (0..pieces).map(|j| strength.powi(j as i32)).collect();
                let mut got = 0;
                let mut guard = 0;
                while got < count && guard < 10_000 {
                    guard += 1;
                    let p = bt_markov::chain::sample_index(&weights, &mut self.rng) as u32;
                    if self.acquire_piece(id, p) {
                        self.cohort
                            .acquire(self.round, id.seq(), p, bt_obs::acquire_source::ENDOW);
                        got += 1;
                    }
                }
            }
        }
    }

    /// Applies a scheduled fault (see [`FaultKind`]): deliberate
    /// corruption that bypasses the accounting paths, so the seeded-fault
    /// tests can prove the monitors fire. Makes no RNG calls — targets
    /// are picked deterministically in join order.
    pub(crate) fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::UnaccountedPiece => {
                // Prefer a piece some other peer also holds, so a later
                // departure of the corrupted peer cannot underflow the
                // replication index.
                let target = self
                    .tracker
                    .peers()
                    .iter()
                    .copied()
                    .find(|&id| !self.store.peer(id).have.is_complete());
                if let Some(id) = target {
                    let piece = self
                        .store
                        .peer(id)
                        .have
                        .iter_missing()
                        .find(|&p| self.replication.counts()[p as usize] > 0)
                        .or_else(|| self.store.peer(id).have.iter_missing().next());
                    if let Some(piece) = piece {
                        self.store.peer_mut(id).have.set(piece);
                    }
                }
            }
            FaultKind::IndexDrift => {
                if self.config.pieces > 0 {
                    self.replication.on_acquire(0);
                }
            }
            FaultKind::HalfOpenConnection => {
                let k = self.config.max_connections as usize;
                let mut found = None;
                'outer: for &id in self.tracker.peers() {
                    let peer = self.store.peer(id);
                    if peer.connections.len() >= k {
                        continue;
                    }
                    for &n in &peer.neighbors {
                        if !peer.is_connected(n) && self.store.get(n).is_some() {
                            found = Some((id, n));
                            break 'outer;
                        }
                    }
                }
                if let Some((a, b)) = found {
                    self.store.peer_mut(a).connections.push(b);
                }
            }
        }
    }
}

/// One pipeline slot: a stage plus its pre-resolved phase timer.
struct PipelineEntry {
    timer: bt_obs::Timer,
    stage: Box<dyn RoundStage>,
}

/// A running (or finished) swarm simulation: a [`SwarmCore`] driven
/// through a stage pipeline each round.
///
/// # Example
///
/// ```
/// use bt_swarm::{Swarm, SwarmConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SwarmConfig::builder()
///     .pieces(20)
///     .max_connections(3)
///     .neighbor_set_size(8)
///     .arrival_rate(1.0)
///     .initial_leechers(10)
///     .max_rounds(200)
///     .seed(42)
///     .build()?;
/// let metrics = Swarm::new(config).run();
/// assert!(metrics.departures > 0, "someone should finish in 200 rounds");
/// # Ok(())
/// # }
/// ```
pub struct Swarm {
    core: SwarmCore,
    pipeline: Vec<PipelineEntry>,
    telemetry: Option<TelemetryRecorder>,
    doctor: Option<SwarmDoctor>,
    heartbeat: Option<bt_obs::HeartbeatEmitter>,
    fault: Option<FaultSpec>,
}

impl std::fmt::Debug for Swarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Swarm")
            .field("core", &self.core)
            .field(
                "pipeline",
                &self
                    .pipeline
                    .iter()
                    .map(|entry| entry.stage.name())
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl Swarm {
    /// Creates a swarm with its initial leechers in place, counting into
    /// the process-global [`bt_obs::Registry`].
    #[must_use]
    pub fn new(config: SwarmConfig) -> Self {
        // Audited: one-time handle resolution at construction, never in
        // the round loop. bt-lint: allow(shared-interior-mut)
        Swarm::with_registry(config, bt_obs::Registry::global())
    }

    /// Like [`Swarm::new`], but counters and phase timers accumulate in
    /// the given registry — used by tests and harnesses that need
    /// isolated totals.
    #[must_use]
    pub fn with_registry(config: SwarmConfig, registry: bt_obs::Registry) -> Self {
        let stages = default_pipeline(&config);
        Swarm::with_pipeline(config, registry, stages)
    }

    /// Creates a swarm that runs a custom stage pipeline instead of
    /// [`default_pipeline`] — the hook for scenario ablations (shaking
    /// off, no departures, an experimental policy stage, …). Stages run
    /// in the given order every round, each under a phase timer resolved
    /// from its [`RoundStage::timer_name`].
    #[must_use]
    pub fn with_pipeline(
        config: SwarmConfig,
        registry: bt_obs::Registry,
        stages: Vec<Box<dyn RoundStage>>,
    ) -> Self {
        let rng = SeedStream::new(config.seed).rng("swarm", 0);
        let pipeline = stages
            .into_iter()
            .map(|stage| PipelineEntry {
                timer: registry.timer(stage.timer_name()),
                stage,
            })
            .collect();
        let mut core = SwarmCore {
            metrics: SwarmMetrics::new(config.pieces),
            store: PeerStore::new(),
            tracker: Tracker::new(),
            replication: ReplicationIndex::new(config.pieces),
            round: 0,
            rng,
            obs: SwarmObs::new(registry),
            profile: bt_obs::ProfileSink::default(),
            audit: SwarmAudit::default(),
            piece_cells: bt_obs::CountCells::new(config.pieces),
            cohort: bt_obs::CohortSink::disabled(),
            config,
        };
        for _ in 0..core.config.initial_leechers {
            let id = core.spawn_peer();
            core.endow_initial(id);
        }
        Swarm {
            core,
            pipeline,
            telemetry: None,
            doctor: None,
            heartbeat: None,
            fault: None,
        }
    }

    /// The configuration this swarm runs under.
    #[must_use]
    pub fn config(&self) -> &SwarmConfig {
        &self.core.config
    }

    /// The metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &SwarmMetrics {
        &self.core.metrics
    }

    /// Current leecher population.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.core.tracker.len() as u64
    }

    /// Current round number.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.core.round
    }

    /// The stage names of the active pipeline, in execution order.
    #[must_use]
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.pipeline
            .iter()
            .map(|entry| entry.stage.name())
            .collect()
    }

    /// Sets the worker-thread count for stages with a parallel plan
    /// phase (currently the exchange stage). Purely a throughput knob:
    /// the determinism contract guarantees byte-identical outputs at
    /// every value. Values below 1 are treated as 1.
    pub fn set_threads(&mut self, threads: u32) {
        for entry in &mut self.pipeline {
            entry.stage.set_threads(threads.max(1));
        }
    }

    /// The global per-piece replication counts, maintained incrementally
    /// by the replication index.
    #[must_use]
    pub fn replication_counts(&self) -> &[u64] {
        self.core.replication.counts()
    }

    /// Identifiers of the currently alive peers, in join order.
    #[must_use]
    pub fn alive_peer_ids(&self) -> Vec<PeerId> {
        self.core.tracker.peers().to_vec()
    }

    /// The possession bitfield of an alive peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer has departed.
    #[must_use]
    pub fn peer_bitfield(&self, id: PeerId) -> &crate::piece::Bitfield {
        &self.core.store.peer(id).have
    }

    /// The active-connection count of an alive peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer has departed.
    #[must_use]
    pub fn peer_connection_count(&self, id: PeerId) -> u32 {
        self.core.store.peer(id).connections.len() as u32
    }

    /// Attaches a per-round telemetry recorder, binding it to this run's
    /// configuration. Subsequent rounds feed it samples, phase-detector
    /// observations, and flight-recorder events.
    pub fn attach_telemetry(&mut self, mut recorder: TelemetryRecorder) {
        recorder.bind(&self.core.config);
        self.telemetry = Some(recorder);
    }

    /// The attached telemetry recorder, if any.
    #[must_use]
    pub fn telemetry(&self) -> Option<&TelemetryRecorder> {
        self.telemetry.as_ref()
    }

    /// Detaches and returns the telemetry recorder (flushing its stream),
    /// e.g. to inspect it after driving rounds with [`Swarm::step_round`].
    pub fn take_telemetry(&mut self) -> Option<TelemetryRecorder> {
        let mut recorder = self.telemetry.take();
        if let Some(r) = recorder.as_mut() {
            r.finish();
        }
        recorder
    }

    /// Enables cost-attribution profiling for subsequent rounds (see
    /// [`bt_obs::ProfileSink`]). The profiler makes no RNG calls and
    /// never feeds back into stage decisions, so attaching it leaves a
    /// same-seed run byte-identical — the property
    /// `crates/swarm/tests/determinism.rs` locks in.
    pub fn attach_profiler(&mut self, options: bt_obs::ProfileOptions) {
        self.core.profile = bt_obs::ProfileSink::enabled(options);
    }

    /// Detaches and returns the profiling sink, leaving profiling
    /// disabled — e.g. to write artifacts after driving rounds with
    /// [`Swarm::step_round`]. The returned sink is disabled (and its
    /// report `None`) when no profiler was attached.
    pub fn take_profile(&mut self) -> bt_obs::ProfileSink {
        std::mem::take(&mut self.core.profile)
    }

    /// Attaches a deterministic reservoir-sampled peer cohort of `size`
    /// members, streaming binary-framed lifecycle events (join, piece
    /// acquisitions, choke-slot changes, phase transitions, departure)
    /// to `writer`. Membership is drawn from a private RNG stream salted
    /// off the run seed — the sink makes no model RNG calls, so
    /// attaching it leaves a same-seed run byte-identical (locked by
    /// `crates/swarm/tests/determinism.rs`). Peers already alive (the
    /// initial leechers) are offered to the reservoir immediately, in
    /// join order.
    pub fn attach_cohort(&mut self, size: u32, writer: Box<dyn std::io::Write + Send>) {
        let options = bt_obs::CohortOptions {
            size,
            seed: self.core.config.seed,
        };
        let mut sink = bt_obs::CohortSink::enabled(options, writer);
        let round = self.core.round;
        for i in 0..self.core.tracker.len() {
            let id = self.core.tracker.peers()[i];
            sink.offer_join(round, id.seq());
        }
        self.core.cohort = sink;
    }

    /// The cohort sink (disabled unless [`Swarm::attach_cohort`] was
    /// called).
    #[must_use]
    pub fn cohort(&self) -> &bt_obs::CohortSink {
        &self.core.cohort
    }

    /// Detaches and returns the cohort sink (flushing its stream),
    /// leaving cohort tracing disabled — e.g. to inspect membership
    /// after driving rounds with [`Swarm::step_round`].
    pub fn take_cohort(&mut self) -> bt_obs::CohortSink {
        let mut sink = std::mem::replace(&mut self.core.cohort, bt_obs::CohortSink::disabled());
        sink.finish();
        sink
    }

    /// Attaches a heartbeat emitter (see [`bt_obs::HeartbeatEmitter`]):
    /// subsequent rounds emit wall-clock-cadenced progress records to
    /// the emitter's run directory. The emitter only reads swarm state
    /// and makes no model RNG calls, so attaching it leaves a same-seed
    /// run byte-identical — `crates/swarm/tests/determinism.rs` locks
    /// the property in. Emission errors are logged, never fatal: a full
    /// disk must not kill a multi-hour run.
    pub fn attach_heartbeat(&mut self, emitter: bt_obs::HeartbeatEmitter) {
        self.heartbeat = Some(emitter);
    }

    /// Detaches and returns the heartbeat emitter after writing its
    /// final beat and marking `run.status.json` finished — e.g. after
    /// driving rounds with [`Swarm::step_round`]. `None` when no
    /// emitter was attached.
    pub fn take_heartbeat(&mut self) -> Option<bt_obs::HeartbeatEmitter> {
        self.finish_heartbeat();
        self.heartbeat.take()
    }

    /// Attaches a [`SwarmDoctor`]: subsequent rounds are checked against
    /// the built-in invariant monitors at the doctor's cadence. Like the
    /// profiler and telemetry, the doctor only reads state and makes no
    /// RNG calls, so attaching it leaves a same-seed run byte-identical.
    pub fn attach_doctor(&mut self, options: DoctorOptions) {
        self.doctor = Some(SwarmDoctor::new(options));
    }

    /// Detaches the doctor and returns its report, e.g. after driving
    /// rounds with [`Swarm::step_round`]. `None` when no doctor was
    /// attached.
    pub fn take_doctor_report(&mut self) -> Option<DoctorReport> {
        self.doctor.take().map(SwarmDoctor::finish)
    }

    /// Schedules a deliberate invariant-breaking fault (see
    /// [`FaultKind`]) to be applied after the stages of the given round —
    /// the test-only hook behind `btlab doctor --inject-fault`, proving
    /// the monitors fire and the diagnosis bundle lands.
    pub fn schedule_fault(&mut self, fault: FaultSpec) {
        self.fault = Some(fault);
    }

    /// Runs the simulation to its stop condition and returns the metrics.
    #[must_use]
    pub fn run(mut self) -> SwarmMetrics {
        self.drive();
        self.core.metrics
    }

    /// Like [`Swarm::run`], but also returns the profiling sink so its
    /// artifacts can be written. The sink is disabled (report `None`)
    /// unless [`Swarm::attach_profiler`] was called first.
    #[must_use]
    pub fn run_profiled(mut self) -> (SwarmMetrics, bt_obs::ProfileSink) {
        self.drive();
        let SwarmCore {
            metrics, profile, ..
        } = self.core;
        (metrics, profile)
    }

    /// Like [`Swarm::run_profiled`], but also returns the doctor's
    /// report. The report is `None` unless [`Swarm::attach_doctor`] was
    /// called first.
    #[must_use]
    pub fn run_diagnosed(mut self) -> (SwarmMetrics, bt_obs::ProfileSink, Option<DoctorReport>) {
        self.drive();
        let report = self.doctor.take().map(SwarmDoctor::finish);
        let SwarmCore {
            metrics, profile, ..
        } = self.core;
        (metrics, profile, report)
    }

    /// Drives the DES event loop to the stop condition.
    fn drive(&mut self) {
        let _span = tracing::info_span!(target: "bt_swarm", "swarm.run").entered();
        tracing::info!(
            target: "bt_swarm",
            pieces = self.core.config.pieces,
            k = self.core.config.max_connections,
            s = self.core.config.neighbor_set_size,
            lambda = self.core.config.arrival_rate,
            initial = self.core.config.initial_leechers,
            seed = self.core.config.seed;
            "swarm run starting"
        );
        let mut sim: Simulator<Event> = Simulator::new();
        if self.core.config.arrival_rate > 0.0 {
            let gap = sample_exponential(self.core.config.arrival_rate, &mut self.core.rng);
            sim.schedule(SimTime::from_secs(gap), Event::Arrival);
        }
        sim.schedule(SimTime::from_secs(1.0), Event::Round);
        sim.run(|sim, _time, event| match event {
            Event::Arrival => {
                let id = self.core.spawn_peer();
                let _ = id;
                let gap = sample_exponential(self.core.config.arrival_rate, &mut self.core.rng);
                sim.schedule_in(Duration::from_secs(gap), Event::Arrival);
            }
            Event::Round => {
                self.core.round += 1;
                self.execute_round();
                let done_rounds = self.core.round >= self.core.config.max_rounds;
                let done_completions = self
                    .core
                    .config
                    .stop_after_completions
                    .is_some_and(|n| self.core.metrics.completions.len() as u64 >= n);
                if done_rounds || done_completions {
                    sim.request_stop();
                } else {
                    sim.schedule_in(Duration::from_secs(1.0), Event::Round);
                }
            }
        });
        self.core.metrics.rounds_run = self.core.round;
        if let Some(recorder) = self.telemetry.as_mut() {
            recorder.finish();
        }
        self.core.cohort.finish();
        self.finish_heartbeat();
        tracing::info!(
            target: "bt_swarm",
            rounds = self.core.metrics.rounds_run,
            arrivals = self.core.metrics.arrivals,
            departures = self.core.metrics.departures,
            completions = self.core.metrics.completions.len(),
            final_population = self.core.metrics.final_population();
            "swarm run finished"
        );
    }

    /// Runs exactly one round without the DES driver (step-level control
    /// for tests and custom harnesses). Note: Poisson arrivals are
    /// scheduled by [`Swarm::run`]'s event loop, so stepped swarms see no
    /// new arrivals.
    pub fn step_round(&mut self) {
        self.core.round += 1;
        self.execute_round();
        self.core.metrics.rounds_run = self.core.round;
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    #[cfg(test)]
    fn peer(&self, id: PeerId) -> &Peer {
        self.core.store.peer(id)
    }

    #[cfg(test)]
    fn alive_ids(&self) -> Vec<PeerId> {
        self.core.tracker.peers().to_vec()
    }

    fn execute_round(&mut self) {
        let _span = tracing::debug_span!(target: "bt_swarm::round", "swarm.round").entered();
        self.core.obs.rounds.incr();
        self.core.profile.begin_round(self.core.round);
        for entry in &mut self.pipeline {
            self.core.profile.begin_stage(entry.stage.name());
            let probes_before = self.core.store.probe_count();
            let alloc_before = bt_obs::mem::allocated_bytes_total();
            {
                let _g = entry.timer.start();
                entry.stage.run(&mut self.core);
            }
            let probes = self.core.store.probe_count().wrapping_sub(probes_before);
            self.core.profile.add_work("store.slab_probes", probes);
            // Allocation attribution: the delta is nonzero only when a
            // counting allocator is installed (`alloc-profile` feature
            // of bt-bench); otherwise this is two relaxed atomic loads.
            let alloc_delta = bt_obs::mem::allocated_bytes_total().wrapping_sub(alloc_before);
            if alloc_delta > 0 {
                self.core.profile.add_work("mem.alloc_bytes", alloc_delta);
            }
            // Audited: telemetry flush into the profiler's registry
            // timers — commutative counts, never read back by model
            // code. bt-lint: allow(shared-interior-mut)
            self.core.profile.end_stage();
        }
        self.core.profile.end_round();
        if self.fault.is_some_and(|f| f.round == self.core.round) {
            let fault = self.fault.take().expect("fault presence just checked");
            self.core.apply_fault(fault.kind);
        }
        // Observer work runs under its own `obs.*` timers (only when
        // attached, so unobserved runs pay nothing): the manifest sums
        // them into `obs_share`, the quantity the `--obs-budget` gate
        // checks.
        if self.doctor.is_some() {
            let _g = self.core.obs.doctor_timer.start();
            self.check_doctor();
        }
        if self.telemetry.is_some() {
            let _g = self.core.obs.telemetry_timer.start();
            self.record_telemetry();
        }
        if self.heartbeat.is_some() {
            let _g = self.core.obs.heartbeat_timer.start();
            self.record_heartbeat();
        }
        tracing::debug!(
            target: "bt_swarm::round",
            round = self.core.round,
            population = self.core.tracker.len(),
            departures = self.core.metrics.departures;
            "round complete"
        );
    }

    /// Runs the attached doctor's monitors if this round is on its
    /// cadence, writing the diagnosis bundle on the first violation. A
    /// no-op (no scan, no allocation) when no doctor is attached.
    fn check_doctor(&mut self) {
        let Some(mut doctor) = self.doctor.take() else {
            return;
        };
        if doctor.due(self.core.round) {
            let sample = MonitorSample::capture(&self.core);
            let telemetry = self.current_sample();
            let violations = doctor.observe(&sample, telemetry);
            if !violations.is_empty() {
                for v in &violations {
                    tracing::warn!(target: "bt_swarm::doctor", "{}", v);
                }
                if !doctor.bundle_written() {
                    let subjects: Vec<u64> = violations
                        .iter()
                        .flat_map(|v| v.subjects.iter().copied())
                        .collect();
                    let context = BundleContext {
                        seed: self.core.config.seed,
                        pipeline: self
                            .pipeline
                            .iter()
                            .map(|entry| entry.stage.name().to_string())
                            .collect(),
                        peers: peer_slice(&self.core, &subjects, 32),
                        profile: self.core.profile.report(),
                    };
                    match doctor.emit_bundle(&sample, &violations, &context) {
                        Ok(Some(dir)) => tracing::warn!(
                            target: "bt_swarm::doctor",
                            "diagnosis bundle written to {}",
                            dir.display()
                        ),
                        Ok(None) => {}
                        Err(e) => tracing::warn!(
                            target: "bt_swarm::doctor",
                            "failed to write diagnosis bundle: {}",
                            e
                        ),
                    }
                }
            }
        }
        self.doctor = Some(doctor);
    }

    /// The current round's heartbeat pulse: population off the tracker,
    /// entropy off the replication index, and the swarm phase from the
    /// median piece count ([`bt_obs::swarm_phase`]) — all O(pieces)
    /// sketch reads, no population scan, no RNG.
    fn heartbeat_pulse(&self) -> bt_obs::HeartbeatPulse {
        let core = &self.core;
        let population = core.tracker.len() as u64;
        let median_pieces = u64::from(core.piece_cells.quantile(0.5).unwrap_or(0));
        bt_obs::HeartbeatPulse {
            round: core.round,
            population,
            entropy: entropy_of(core.replication.counts()),
            phase: bt_obs::swarm_phase(population, median_pieces, core.config.pieces),
        }
    }

    /// Emits a heartbeat if the attached emitter's wall-clock cadence
    /// says one is due. Emission errors are logged and swallowed.
    fn record_heartbeat(&mut self) {
        if !self.heartbeat.as_ref().is_some_and(bt_obs::HeartbeatEmitter::due) {
            return;
        }
        let pulse = self.heartbeat_pulse();
        if let Some(emitter) = self.heartbeat.as_mut() {
            if let Err(e) = emitter.beat(&pulse) {
                tracing::warn!(target: "bt_swarm", "heartbeat emission failed: {e}");
            }
        }
    }

    /// Writes the final beat and marks the run status finished. A no-op
    /// when no emitter is attached (or it already finished — the
    /// emitter's `finish` is idempotent).
    fn finish_heartbeat(&mut self) {
        if self.heartbeat.is_none() {
            return;
        }
        let _g = self.core.obs.heartbeat_timer.start();
        let pulse = self.heartbeat_pulse();
        if let Some(emitter) = self.heartbeat.as_mut() {
            if let Err(e) = emitter.finish(&pulse) {
                tracing::warn!(target: "bt_swarm", "heartbeat finalization failed: {e}");
            }
        }
    }

    /// The current round's [`TelemetrySample`], built from the streaming
    /// sketches instead of a full population scan: replication counts
    /// and availability bins off the replication index (O(pieces)),
    /// piece-count quantiles off the [`bt_obs::CountCells`] maintained
    /// by the possession mutators (O(pieces)), and the mean degree from
    /// the audit's connection balance (O(1)) — bit-identical to the
    /// [`crate::snapshot::Snapshot::capture`] +
    /// [`TelemetrySample::from_snapshot`] path
    /// (`sketch_sample_matches_snapshot_oracle` locks the equivalence).
    #[must_use]
    pub fn current_sample(&self) -> TelemetrySample {
        let core = &self.core;
        let replication = core.replication.counts();
        let population = core.tracker.len() as u64;
        let max_rep = replication.iter().max().copied().unwrap_or(0);
        let mut availability = vec![0u64; max_rep as usize + 1];
        for &d in replication {
            availability[d as usize] += 1;
        }
        let q = |fraction: f64| core.piece_cells.quantile(fraction).unwrap_or(0);
        // Every open connection contributes exactly two endpoints, so the
        // audit balance reproduces the per-peer degree sum without a
        // scan. Exact in f64: the endpoint total stays far below 2^53.
        let mean_degree = if population == 0 {
            0.0
        } else {
            2.0 * (core.audit.conn_opened as f64 - core.audit.conn_closed as f64)
                / population as f64
        };
        let k = core.config.max_connections;
        let slot_utilization = if k == 0 {
            0.0
        } else {
            mean_degree / f64::from(k)
        };
        TelemetrySample {
            round: core.round,
            population,
            entropy: entropy_of(replication),
            extinct_pieces: replication.iter().filter(|&&d| d == 0).count() as u64,
            availability,
            piece_quantiles: [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)],
            mean_degree,
            slot_utilization,
        }
    }

    /// Feeds the attached telemetry recorder one round: the sketch-built
    /// sample plus the per-observer `(pieces, potential, connections)`
    /// states driving online phase detection.
    fn record_telemetry(&mut self) {
        let sample = self.current_sample();
        let core = &self.core;
        let obs_lo = u64::from(core.config.observe_from);
        let obs_hi = obs_lo + u64::from(core.config.observers);
        let observers: Vec<ObserverSample> = core
            .tracker
            .peers()
            .iter()
            .copied()
            .filter(|id| (obs_lo..obs_hi).contains(&id.seq()))
            .map(|id| ObserverSample {
                peer: id.seq(),
                pieces: core.store.peer(id).have.count(),
                potential: core.potential_size(id),
                connections: core.store.peer(id).connections.len() as u32,
            })
            .collect();
        if let Some(recorder) = self.telemetry.as_mut() {
            recorder.record_sample(&sample, &observers);
        }
    }

    /// Checks the structural invariants: symmetric neighbor and
    /// connection relations, the `k` cap, and the replication index
    /// agreeing with a from-scratch rebuild (its property-test oracle);
    /// used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics on any violation.
    pub fn assert_invariants(&self) {
        let core = &self.core;
        for &id in core.tracker.peers() {
            let peer = core.store.peer(id);
            assert!(
                peer.connections.len() <= core.config.max_connections as usize,
                "{id} exceeds k"
            );
            for &n in &peer.neighbors {
                let other = core
                    .store
                    .get(n)
                    .unwrap_or_else(|| panic!("{id} lists departed neighbor {n}"));
                assert!(
                    other.is_neighbor(id),
                    "neighbor relation asymmetric: {id} {n}"
                );
            }
            for &c in &peer.connections {
                assert!(peer.is_neighbor(c), "{id} connected to non-neighbor {c}");
                let other = core
                    .store
                    .get(c)
                    .unwrap_or_else(|| panic!("{id} connected to departed {c}"));
                assert!(other.is_connected(id), "connection asymmetric: {id} {c}");
            }
        }
        let oracle = replication_counts(
            core.config.pieces,
            core.tracker.peers().iter().map(|&id| &core.store.peer(id).have),
        );
        assert_eq!(
            core.replication.counts(),
            &oracle[..],
            "replication index diverged from the from-scratch rebuild"
        );
        let mut cells_oracle = vec![0u64; core.config.pieces as usize + 1];
        for &id in core.tracker.peers() {
            cells_oracle[core.store.peer(id).have.count() as usize] += 1;
        }
        assert_eq!(
            core.piece_cells.counts(),
            &cells_oracle[..],
            "piece-count cells diverged from the per-peer recount"
        );
    }
}

/// Replication entropy `E = min(d)/max(d)` (§6). Zero for an empty system.
#[must_use]
pub fn entropy_of(replication: &[u64]) -> f64 {
    match (replication.iter().min(), replication.iter().max()) {
        (Some(&min), Some(&max)) if max > 0 => min as f64 / max as f64,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BootstrapInjection, PieceSelection};

    fn small_config(seed: u64) -> SwarmConfig {
        SwarmConfig::builder()
            .pieces(12)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.5)
            .initial_leechers(12)
            .max_rounds(120)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn run_completes_downloads() {
        let metrics = Swarm::new(small_config(1)).run();
        assert!(metrics.departures > 0, "no peer completed in 120 rounds");
        assert_eq!(metrics.departures as usize, metrics.completions.len());
        for rec in &metrics.completions {
            assert_eq!(rec.acquisition_rounds.len(), 12);
            assert!(rec.completed_round >= rec.joined_round);
            for w in rec.acquisition_rounds.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Swarm::new(small_config(7)).run();
        let b = Swarm::new(small_config(7)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Swarm::new(small_config(1)).run();
        let b = Swarm::new(small_config(2)).run();
        assert_ne!(a, b);
    }

    #[test]
    fn invariants_hold_every_round() {
        let mut swarm = Swarm::new(small_config(3));
        for _ in 0..60 {
            swarm.step_round();
            swarm.assert_invariants();
        }
    }

    // The tentpole equivalence: the sketch-built sample (piece cells +
    // audit balance + replication index) must be bit-identical to the
    // full-scan Snapshot path every round, including f64 fields.
    #[test]
    fn sketch_sample_matches_snapshot_oracle() {
        let mut swarm = Swarm::new(small_config(9));
        for _ in 0..80 {
            swarm.step_round();
            let exact = TelemetrySample::from_snapshot(
                &crate::snapshot::Snapshot::capture(&swarm),
                swarm.config().max_connections,
            );
            assert_eq!(swarm.current_sample(), exact);
        }
    }

    #[test]
    fn sketch_sample_handles_empty_swarm() {
        let config = SwarmConfig::builder()
            .pieces(5)
            .max_connections(1)
            .neighbor_set_size(1)
            .arrival_rate(0.0)
            .initial_leechers(0)
            .max_rounds(5)
            .seed(0)
            .build()
            .unwrap();
        let swarm = Swarm::new(config);
        let exact = TelemetrySample::from_snapshot(
            &crate::snapshot::Snapshot::capture(&swarm),
            swarm.config().max_connections,
        );
        assert_eq!(swarm.current_sample(), exact);
        assert_eq!(swarm.current_sample().population, 0);
    }

    #[test]
    fn cohort_reservoir_traces_member_lifecycles() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let mut swarm = Swarm::new(small_config(11));
        swarm.attach_cohort(4, Box::new(buf.clone()));
        assert!(swarm.cohort().is_enabled());
        for _ in 0..120 {
            swarm.step_round();
        }
        let sink = swarm.take_cohort();
        assert!(sink.members().len() <= 4);
        assert!(sink.events() > 0, "a 120-round run must trace something");
        let bytes = buf.0.lock().unwrap().clone();
        let (meta, events) = bt_obs::read_cohort(&bytes[..]).unwrap();
        assert_eq!(meta.size, 4);
        assert_eq!(meta.seed, swarm.config().seed);
        assert_eq!(events.len() as u64, sink.events());
        // Every traced event belongs to a peer that joined the reservoir.
        let mut joined = std::collections::BTreeSet::new();
        for event in &events {
            match event {
                bt_obs::CohortEvent::Join(j) => {
                    joined.insert(j.peer);
                }
                other => {
                    assert!(
                        joined.contains(&other.peer()),
                        "event for {} before its join record",
                        other.peer()
                    );
                }
            }
        }
    }

    #[test]
    fn stop_after_completions_respected() {
        let config = SwarmConfig::builder()
            .pieces(8)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(1.0)
            .initial_leechers(16)
            .max_rounds(500)
            .stop_after_completions(5)
            .seed(9)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert!(metrics.departures >= 5);
        assert!(metrics.rounds_run < 500, "should stop early");
    }

    #[test]
    fn observers_record_trajectories() {
        let config = SwarmConfig::builder()
            .pieces(10)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.0)
            .initial_leechers(10)
            .max_rounds(80)
            .observers(3)
            .seed(5)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert_eq!(metrics.observers.len(), 3);
        for log in &metrics.observers {
            assert!(!log.is_empty(), "observer {} never sampled", log.id);
            // Pieces monotone.
            for w in log.pieces.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn entropy_of_cases() {
        assert_eq!(entropy_of(&[]), 0.0);
        assert_eq!(entropy_of(&[0, 5]), 0.0);
        assert_eq!(entropy_of(&[4, 4]), 1.0);
        assert_eq!(entropy_of(&[1, 4]), 0.25);
    }

    #[test]
    fn no_arrivals_zero_rate() {
        let config = SwarmConfig::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(0.0)
            .initial_leechers(6)
            .max_rounds(100)
            .seed(11)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert_eq!(metrics.arrivals, 6, "only the initial leechers");
    }

    #[test]
    fn arrivals_accumulate_with_rate() {
        let config = SwarmConfig::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(2.0)
            .initial_leechers(0)
            .max_rounds(100)
            .seed(13)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        // Poisson(2/round) over 100 rounds ≈ 200 arrivals.
        assert!(
            (100..320).contains(&metrics.arrivals),
            "got {} arrivals",
            metrics.arrivals
        );
    }

    #[test]
    fn rarest_first_beats_random_on_entropy() {
        let run = |strategy| {
            let config = SwarmConfig::builder()
                .pieces(16)
                .max_connections(3)
                .neighbor_set_size(8)
                .arrival_rate(1.0)
                .initial_leechers(20)
                .max_rounds(150)
                .piece_selection(strategy)
                .seed(17)
                .build()
                .unwrap();
            let m = Swarm::new(config).run();
            let tail = &m.entropy[m.entropy.len() / 2..];
            tail.iter().map(|&(_, e)| e).sum::<f64>() / tail.len() as f64
        };
        let rarest = run(PieceSelection::RarestFirst);
        let random = run(PieceSelection::RandomFirst);
        assert!(
            rarest >= random - 0.15,
            "rarest-first entropy {rarest} should not trail random {random} badly"
        );
    }

    #[test]
    fn shake_marks_peers() {
        let config = SwarmConfig::builder()
            .pieces(10)
            .max_connections(3)
            .neighbor_set_size(5)
            .arrival_rate(0.5)
            .initial_leechers(10)
            .max_rounds(100)
            .shake_at(0.5)
            .seed(19)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        // Peers that completed necessarily crossed the 50% threshold and
        // must have gone through a shake; the run still completes.
        assert!(metrics.departures > 0);
    }

    #[test]
    fn bootstrap_off_strands_empty_peers() {
        let config = SwarmConfig::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(0.0)
            .initial_leechers(8)
            .bootstrap(BootstrapInjection::Off)
            .seed_uploads_per_round(0)
            .max_rounds(50)
            .seed(23)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert_eq!(metrics.departures, 0, "nobody can acquire a first piece");
        assert_eq!(metrics.final_population(), 8);
    }

    #[test]
    fn initial_skew_lowers_entropy() {
        let entropy_with = |endowment| {
            let config = SwarmConfig::builder()
                .pieces(10)
                .max_connections(2)
                .neighbor_set_size(5)
                .arrival_rate(0.0)
                .initial_leechers(30)
                .initial_pieces(endowment)
                .bootstrap(BootstrapInjection::Off)
                .seed_uploads_per_round(0)
                .max_rounds(1)
                .seed(29)
                .build()
                .unwrap();
            Swarm::new(config).run().entropy[0].1
        };
        let skewed = entropy_with(InitialPieces::Skewed {
            count: 3,
            strength: 0.3,
        });
        let random = entropy_with(InitialPieces::Random { count: 3 });
        assert!(
            skewed < random,
            "skewed start ({skewed}) must be more skewed than random ({random})"
        );
    }

    #[test]
    fn utilization_is_a_fraction() {
        let metrics = Swarm::new(small_config(31)).run();
        let u = metrics.mean_utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }
}

#[cfg(test)]
mod mechanism_tests {
    use super::*;
    use crate::config::InitialPieces;
    use crate::SwarmConfig;

    #[test]
    fn shake_clears_and_refills_neighbors() {
        let config = SwarmConfig::builder()
            .pieces(10)
            .max_connections(2)
            .neighbor_set_size(4)
            .arrival_rate(0.0)
            .initial_leechers(12)
            .shake_at(0.5)
            .seed(31)
            .max_rounds(100)
            .build()
            .unwrap();
        let mut swarm = Swarm::new(config);
        let mut saw_shaken_with_neighbors = false;
        for _ in 0..100 {
            swarm.step_round();
            swarm.assert_invariants();
            for id in swarm.alive_ids() {
                let peer = swarm.peer(id);
                if peer.shaken && !peer.neighbors.is_empty() {
                    saw_shaken_with_neighbors = true;
                }
            }
        }
        assert!(
            saw_shaken_with_neighbors,
            "a shaken peer must get a fresh neighbor set from the tracker"
        );
    }

    #[test]
    fn new_connections_per_round_caps_initiations() {
        // With a cap of 1 and no prior connections, a peer can hold at most
        // 1 + (targets initiated by others) connections after round one.
        let config = SwarmConfig::builder()
            .pieces(20)
            .max_connections(5)
            .neighbor_set_size(10)
            .arrival_rate(0.0)
            .initial_leechers(10)
            .initial_pieces(InitialPieces::Random { count: 8 })
            .new_connections_per_round(1)
            .p_reencounter(1.0)
            .seed(37)
            .max_rounds(1)
            .build()
            .unwrap();
        let mut swarm = Swarm::new(config);
        swarm.step_round();
        let total: usize = swarm
            .alive_ids()
            .iter()
            .map(|&id| swarm.peer(id).connections.len())
            .sum();
        // Each of the 10 peers initiates at most once: at most 10 new
        // connections, i.e. 20 endpoint slots.
        assert!(total <= 20, "endpoints {total} exceed one initiation each");
        assert!(total > 0, "someone should connect");
    }

    #[test]
    fn blind_encounters_never_exceed_k() {
        let config = SwarmConfig::builder()
            .pieces(20)
            .max_connections(2)
            .neighbor_set_size(10)
            .arrival_rate(0.5)
            .initial_leechers(12)
            .initial_pieces(InitialPieces::Random { count: 8 })
            .blind_encounters(true)
            .seed(41)
            .max_rounds(40)
            .build()
            .unwrap();
        let mut swarm = Swarm::new(config);
        for _ in 0..40 {
            swarm.step_round();
            swarm.assert_invariants();
        }
    }

    #[test]
    fn bootstrap_relief_reduces_bootstrap_time() {
        let run = |relief: bool| {
            let config = SwarmConfig::builder()
                .pieces(30)
                .max_connections(3)
                .neighbor_set_size(4)
                .arrival_rate(0.5)
                .initial_leechers(40)
                .initial_pieces(InitialPieces::Skewed {
                    count: 10,
                    strength: 0.3,
                })
                .bootstrap(crate::BootstrapInjection::Weighted { seed_weight: 0.02 })
                .seed_uploads_per_round(1)
                .bootstrap_relief(relief)
                .metrics_warmup_rounds(3)
                .max_rounds(600)
                .stop_after_completions(25)
                .seed(43)
                .build()
                .unwrap();
            Swarm::new(config).run().mean_bootstrap_rounds()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "relief should shorten bootstrap: {with:.2} vs {without:.2}"
        );
    }

    #[test]
    fn warmup_excludes_early_completions() {
        let config = SwarmConfig::builder()
            .pieces(8)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(1.0)
            .initial_leechers(10)
            .metrics_warmup_rounds(5)
            .max_rounds(80)
            .seed(47)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        // Records only from post-warm-up joiners; departures count all.
        assert!(metrics.completions.len() as u64 <= metrics.departures);
        for rec in &metrics.completions {
            assert!(rec.joined_round >= 5, "{rec:?} joined during warm-up");
        }
    }

    #[test]
    fn seed_uploads_prefer_rarest() {
        // One peer, B=4: the seed should deliver distinct pieces in
        // sequence (each upload targets the rarest = an unheld piece).
        let config = SwarmConfig::builder()
            .pieces(4)
            .max_connections(1)
            .neighbor_set_size(1)
            .arrival_rate(0.0)
            .initial_leechers(1)
            .bootstrap(crate::BootstrapInjection::Off)
            .seed_uploads_per_round(1)
            .max_rounds(4)
            .seed(53)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert_eq!(metrics.departures, 1, "4 uploads complete 4 pieces");
        assert_eq!(metrics.completions[0].acquisition_rounds, vec![1, 2, 3, 4]);
    }
}

#[cfg(test)]
mod block_tests {
    use super::*;
    use crate::config::InitialPieces;
    use crate::SwarmConfig;

    fn block_config(blocks: u32, seed: u64) -> SwarmConfig {
        SwarmConfig::builder()
            .pieces(10)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.5)
            .initial_leechers(10)
            .initial_pieces(InitialPieces::Random { count: 3 })
            .blocks_per_piece(blocks)
            .max_rounds(600)
            .stop_after_completions(10)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_blocks_rejected() {
        assert!(SwarmConfig::builder().blocks_per_piece(0).build().is_err());
    }

    #[test]
    fn block_mode_completes_downloads() {
        let metrics = Swarm::new(block_config(4, 1)).run();
        assert!(metrics.departures >= 10);
        for rec in &metrics.completions {
            assert_eq!(rec.acquisition_rounds.len(), 10);
        }
    }

    #[test]
    fn more_blocks_mean_slower_downloads() {
        let rounds = |blocks| {
            Swarm::new(block_config(blocks, 2))
                .run()
                .mean_download_rounds()
        };
        let fast = rounds(1);
        let slow = rounds(8);
        assert!(
            slow > fast * 2.0,
            "8 blocks/piece ({slow:.1}) should be much slower than 1 ({fast:.1})"
        );
    }

    #[test]
    fn block_mode_keeps_invariants() {
        let mut swarm = Swarm::new(block_config(4, 3));
        for _ in 0..80 {
            swarm.step_round();
            swarm.assert_invariants();
            for id in swarm.alive_ids() {
                let peer = swarm.peer(id);
                for (&piece, &progress) in &peer.partial {
                    assert!(progress < 4, "partial progress must stay below completion");
                    assert!(
                        !peer.have.contains(piece),
                        "held pieces must not linger in partial"
                    );
                }
            }
        }
    }

    #[test]
    fn single_block_matches_legacy_behavior() {
        // blocks_per_piece = 1 must be byte-identical to the original
        // piece-per-round semantics (same RNG consumption).
        let metrics = Swarm::new(block_config(1, 4)).run();
        assert!(metrics.departures >= 10);
        // One piece per connection-round: a download of 10 pieces with up
        // to 3 connections finishes within a handful of rounds.
        assert!(metrics.mean_download_rounds() < 30.0);
    }
}

#[cfg(test)]
mod plan_commit_tests {
    use super::*;
    use crate::config::{InitialPieces, PieceSelection};
    use crate::SwarmConfig;
    use proptest::prelude::*;

    /// A complete textual digest of the model-visible swarm state: every
    /// alive peer's bitfield, topology, credit, and partials, plus the
    /// mutation audit and the replication index. Two runs with equal
    /// digests have made identical exchange decisions.
    fn state_digest(swarm: &Swarm) -> String {
        use std::fmt::Write as _;
        let core = &swarm.core;
        let mut out = String::new();
        for &id in core.tracker.peers() {
            let peer = core.store.peer(id);
            let have: Vec<u32> = peer.have.iter().collect();
            let neighbors: Vec<u64> = peer.neighbors.iter().map(|n| n.seq()).collect();
            let connections: Vec<u64> = peer.connections.iter().map(|n| n.seq()).collect();
            let credit: Vec<(u64, u32)> =
                peer.credit.iter().map(|(k, &v)| (k.seq(), v)).collect();
            writeln!(
                out,
                "peer {} have={:?} nbrs={:?} conns={:?} credit={:?} partial={:?} shaken={} slow={}",
                id.seq(),
                have,
                neighbors,
                connections,
                credit,
                peer.partial,
                peer.shaken,
                peer.slow,
            )
            .unwrap();
        }
        writeln!(out, "audit {:?}", core.audit).unwrap();
        writeln!(out, "replication {:?}", core.replication.counts()).unwrap();
        writeln!(out, "cells {:?}", core.piece_cells.counts()).unwrap();
        out
    }

    fn plan_commit_config(seed: u64, rarest: bool) -> SwarmConfig {
        SwarmConfig::builder()
            .pieces(16)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.0)
            .initial_leechers(24)
            .initial_pieces(InitialPieces::Random { count: 4 })
            .piece_selection(if rarest {
                PieceSelection::RarestFirst
            } else {
                PieceSelection::RandomFirst
            })
            .max_rounds(40)
            .seed(seed)
            .build()
            .unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The sharding theorem behind `--threads`: because every pair
        /// plan draws from a stateless per-pair stream, running the plan
        /// phase on one shard or many must leave the entire store, audit,
        /// replication index, and piece cells identical after any number
        /// of rounds.
        #[test]
        fn one_shard_plan_equals_many_shards(
            seed in any::<u64>(),
            threads in 2u32..9,
            rarest in prop::bool::ANY,
        ) {
            let mut serial = Swarm::new(plan_commit_config(seed, rarest));
            serial.set_threads(1);
            let mut sharded = Swarm::new(plan_commit_config(seed, rarest));
            sharded.set_threads(threads);
            for round in 0..30 {
                serial.step_round();
                sharded.step_round();
                prop_assert_eq!(
                    state_digest(&serial),
                    state_digest(&sharded),
                    "state diverged at round {} with {} threads",
                    round + 1,
                    threads
                );
            }
            serial.assert_invariants();
            sharded.assert_invariants();
        }
    }

    /// The same equivalence on the metrics a full threaded run reports.
    #[test]
    fn threaded_run_metrics_match_serial() {
        for threads in [2, 4, 8] {
            let mut serial = Swarm::new(plan_commit_config(77, true));
            serial.set_threads(1);
            let mut sharded = Swarm::new(plan_commit_config(77, true));
            sharded.set_threads(threads);
            for _ in 0..40 {
                serial.step_round();
                sharded.step_round();
            }
            assert_eq!(serial.metrics(), sharded.metrics(), "threads={threads}");
        }
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;
    use crate::config::InitialPieces;
    use crate::SwarmConfig;

    #[test]
    fn slow_fraction_validated() {
        assert!(SwarmConfig::builder()
            .slow_peer_fraction(1.5)
            .build()
            .is_err());
        assert!(SwarmConfig::builder()
            .slow_peer_fraction(-0.1)
            .build()
            .is_err());
        assert!(SwarmConfig::builder()
            .slow_peer_fraction(0.5)
            .slow_upload_budget(0)
            .build()
            .is_err());
    }

    #[test]
    fn slow_peers_download_slower() {
        let config = SwarmConfig::builder()
            .pieces(30)
            .max_connections(4)
            .neighbor_set_size(10)
            .arrival_rate(1.5)
            .initial_leechers(20)
            .initial_pieces(InitialPieces::Random { count: 10 })
            .slow_peer_fraction(0.4)
            .slow_upload_budget(1)
            .max_rounds(500)
            .stop_after_completions(120)
            .seed(61)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        let (fast, slow) = metrics.mean_download_rounds_by_class();
        assert!(
            fast.is_finite() && slow.is_finite(),
            "both classes complete"
        );
        assert!(
            slow > fast,
            "strict tit-for-tat makes slow peers slower: fast {fast:.1} vs slow {slow:.1}"
        );
    }

    #[test]
    fn homogeneous_default_has_no_slow_completions() {
        let config = SwarmConfig::builder()
            .pieces(10)
            .max_connections(3)
            .neighbor_set_size(6)
            .arrival_rate(0.5)
            .initial_leechers(10)
            .max_rounds(100)
            .seed(67)
            .build()
            .unwrap();
        let metrics = Swarm::new(config).run();
        assert!(metrics.completions.iter().all(|r| !r.slow));
        let (_, slow_mean) = metrics.mean_download_rounds_by_class();
        assert!(slow_mean.is_nan());
    }
}
