//! The swarm doctor: built-in invariant monitors, sampling harness, and
//! diagnosis-bundle emission.
//!
//! The generic machinery ([`bt_obs::Monitor`], [`bt_obs::MonitorSet`],
//! [`bt_obs::DiagnosisBundle`]) lives in `bt-obs`; this module supplies
//! the swarm-specific half:
//!
//! * [`MonitorSample`] — the state slice captured at the sampling
//!   cadence: audit tallies, piece totals, degrees, the replication
//!   index next to its from-scratch oracle, and per-observer phases;
//! * the built-in monitors — [`PieceConservation`],
//!   [`ReplicationOracle`], [`EntropyCollapse`] (one-club detection per
//!   Zhu & Hajek, arXiv 1110.2753), [`PhaseMonotonic`], and
//!   [`SlotBalance`];
//! * [`SwarmDoctor`] — the harness the engine drives: a flight recorder
//!   of recent checks, a trailing telemetry window, and the bundle
//!   writer that captures forensic context the moment a check fails;
//! * [`FaultSpec`] — seeded fault injection that deliberately corrupts
//!   the swarm mid-run, proving the monitors fire (and giving
//!   `btlab doctor --inject-fault` its demo).
//!
//! Everything here reads state and makes **zero RNG calls**: attaching a
//! doctor leaves a same-seed run byte-identical (locked in by
//! `crates/swarm/tests/determinism.rs`).

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use bt_des::FlightRecorder;
use bt_model::{DownloadState, Phase};
use bt_obs::{DiagnosisBundle, Monitor, MonitorReport, MonitorSet, Violation};

use crate::audit::SwarmAudit;
use crate::engine::SwarmCore;
use crate::selection::replication_counts;
use crate::telemetry::TelemetrySample;

/// One observer peer's state inside a [`MonitorSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverPhase {
    /// Observer peer sequence number.
    pub peer: u64,
    /// Pieces the observer holds.
    pub pieces: u32,
    /// Phase the §3 criteria classify it into right now.
    pub phase: Phase,
}

/// The state slice the monitors judge, captured once per sampled round.
///
/// Capturing is a read-only scan — O(population) plus one
/// [`replication_counts`] rebuild for the oracle — and makes no RNG
/// calls.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSample {
    /// Round the sample was taken.
    pub round: u64,
    /// Leecher population.
    pub population: u64,
    /// Number of pieces `B`.
    pub pieces: u32,
    /// Connection cap `k`.
    pub max_connections: u32,
    /// Total pieces held across all alive peers.
    pub held_total: u64,
    /// Sum of active-connection list lengths (connection endpoints).
    pub degree_sum: u64,
    /// Largest single connection list.
    pub max_degree: u64,
    /// The audit tallies at capture time.
    pub audit: SwarmAudit,
    /// Replication entropy `min(d)/max(d)`.
    pub entropy: f64,
    /// The incrementally maintained replication counts.
    pub replication: Vec<u64>,
    /// The from-scratch rebuild of the same counts (the oracle).
    pub oracle: Vec<u64>,
    /// Observer peers currently alive, with their classified phases.
    pub observers: Vec<ObserverPhase>,
}

impl MonitorSample {
    /// Captures a sample from the core.
    #[must_use]
    pub(crate) fn capture(core: &SwarmCore) -> MonitorSample {
        let mut held_total = 0u64;
        let mut degree_sum = 0u64;
        let mut max_degree = 0u64;
        let obs_lo = u64::from(core.config.observe_from);
        let obs_hi = obs_lo + u64::from(core.config.observers);
        let mut observers = Vec::new();
        for &id in core.tracker.peers() {
            let peer = core.store.peer(id);
            held_total += u64::from(peer.have.count());
            let degree = peer.connections.len() as u64;
            degree_sum += degree;
            max_degree = max_degree.max(degree);
            if (obs_lo..obs_hi).contains(&id.seq()) {
                let pieces_held = peer.have.count();
                let connections = peer.connections.len() as u32;
                let potential = core.potential_size(id);
                let state = DownloadState::new(connections, pieces_held, potential);
                observers.push(ObserverPhase {
                    peer: id.seq(),
                    pieces: pieces_held,
                    phase: Phase::classify(state, core.config.pieces),
                });
            }
        }
        let oracle = replication_counts(
            core.config.pieces,
            core.tracker.peers().iter().map(|&id| &core.store.peer(id).have),
        );
        MonitorSample {
            round: core.round,
            population: core.tracker.len() as u64,
            pieces: core.config.pieces,
            max_connections: core.config.max_connections,
            held_total,
            degree_sum,
            max_degree,
            audit: core.audit,
            entropy: core.replication.entropy(),
            replication: core.replication.counts().to_vec(),
            oracle,
            observers,
        }
    }
}

fn violation(monitor: &'static str, sample: &MonitorSample, detail: String) -> Violation {
    Violation {
        monitor: monitor.to_string(),
        round: sample.round,
        detail,
        subjects: Vec::new(),
    }
}

/// Pieces held must equal pieces granted minus pieces carried away —
/// the audit identity every legitimate mutation path preserves. A piece
/// that appears in a bitfield without passing through
/// [`SwarmCore::acquire_piece`] / [`SwarmCore::receive_block`] (or
/// vanishes without a departure) breaks it.
#[derive(Debug, Default)]
pub struct PieceConservation;

impl Monitor<MonitorSample> for PieceConservation {
    fn name(&self) -> &'static str {
        "piece-conservation"
    }

    fn check(&mut self, sample: &MonitorSample) -> Vec<Violation> {
        let expected = sample.audit.expected_held();
        if sample.held_total == expected {
            return Vec::new();
        }
        vec![violation(
            self.name(),
            sample,
            format!(
                "peers hold {} pieces but the audit accounts for {} \
                 (acquired {} − departed {})",
                sample.held_total,
                expected,
                sample.audit.pieces_acquired,
                sample.audit.pieces_departed
            ),
        )]
    }
}

/// The incrementally maintained [`crate::ReplicationIndex`] must agree
/// with a from-scratch rebuild over all alive bitfields (its
/// property-test oracle, checked continuously at runtime).
#[derive(Debug, Default)]
pub struct ReplicationOracle;

impl Monitor<MonitorSample> for ReplicationOracle {
    fn name(&self) -> &'static str {
        "replication-oracle"
    }

    fn check(&mut self, sample: &MonitorSample) -> Vec<Violation> {
        if sample.replication == sample.oracle {
            return Vec::new();
        }
        let divergent: Vec<u64> = sample
            .replication
            .iter()
            .zip(&sample.oracle)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(p, _)| p as u64)
            .take(8)
            .collect();
        let first = divergent.first().copied().unwrap_or(0) as usize;
        let mut v = violation(
            self.name(),
            sample,
            format!(
                "replication index diverged from the rebuild on {} piece(s); \
                 first: piece {} has index {} vs oracle {}",
                sample
                    .replication
                    .iter()
                    .zip(&sample.oracle)
                    .filter(|(a, b)| a != b)
                    .count(),
                first,
                sample.replication.get(first).copied().unwrap_or(0),
                sample.oracle.get(first).copied().unwrap_or(0),
            ),
        );
        v.subjects = divergent;
        vec![v]
    }
}

/// Entropy floor / one-club detection (Zhu & Hajek, arXiv 1110.2753):
/// once the swarm has been healthy, replication entropy `min(d)/max(d)`
/// dropping below the floor with a non-trivial population means
/// availability mass has collapsed onto one piece set. Fires once per
/// collapse episode, re-arming when entropy recovers.
#[derive(Debug)]
pub struct EntropyCollapse {
    /// Entropy below this value counts as collapsed.
    pub floor: f64,
    /// Populations below this are ignored (endgame noise).
    pub min_population: u64,
    seen_healthy: bool,
    in_violation: bool,
}

impl EntropyCollapse {
    /// A detector with the given floor and population threshold.
    #[must_use]
    pub fn new(floor: f64, min_population: u64) -> Self {
        EntropyCollapse {
            floor,
            min_population,
            seen_healthy: false,
            in_violation: false,
        }
    }
}

impl Monitor<MonitorSample> for EntropyCollapse {
    fn name(&self) -> &'static str {
        "entropy-collapse"
    }

    fn check(&mut self, sample: &MonitorSample) -> Vec<Violation> {
        if sample.population < self.min_population {
            return Vec::new();
        }
        if sample.entropy >= self.floor {
            self.seen_healthy = true;
            self.in_violation = false;
            return Vec::new();
        }
        // Below the floor. Startup skew (before the swarm was ever
        // healthy) is expected — §6's skewed-start experiments begin
        // there deliberately.
        if !self.seen_healthy || self.in_violation {
            return Vec::new();
        }
        self.in_violation = true;
        vec![violation(
            self.name(),
            sample,
            format!(
                "entropy {:.4} fell below floor {:.4} at population {} \
                 (one-club collapse)",
                sample.entropy, self.floor, sample.population
            ),
        )]
    }
}

/// Tracked history of one observer for [`PhaseMonotonic`].
#[derive(Debug, Clone, Copy)]
struct ObserverTrack {
    last_pieces: u32,
    left_bootstrap: bool,
}

/// Observer downloads must progress monotonically: pieces held never
/// decrease, and once an observer has left the bootstrap phase it must
/// not be classified as bootstrap again (steady-state must not regress
/// to flash-crowd). Oscillation between the efficient and last-download
/// phases is legitimate — the potential set can refill when new peers
/// arrive — so it is deliberately not flagged.
#[derive(Debug, Default)]
pub struct PhaseMonotonic {
    tracks: BTreeMap<u64, ObserverTrack>,
}

impl Monitor<MonitorSample> for PhaseMonotonic {
    fn name(&self) -> &'static str {
        "phase-monotonic"
    }

    fn check(&mut self, sample: &MonitorSample) -> Vec<Violation> {
        let name = self.name();
        let mut violations = Vec::new();
        for obs in &sample.observers {
            let track = self.tracks.entry(obs.peer).or_insert(ObserverTrack {
                last_pieces: obs.pieces,
                left_bootstrap: false,
            });
            if obs.pieces < track.last_pieces {
                let mut v = violation(
                    name,
                    sample,
                    format!(
                        "observer {} lost pieces: {} -> {}",
                        obs.peer, track.last_pieces, obs.pieces
                    ),
                );
                v.subjects = vec![obs.peer];
                violations.push(v);
            }
            track.last_pieces = track.last_pieces.max(obs.pieces);
            if obs.phase == Phase::Bootstrap {
                if track.left_bootstrap {
                    let mut v = violation(
                        name,
                        sample,
                        format!(
                            "observer {} regressed to the bootstrap phase \
                             with {} pieces",
                            obs.peer, obs.pieces
                        ),
                    );
                    v.subjects = vec![obs.peer];
                    violations.push(v);
                }
            } else {
                track.left_bootstrap = true;
            }
        }
        violations
    }
}

/// Connection-slot accounting must balance: the sum of connection-list
/// lengths equals twice the audit's net open pairs (every pair
/// contributes two endpoints), and no list exceeds the cap `k`. A
/// half-open connection (one side pushed without the reciprocal) shows
/// up as an odd endpoint imbalance.
#[derive(Debug, Default)]
pub struct SlotBalance;

impl Monitor<MonitorSample> for SlotBalance {
    fn name(&self) -> &'static str {
        "slot-balance"
    }

    fn check(&mut self, sample: &MonitorSample) -> Vec<Violation> {
        let mut violations = Vec::new();
        let expected = 2 * sample.audit.expected_connections();
        if sample.degree_sum != expected {
            violations.push(violation(
                self.name(),
                sample,
                format!(
                    "connection endpoints {} != 2 × (opened {} − closed {}) = {}",
                    sample.degree_sum,
                    sample.audit.conn_opened,
                    sample.audit.conn_closed,
                    expected
                ),
            ));
        }
        if sample.max_degree > u64::from(sample.max_connections) {
            violations.push(violation(
                self.name(),
                sample,
                format!(
                    "a peer holds {} connections, exceeding the cap k = {}",
                    sample.max_degree, sample.max_connections
                ),
            ));
        }
        violations
    }
}

/// The standard monitor battery with the given entropy thresholds.
#[must_use]
pub fn default_monitors(entropy_floor: f64, entropy_min_population: u64) -> MonitorSet<MonitorSample> {
    let mut set = MonitorSet::new();
    set.push(Box::new(PieceConservation));
    set.push(Box::new(ReplicationOracle));
    set.push(Box::new(EntropyCollapse::new(
        entropy_floor,
        entropy_min_population,
    )));
    set.push(Box::new(PhaseMonotonic::default()));
    set.push(Box::new(SlotBalance));
    set
}

/// Configuration of a [`SwarmDoctor`].
#[derive(Debug, Clone, PartialEq)]
pub struct DoctorOptions {
    /// Check every `cadence`-th round (zero is normalized to 1).
    pub cadence: u64,
    /// Entropy floor for [`EntropyCollapse`].
    pub entropy_floor: f64,
    /// Minimum population for entropy checks.
    pub entropy_min_population: u64,
    /// Ring capacity of the per-check flight recorder.
    pub flight_capacity: usize,
    /// Trailing telemetry samples retained for the bundle.
    pub trail_capacity: usize,
    /// Where diagnosis bundles land (`<root>/diagnosis-<run_id>/`);
    /// `None` disables bundle emission.
    pub bundle_root: Option<PathBuf>,
    /// Stable identifier of this run, used in the bundle directory name.
    pub run_id: String,
}

impl Default for DoctorOptions {
    fn default() -> Self {
        DoctorOptions {
            cadence: 8,
            entropy_floor: 0.02,
            entropy_min_population: 16,
            flight_capacity: 64,
            trail_capacity: 32,
            bundle_root: None,
            run_id: "run".to_string(),
        }
    }
}

/// One per-check event retained by the doctor's flight recorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoctorFlightEvent {
    /// Round of the check.
    pub round: u64,
    /// Leecher population.
    pub population: u64,
    /// Replication entropy.
    pub entropy: f64,
    /// Total pieces held.
    pub held_total: u64,
    /// Connection endpoints.
    pub degree_sum: u64,
}

/// One peer's state in the bundle's peer slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerSliceEntry {
    /// Peer sequence number.
    pub seq: u64,
    /// Round the peer joined.
    pub joined_round: u64,
    /// Pieces held.
    pub pieces: u32,
    /// Completion fraction.
    pub completion: f64,
    /// Neighbor count.
    pub neighbors: u64,
    /// Active connections.
    pub connections: u64,
    /// Whether the peer has shaken (§7.1).
    pub shaken: bool,
    /// Whether the peer is bandwidth-limited.
    pub slow: bool,
}

/// The `meta.json` document of a diagnosis bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BundleMeta {
    /// Monitor schema version.
    pub schema_version: u32,
    /// Run identifier (the bundle directory suffix).
    pub run_id: String,
    /// Round of the first violating check.
    pub round: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Number of pieces `B`.
    pub pieces: u32,
    /// Connection cap `k`.
    pub max_connections: u32,
    /// Population at capture.
    pub population: u64,
    /// Active pipeline stage names.
    pub pipeline: Vec<String>,
    /// Monitors that were running.
    pub monitors: Vec<String>,
    /// The violations that triggered the bundle.
    pub violations: Vec<Violation>,
    /// Audit tallies at capture.
    pub audit: SwarmAudit,
}

/// Context the engine hands the doctor when a bundle must be emitted:
/// everything the monitors cannot see from the sample alone.
#[derive(Debug)]
pub(crate) struct BundleContext {
    pub seed: u64,
    pub pipeline: Vec<String>,
    pub peers: Vec<PeerSliceEntry>,
    pub profile: Option<bt_obs::ProfileReport>,
}

/// The outcome of a doctored run.
#[derive(Debug, Clone)]
pub struct DoctorReport {
    /// Monitors that ran, in check order.
    pub monitors: Vec<String>,
    /// The accumulated check/violation record.
    pub report: MonitorReport,
    /// Directory of the diagnosis bundle, when one was written.
    pub bundle_dir: Option<PathBuf>,
}

impl DoctorReport {
    /// Whether no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// The runtime harness the engine drives: monitors plus the forensic
/// capture machinery (flight recorder, trailing telemetry, bundles).
pub struct SwarmDoctor {
    options: DoctorOptions,
    set: MonitorSet<MonitorSample>,
    flight: FlightRecorder<DoctorFlightEvent>,
    trail: VecDeque<TelemetrySample>,
    bundle_dir: Option<PathBuf>,
}

impl std::fmt::Debug for SwarmDoctor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwarmDoctor")
            .field("options", &self.options)
            .field("monitors", &self.set.names())
            .field("bundle_dir", &self.bundle_dir)
            .finish_non_exhaustive()
    }
}

impl SwarmDoctor {
    /// A doctor running the standard battery under the given options.
    #[must_use]
    pub fn new(mut options: DoctorOptions) -> Self {
        if options.cadence == 0 {
            options.cadence = 1;
        }
        let set = default_monitors(options.entropy_floor, options.entropy_min_population);
        let flight = FlightRecorder::new(options.flight_capacity);
        SwarmDoctor {
            set,
            flight,
            trail: VecDeque::new(),
            bundle_dir: None,
            options,
        }
    }

    /// A doctor running a custom monitor set (tests, experiments).
    #[must_use]
    pub fn with_monitors(options: DoctorOptions, set: MonitorSet<MonitorSample>) -> Self {
        let mut doctor = SwarmDoctor::new(options);
        doctor.set = set;
        doctor
    }

    /// The sampling options.
    #[must_use]
    pub fn options(&self) -> &DoctorOptions {
        &self.options
    }

    /// Whether `round` is a sampled round.
    #[must_use]
    pub fn due(&self, round: u64) -> bool {
        round.is_multiple_of(self.options.cadence)
    }

    /// Feeds one sampled round through the monitors, returning the fresh
    /// violations. Records the flight event and the trailing telemetry
    /// window as a side effect.
    pub(crate) fn observe(
        &mut self,
        sample: &MonitorSample,
        telemetry: TelemetrySample,
    ) -> Vec<Violation> {
        self.flight.record(DoctorFlightEvent {
            round: sample.round,
            population: sample.population,
            entropy: sample.entropy,
            held_total: sample.held_total,
            degree_sum: sample.degree_sum,
        });
        if self.trail.len() == self.options.trail_capacity.max(1) {
            self.trail.pop_front();
        }
        self.trail.push_back(telemetry);
        self.set.check(sample)
    }

    /// Whether a diagnosis bundle was already written this run.
    #[must_use]
    pub fn bundle_written(&self) -> bool {
        self.bundle_dir.is_some()
    }

    /// Writes the diagnosis bundle for the first violating check:
    /// `meta.json`, `flight.json`, `telemetry.jsonl`, `peers.json`, and
    /// (when profiling is attached) `profile.json`.
    pub(crate) fn emit_bundle(
        &mut self,
        sample: &MonitorSample,
        violations: &[Violation],
        context: &BundleContext,
    ) -> std::io::Result<Option<PathBuf>> {
        let Some(root) = self.options.bundle_root.clone() else {
            return Ok(None);
        };
        let bundle = DiagnosisBundle::create(&root, &self.options.run_id)?;
        let reason = violations
            .first()
            .map_or_else(|| "violation".to_string(), |v| v.monitor.clone());
        let dump = self
            .flight
            .trigger(sample.round, &reason)
            .map(|d| FlightDumpDoc {
                reason: d.reason,
                round: d.tick,
                recorded: d.recorded,
                events: d.events,
            })
            .unwrap_or_else(|| FlightDumpDoc {
                reason,
                round: sample.round,
                recorded: 0,
                events: Vec::new(),
            });
        let meta = BundleMeta {
            schema_version: bt_obs::MONITOR_SCHEMA_VERSION,
            run_id: self.options.run_id.clone(),
            round: sample.round,
            seed: context.seed,
            pieces: sample.pieces,
            max_connections: sample.max_connections,
            population: sample.population,
            pipeline: context.pipeline.clone(),
            monitors: self.set.names().iter().map(|n| (*n).to_string()).collect(),
            violations: self.set.report().violations.clone(),
            audit: sample.audit,
        };
        bundle.write_json("meta.json", &meta)?;
        bundle.write_json("flight.json", &dump)?;
        let trail: Vec<&TelemetrySample> = self.trail.iter().collect();
        bundle.write_jsonl("telemetry.jsonl", &trail)?;
        bundle.write_json("peers.json", &context.peers)?;
        if let Some(profile) = &context.profile {
            bundle.write_json("profile.json", profile)?;
        }
        self.bundle_dir = Some(bundle.dir().to_path_buf());
        Ok(self.bundle_dir.clone())
    }

    /// Consumes the doctor, yielding the run's report.
    #[must_use]
    pub fn finish(self) -> DoctorReport {
        DoctorReport {
            monitors: self.set.names().iter().map(|n| (*n).to_string()).collect(),
            report: self.set.into_report(),
            bundle_dir: self.bundle_dir,
        }
    }
}

/// The `flight.json` document: the recorder dump with doctor naming.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FlightDumpDoc {
    reason: String,
    round: u64,
    recorded: u64,
    events: Vec<DoctorFlightEvent>,
}

/// The kinds of deliberate corruption [`FaultSpec`] can inject.
///
/// Each targets a specific invariant so the seeded-fault tests can prove
/// every built-in monitor actually fires:
///
/// * [`FaultKind::UnaccountedPiece`] sets a bitfield bit directly,
///   bypassing both the replication index and the audit —
///   `piece-conservation` and `replication-oracle` fire;
/// * [`FaultKind::IndexDrift`] bumps the replication index without any
///   matching grant — only `replication-oracle` fires;
/// * [`FaultKind::HalfOpenConnection`] pushes a one-sided connection —
///   `slot-balance` fires on the odd endpoint imbalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Grant a peer a piece behind the engine's back.
    UnaccountedPiece,
    /// Bump the replication index with no matching possession.
    IndexDrift,
    /// Open a connection on one side only.
    HalfOpenConnection,
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "unaccounted-piece" => Ok(FaultKind::UnaccountedPiece),
            "index-drift" => Ok(FaultKind::IndexDrift),
            "half-open-connection" => Ok(FaultKind::HalfOpenConnection),
            other => Err(format!(
                "unknown fault kind `{other}`; use unaccounted-piece, \
                 index-drift, or half-open-connection"
            )),
        }
    }
}

/// A scheduled fault: corrupt the swarm at the end of `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Round after whose stages the fault is applied.
    pub round: u64,
    /// What to corrupt.
    pub kind: FaultKind,
}

/// Builds the bundle's peer slice: the violation subjects first, then
/// alive peers in join order up to `cap` entries.
pub(crate) fn peer_slice(
    core: &SwarmCore,
    subjects: &[u64],
    cap: usize,
) -> Vec<PeerSliceEntry> {
    let mut seqs: Vec<u64> = Vec::new();
    for &s in subjects {
        if !seqs.contains(&s) {
            seqs.push(s);
        }
    }
    for &id in core.tracker.peers() {
        if seqs.len() >= cap {
            break;
        }
        if !seqs.contains(&id.seq()) {
            seqs.push(id.seq());
        }
    }
    let mut out = Vec::new();
    for &id in core.tracker.peers() {
        if !seqs.contains(&id.seq()) {
            continue;
        }
        let peer = core.store.peer(id);
        out.push(PeerSliceEntry {
            seq: id.seq(),
            joined_round: peer.joined_round,
            pieces: peer.have.count(),
            completion: peer.completion(),
            neighbors: peer.neighbors.len() as u64,
            connections: peer.connections.len() as u64,
            shaken: peer.shaken,
            slow: peer.slow,
        });
        if out.len() >= cap {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64) -> MonitorSample {
        MonitorSample {
            round,
            population: 20,
            pieces: 10,
            max_connections: 3,
            held_total: 0,
            degree_sum: 0,
            max_degree: 0,
            audit: SwarmAudit::default(),
            entropy: 1.0,
            replication: vec![0; 10],
            oracle: vec![0; 10],
            observers: Vec::new(),
        }
    }

    #[test]
    fn conservation_fires_on_unaccounted_pieces() {
        let mut m = PieceConservation;
        let mut s = sample(8);
        s.held_total = 5;
        s.audit.pieces_acquired = 5;
        assert!(m.check(&s).is_empty());
        s.held_total = 6;
        let v = m.check(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].monitor, "piece-conservation");
        assert!(v[0].detail.contains("hold 6"), "{}", v[0].detail);
    }

    #[test]
    fn oracle_fires_on_divergence_with_subjects() {
        let mut m = ReplicationOracle;
        let mut s = sample(8);
        assert!(m.check(&s).is_empty());
        s.replication[3] = 7;
        let v = m.check(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].subjects, vec![3]);
        assert!(v[0].detail.contains("piece 3"), "{}", v[0].detail);
    }

    #[test]
    fn entropy_latches_healthy_then_fires_once_per_episode() {
        let mut m = EntropyCollapse::new(0.1, 10);
        // Startup skew: below floor before ever being healthy — ignored.
        let mut s = sample(0);
        s.entropy = 0.01;
        assert!(m.check(&s).is_empty());
        // Healthy arms the latch.
        s.entropy = 0.8;
        assert!(m.check(&s).is_empty());
        // Collapse fires exactly once for the episode.
        s.entropy = 0.01;
        assert_eq!(m.check(&s).len(), 1);
        assert!(m.check(&s).is_empty(), "episode already reported");
        // Recovery re-arms; the next collapse is a fresh episode.
        s.entropy = 0.5;
        assert!(m.check(&s).is_empty());
        s.entropy = 0.0;
        assert_eq!(m.check(&s).len(), 1);
        // Tiny populations are ignored entirely.
        s.population = 3;
        s.entropy = 0.0;
        assert!(m.check(&s).is_empty());
    }

    #[test]
    fn phase_monotonic_allows_efficient_lastdownload_oscillation() {
        let mut m = PhaseMonotonic::default();
        let mut s = sample(8);
        s.observers = vec![ObserverPhase {
            peer: 4,
            pieces: 3,
            phase: Phase::Efficient,
        }];
        assert!(m.check(&s).is_empty());
        s.observers[0].phase = Phase::LastDownload;
        s.observers[0].pieces = 5;
        assert!(m.check(&s).is_empty());
        s.observers[0].phase = Phase::Efficient;
        s.observers[0].pieces = 6;
        assert!(
            m.check(&s).is_empty(),
            "last-download -> efficient is legitimate (potential refill)"
        );
    }

    #[test]
    fn phase_monotonic_fires_on_bootstrap_regression_and_piece_loss() {
        let mut m = PhaseMonotonic::default();
        let mut s = sample(8);
        s.observers = vec![ObserverPhase {
            peer: 4,
            pieces: 5,
            phase: Phase::Efficient,
        }];
        assert!(m.check(&s).is_empty());
        s.observers[0].phase = Phase::Bootstrap;
        s.observers[0].pieces = 5;
        let v = m.check(&s);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("regressed"), "{}", v[0].detail);
        s.observers[0].phase = Phase::Efficient;
        s.observers[0].pieces = 2;
        let v = m.check(&s);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("lost pieces"), "{}", v[0].detail);
    }

    #[test]
    fn slot_balance_fires_on_imbalance_and_cap_breach() {
        let mut m = SlotBalance;
        let mut s = sample(8);
        s.audit.conn_opened = 4;
        s.audit.conn_closed = 1;
        s.degree_sum = 6;
        s.max_degree = 3;
        assert!(m.check(&s).is_empty());
        s.degree_sum = 7;
        assert_eq!(m.check(&s).len(), 1, "odd endpoint imbalance");
        s.degree_sum = 6;
        s.max_degree = 4;
        let v = m.check(&s);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("cap"), "{}", v[0].detail);
    }

    #[test]
    fn default_battery_names() {
        let set = default_monitors(0.02, 16);
        assert_eq!(
            set.names(),
            vec![
                "piece-conservation",
                "replication-oracle",
                "entropy-collapse",
                "phase-monotonic",
                "slot-balance"
            ]
        );
    }

    #[test]
    fn fault_kind_parses() {
        assert_eq!(
            "unaccounted-piece".parse::<FaultKind>().unwrap(),
            FaultKind::UnaccountedPiece
        );
        assert_eq!(
            "index-drift".parse::<FaultKind>().unwrap(),
            FaultKind::IndexDrift
        );
        assert_eq!(
            "half-open-connection".parse::<FaultKind>().unwrap(),
            FaultKind::HalfOpenConnection
        );
        assert!("bogus".parse::<FaultKind>().is_err());
    }

    #[test]
    fn doctor_cadence_normalized_and_due() {
        let doctor = SwarmDoctor::new(DoctorOptions {
            cadence: 0,
            ..DoctorOptions::default()
        });
        assert!(doctor.due(1));
        let doctor = SwarmDoctor::new(DoctorOptions {
            cadence: 4,
            ..DoctorOptions::default()
        });
        assert!(doctor.due(8));
        assert!(!doctor.due(9));
    }
}
