//! Reservoir-sampled peer cohorts with binary-framed lifecycle traces.
//!
//! Full per-peer tracing is O(population) per round — unaffordable at
//! the 50k/500k populations the roadmap targets. A *cohort* is a small,
//! fixed-size, uniformly random sample of the arrival stream whose
//! members get complete lifecycle traces (join, piece acquisitions,
//! choke/slot churn, phase transitions, departure) at O(cohort) cost
//! per round, independent of population.
//!
//! # Determinism contract
//!
//! Membership is decided by Algorithm R reservoir sampling over the
//! arrival sequence, driven by a private SplitMix64 generator seeded
//! from the run seed. The sink makes **zero** calls into the model's
//! RNG stream, so attaching a cohort never changes what the simulation
//! does — same-seed runs with and without cohort tracing produce
//! byte-identical model telemetry (enforced by
//! `crates/swarm/tests/determinism.rs`), and same-seed cohort streams
//! are themselves byte-identical.
//!
//! # Stream format
//!
//! A `.cohort` stream is a 24-byte header (magic, schema version, run
//! seed, cohort size) followed by fixed-width little-endian records,
//! one per event, each led by a 1-byte tag. [`read_cohort`] parses a
//! stream back; [`write_jsonl`] re-exports it as JSON lines for ad-hoc
//! tooling.

// bt-lint: allow-file(panic-index) — every index below is structurally
// bounded: encode writes fixed-width frames into a 32-byte scratch
// sized for the largest record, and decode slices only after the
// `at + 1 + len > bytes.len()` guard with `len` from `payload_len`.
// Malformed input surfaces as `CohortError::Parse`, never a panic;
// the round-trip and truncation tests below exercise both paths.
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

/// Magic bytes opening every `.cohort` stream.
pub const COHORT_MAGIC: [u8; 8] = *b"BTCOHORT";

/// Schema version of the `.cohort` framing.
pub const COHORT_SCHEMA_VERSION: u32 = 1;

/// Salt mixed into the run seed so the cohort's private RNG stream is
/// decorrelated from every model stream derived from the same seed.
const COHORT_STREAM_SALT: u64 = 0xc0_0b_17_5a_3d_9e_44_21;

/// Cohort configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortOptions {
    /// Reservoir size: how many peers are traced at any time.
    pub size: u32,
    /// Run seed the private membership RNG derives from.
    pub seed: u64,
}

/// Stream header of a `.cohort` trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortMeta {
    /// Framing schema version.
    pub schema_version: u32,
    /// Run seed recorded at capture time.
    pub seed: u64,
    /// Configured reservoir size.
    pub size: u32,
}

/// Where an acquired piece came from.
pub mod acquire_source {
    /// Initial endowment at spawn.
    pub const ENDOW: u8 = 0;
    /// Bootstrap first-piece injection.
    pub const BOOTSTRAP: u8 = 1;
    /// Origin-seed upload.
    pub const SEED: u8 = 2;
    /// Tit-for-tat exchange.
    pub const EXCHANGE: u8 = 3;

    /// Human-readable name of a source tag.
    #[must_use]
    pub fn name(source: u8) -> &'static str {
        match source {
            ENDOW => "endow",
            BOOTSTRAP => "bootstrap",
            SEED => "seed",
            EXCHANGE => "exchange",
            _ => "unknown",
        }
    }
}

/// A peer entered the cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortJoin {
    /// Round of the join.
    pub round: u64,
    /// Peer sequence number.
    pub peer: u64,
}

/// A traced peer was displaced by reservoir replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortEvict {
    /// Round of the eviction.
    pub round: u64,
    /// Peer sequence number whose trace ends here.
    pub peer: u64,
}

/// A traced peer acquired a whole piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortAcquire {
    /// Round of the acquisition.
    pub round: u64,
    /// Peer sequence number.
    pub peer: u64,
    /// Piece index acquired.
    pub piece: u32,
    /// Source channel (see [`acquire_source`]).
    pub source: u8,
}

/// A connection slot of a traced peer opened or closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortSlot {
    /// Round of the slot change.
    pub round: u64,
    /// Traced peer sequence number.
    pub peer: u64,
    /// The other endpoint's sequence number.
    pub other: u64,
    /// `true` when the connection opened, `false` when it closed.
    pub opened: bool,
}

/// A traced peer transitioned between download phases (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortPhase {
    /// Round of the transition.
    pub round: u64,
    /// Peer sequence number.
    pub peer: u64,
    /// New phase ordinal (0 bootstrap, 1 efficient, 2 last-download,
    /// 3 done).
    pub phase: u8,
}

/// Per-round observation of a traced peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortObserve {
    /// Round observed.
    pub round: u64,
    /// Peer sequence number.
    pub peer: u64,
    /// Pieces held.
    pub pieces: u32,
    /// Active connections.
    pub connections: u32,
}

/// A traced peer shook its neighbor set (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortShake {
    /// Round of the shake.
    pub round: u64,
    /// Peer sequence number.
    pub peer: u64,
}

/// A traced peer departed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortDepart {
    /// Round of the departure.
    pub round: u64,
    /// Peer sequence number.
    pub peer: u64,
    /// Pieces held at departure.
    pub pieces: u32,
}

/// A traced peer received tracker handout entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CohortHandout {
    /// Round of the handout.
    pub round: u64,
    /// Peer sequence number.
    pub peer: u64,
    /// Entries delivered.
    pub entries: u32,
}

/// One record of a cohort trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CohortEvent {
    /// Cohort membership began.
    Join(CohortJoin),
    /// Trace ended by reservoir replacement.
    Evict(CohortEvict),
    /// Whole-piece acquisition.
    Acquire(CohortAcquire),
    /// Connection slot opened/closed.
    Slot(CohortSlot),
    /// Download-phase transition.
    Phase(CohortPhase),
    /// Per-round state observation.
    Observe(CohortObserve),
    /// Neighbor-set shake.
    Shake(CohortShake),
    /// Departure.
    Depart(CohortDepart),
    /// Tracker handout received.
    Handout(CohortHandout),
}

impl CohortEvent {
    /// Sequence number of the peer the event concerns.
    #[must_use]
    pub fn peer(&self) -> u64 {
        match self {
            CohortEvent::Join(e) => e.peer,
            CohortEvent::Evict(e) => e.peer,
            CohortEvent::Acquire(e) => e.peer,
            CohortEvent::Slot(e) => e.peer,
            CohortEvent::Phase(e) => e.peer,
            CohortEvent::Observe(e) => e.peer,
            CohortEvent::Shake(e) => e.peer,
            CohortEvent::Depart(e) => e.peer,
            CohortEvent::Handout(e) => e.peer,
        }
    }

    /// Round the event occurred in.
    #[must_use]
    pub fn round(&self) -> u64 {
        match self {
            CohortEvent::Join(e) => e.round,
            CohortEvent::Evict(e) => e.round,
            CohortEvent::Acquire(e) => e.round,
            CohortEvent::Slot(e) => e.round,
            CohortEvent::Phase(e) => e.round,
            CohortEvent::Observe(e) => e.round,
            CohortEvent::Shake(e) => e.round,
            CohortEvent::Depart(e) => e.round,
            CohortEvent::Handout(e) => e.round,
        }
    }
}

/// Record tags of the binary framing.
mod tag {
    pub const JOIN: u8 = 1;
    pub const EVICT: u8 = 2;
    pub const ACQUIRE: u8 = 3;
    pub const SLOT: u8 = 4;
    pub const PHASE: u8 = 5;
    pub const OBSERVE: u8 = 6;
    pub const SHAKE: u8 = 7;
    pub const DEPART: u8 = 8;
    pub const HANDOUT: u8 = 9;
}

/// Errors reading a `.cohort` stream.
#[derive(Debug)]
pub enum CohortError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The stream is malformed at `offset`.
    Parse {
        /// Byte offset of the problem.
        offset: u64,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for CohortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CohortError::Io(e) => write!(f, "cohort stream I/O error: {e}"),
            CohortError::Parse { offset, detail } => {
                write!(f, "cohort stream malformed at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for CohortError {}

impl From<std::io::Error> for CohortError {
    fn from(e: std::io::Error) -> CohortError {
        CohortError::Io(e)
    }
}

/// Private SplitMix64 step — the cohort's own RNG stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The live recorder behind an enabled [`CohortSink`].
struct CohortRecorder {
    size: u32,
    rng: u64,
    arrivals: u64,
    /// Reservoir slots (peer seq per slot), for Algorithm R replacement.
    slots: Vec<u64>,
    /// Currently traced peers (reservoir members not yet departed).
    members: BTreeSet<u64>,
    /// Last emitted phase per traced peer, to dedup transitions.
    last_phase: BTreeMap<u64, u8>,
    events: u64,
    /// `None` after a write error: tracing drops the stream, the model
    /// run continues.
    writer: Option<Box<dyn Write + Send>>,
}

impl CohortRecorder {
    fn emit(&mut self, event: &CohortEvent) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        let mut frame = [0u8; 32];
        let len = encode_event(event, &mut frame);
        if let Err(e) = writer.write_all(&frame[..len]) {
            tracing::warn!(target: "bt_obs::cohort", error = e.to_string(); "cohort writer failed; tracing stops");
            self.writer = None;
            return;
        }
        self.events += 1;
    }
}

/// Zero-cost-when-disabled cohort recorder handle, following the
/// [`crate::ProfileSink`] pattern: the engine and every round stage
/// call the hooks unconditionally; a disabled sink is a no-op.
#[derive(Default)]
pub struct CohortSink {
    inner: Option<Box<CohortRecorder>>,
}

impl std::fmt::Debug for CohortSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CohortSink")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl CohortSink {
    /// A disabled sink: every hook is a no-op.
    #[must_use]
    pub fn disabled() -> CohortSink {
        CohortSink::default()
    }

    /// An enabled sink writing the binary stream header immediately.
    #[must_use]
    pub fn enabled(options: CohortOptions, mut writer: Box<dyn Write + Send>) -> CohortSink {
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(&COHORT_MAGIC);
        header.extend_from_slice(&COHORT_SCHEMA_VERSION.to_le_bytes());
        header.extend_from_slice(&options.seed.to_le_bytes());
        header.extend_from_slice(&options.size.to_le_bytes());
        let writer = match writer.write_all(&header) {
            Ok(()) => Some(writer),
            Err(e) => {
                tracing::warn!(target: "bt_obs::cohort", error = e.to_string(); "cohort header write failed; tracing disabled");
                None
            }
        };
        CohortSink {
            inner: Some(Box::new(CohortRecorder {
                size: options.size,
                rng: options.seed ^ COHORT_STREAM_SALT,
                arrivals: 0,
                slots: Vec::with_capacity(options.size as usize),
                members: BTreeSet::new(),
                last_phase: BTreeMap::new(),
                events: 0,
                writer,
            })),
        }
    }

    /// Whether a recorder is attached.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `peer` is currently traced. Fast `false` when disabled —
    /// stages use this to skip event construction entirely.
    #[inline]
    #[must_use]
    pub fn is_member(&self, peer: u64) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|r| r.members.contains(&peer))
    }

    /// Offers an arriving peer to the reservoir (Algorithm R). Call
    /// exactly once per arrival, in arrival order; the RNG draw count
    /// is a pure function of the arrival index, keeping membership
    /// deterministic.
    #[inline]
    pub fn offer_join(&mut self, round: u64, peer: u64) {
        let Some(r) = self.inner.as_deref_mut() else {
            return;
        };
        let t = r.arrivals;
        r.arrivals += 1;
        if r.size == 0 {
            return;
        }
        if r.slots.len() < r.size as usize {
            r.slots.push(peer);
        } else {
            let j = splitmix64(&mut r.rng) % (t + 1);
            if j >= u64::from(r.size) {
                return;
            }
            #[allow(clippy::cast_possible_truncation)]
            let evicted = std::mem::replace(&mut r.slots[j as usize], peer);
            if r.members.remove(&evicted) {
                r.last_phase.remove(&evicted);
                r.emit(&CohortEvent::Evict(CohortEvict {
                    round,
                    peer: evicted,
                }));
            }
        }
        r.members.insert(peer);
        r.emit(&CohortEvent::Join(CohortJoin { round, peer }));
    }

    /// Records a piece acquisition of a traced peer.
    #[inline]
    pub fn acquire(&mut self, round: u64, peer: u64, piece: u32, source: u8) {
        let Some(r) = self.inner.as_deref_mut() else {
            return;
        };
        if r.members.contains(&peer) {
            r.emit(&CohortEvent::Acquire(CohortAcquire {
                round,
                peer,
                piece,
                source,
            }));
        }
    }

    /// Records a slot open/close on a traced peer.
    #[inline]
    pub fn slot(&mut self, round: u64, peer: u64, other: u64, opened: bool) {
        let Some(r) = self.inner.as_deref_mut() else {
            return;
        };
        if r.members.contains(&peer) {
            r.emit(&CohortEvent::Slot(CohortSlot {
                round,
                peer,
                other,
                opened,
            }));
        }
    }

    /// Records the phase of a traced peer, emitting a transition event
    /// only when it changed since the last call.
    #[inline]
    pub fn phase(&mut self, round: u64, peer: u64, phase: u8) {
        let Some(r) = self.inner.as_deref_mut() else {
            return;
        };
        if !r.members.contains(&peer) {
            return;
        }
        if r.last_phase.insert(peer, phase) != Some(phase) {
            r.emit(&CohortEvent::Phase(CohortPhase { round, peer, phase }));
        }
    }

    /// Records the per-round observation of a traced peer.
    #[inline]
    pub fn observe(&mut self, round: u64, peer: u64, pieces: u32, connections: u32) {
        let Some(r) = self.inner.as_deref_mut() else {
            return;
        };
        if r.members.contains(&peer) {
            r.emit(&CohortEvent::Observe(CohortObserve {
                round,
                peer,
                pieces,
                connections,
            }));
        }
    }

    /// Records a neighbor-set shake of a traced peer.
    #[inline]
    pub fn shake(&mut self, round: u64, peer: u64) {
        let Some(r) = self.inner.as_deref_mut() else {
            return;
        };
        if r.members.contains(&peer) {
            r.emit(&CohortEvent::Shake(CohortShake { round, peer }));
        }
    }

    /// Records a tracker handout delivered to a traced peer.
    #[inline]
    pub fn handout(&mut self, round: u64, peer: u64, entries: u32) {
        let Some(r) = self.inner.as_deref_mut() else {
            return;
        };
        if r.members.contains(&peer) {
            r.emit(&CohortEvent::Handout(CohortHandout {
                round,
                peer,
                entries,
            }));
        }
    }

    /// Records the departure of a traced peer and ends its trace. The
    /// reservoir slot stays occupied so Algorithm R's uniformity over
    /// the whole arrival stream is preserved.
    #[inline]
    pub fn depart(&mut self, round: u64, peer: u64, pieces: u32) {
        let Some(r) = self.inner.as_deref_mut() else {
            return;
        };
        if r.members.remove(&peer) {
            r.last_phase.remove(&peer);
            r.emit(&CohortEvent::Depart(CohortDepart {
                round,
                peer,
                pieces,
            }));
        }
    }

    /// Events written so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.events)
    }

    /// Currently traced peer sequence numbers.
    #[must_use]
    pub fn members(&self) -> Vec<u64> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |r| r.members.iter().copied().collect())
    }

    /// Flushes the underlying writer.
    pub fn finish(&mut self) {
        if let Some(r) = self.inner.as_deref_mut() {
            if let Some(writer) = r.writer.as_mut() {
                if let Err(e) = writer.flush() {
                    tracing::warn!(target: "bt_obs::cohort", error = e.to_string(); "cohort stream flush failed");
                }
            }
        }
    }
}

/// Encodes one event into `frame`, returning the frame length.
fn encode_event(event: &CohortEvent, frame: &mut [u8; 32]) -> usize {
    let mut n = 0usize;
    let mut put = |bytes: &[u8]| {
        frame[n..n + bytes.len()].copy_from_slice(bytes);
        n += bytes.len();
    };
    match event {
        CohortEvent::Join(e) => {
            put(&[tag::JOIN]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
        }
        CohortEvent::Evict(e) => {
            put(&[tag::EVICT]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
        }
        CohortEvent::Acquire(e) => {
            put(&[tag::ACQUIRE]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
            put(&e.piece.to_le_bytes());
            put(&[e.source]);
        }
        CohortEvent::Slot(e) => {
            put(&[tag::SLOT]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
            put(&e.other.to_le_bytes());
            put(&[u8::from(e.opened)]);
        }
        CohortEvent::Phase(e) => {
            put(&[tag::PHASE]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
            put(&[e.phase]);
        }
        CohortEvent::Observe(e) => {
            put(&[tag::OBSERVE]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
            put(&e.pieces.to_le_bytes());
            put(&e.connections.to_le_bytes());
        }
        CohortEvent::Shake(e) => {
            put(&[tag::SHAKE]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
        }
        CohortEvent::Depart(e) => {
            put(&[tag::DEPART]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
            put(&e.pieces.to_le_bytes());
        }
        CohortEvent::Handout(e) => {
            put(&[tag::HANDOUT]);
            put(&e.round.to_le_bytes());
            put(&e.peer.to_le_bytes());
            put(&e.entries.to_le_bytes());
        }
    }
    n
}

/// Payload length (after the tag byte) of each record kind.
fn payload_len(t: u8) -> Option<usize> {
    match t {
        tag::JOIN | tag::EVICT | tag::SHAKE => Some(16),
        tag::ACQUIRE => Some(21),
        tag::SLOT => Some(25),
        tag::PHASE => Some(17),
        tag::OBSERVE => Some(24),
        tag::DEPART | tag::HANDOUT => Some(20),
        _ => None,
    }
}

fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

/// Parses a `.cohort` stream: header followed by every event.
///
/// # Errors
///
/// [`CohortError::Io`] on reader failure, [`CohortError::Parse`] on bad
/// magic, unknown schema version or record tag, or mid-record
/// truncation (with the byte offset of the damage).
pub fn read_cohort<R: Read>(mut reader: R) -> Result<(CohortMeta, Vec<CohortEvent>), CohortError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() < 24 {
        return Err(CohortError::Parse {
            offset: bytes.len() as u64,
            detail: format!("stream too short for header ({} of 24 bytes)", bytes.len()),
        });
    }
    if bytes[..8] != COHORT_MAGIC {
        return Err(CohortError::Parse {
            offset: 0,
            detail: "bad magic (not a .cohort stream)".to_string(),
        });
    }
    let schema_version = le_u32(&bytes[8..12]);
    if schema_version != COHORT_SCHEMA_VERSION {
        return Err(CohortError::Parse {
            offset: 8,
            detail: format!(
                "schema version {schema_version} unsupported (expected {COHORT_SCHEMA_VERSION})"
            ),
        });
    }
    let meta = CohortMeta {
        schema_version,
        seed: le_u64(&bytes[12..20]),
        size: le_u32(&bytes[20..24]),
    };
    let mut events = Vec::new();
    let mut at = 24usize;
    while at < bytes.len() {
        let t = bytes[at];
        let Some(len) = payload_len(t) else {
            return Err(CohortError::Parse {
                offset: at as u64,
                detail: format!("unknown record tag {t}"),
            });
        };
        if at + 1 + len > bytes.len() {
            return Err(CohortError::Parse {
                offset: at as u64,
                detail: format!(
                    "truncated record (tag {t} needs {len} payload bytes, {} remain)",
                    bytes.len() - at - 1
                ),
            });
        }
        let p = &bytes[at + 1..at + 1 + len];
        let (round, peer) = (le_u64(&p[0..8]), le_u64(&p[8..16]));
        let event = match t {
            tag::JOIN => CohortEvent::Join(CohortJoin { round, peer }),
            tag::EVICT => CohortEvent::Evict(CohortEvict { round, peer }),
            tag::ACQUIRE => CohortEvent::Acquire(CohortAcquire {
                round,
                peer,
                piece: le_u32(&p[16..20]),
                source: p[20],
            }),
            tag::SLOT => CohortEvent::Slot(CohortSlot {
                round,
                peer,
                other: le_u64(&p[16..24]),
                opened: p[24] != 0,
            }),
            tag::PHASE => CohortEvent::Phase(CohortPhase {
                round,
                peer,
                phase: p[16],
            }),
            tag::OBSERVE => CohortEvent::Observe(CohortObserve {
                round,
                peer,
                pieces: le_u32(&p[16..20]),
                connections: le_u32(&p[20..24]),
            }),
            tag::SHAKE => CohortEvent::Shake(CohortShake { round, peer }),
            tag::DEPART => CohortEvent::Depart(CohortDepart {
                round,
                peer,
                pieces: le_u32(&p[16..20]),
            }),
            tag::HANDOUT => CohortEvent::Handout(CohortHandout {
                round,
                peer,
                entries: le_u32(&p[16..20]),
            }),
            _ => {
                return Err(CohortError::Parse {
                    offset: at as u64,
                    detail: format!("unknown record tag {t}"),
                })
            }
        };
        events.push(event);
        at += 1 + len;
    }
    Ok((meta, events))
}

/// Exports a parsed cohort trace as JSON lines: one meta line followed
/// by one line per event.
///
/// # Errors
///
/// Propagates serialization and write failures.
pub fn write_jsonl<W: Write>(
    meta: &CohortMeta,
    events: &[CohortEvent],
    mut writer: W,
) -> std::io::Result<()> {
    let head = serde_json::to_string(meta)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(writer, "{head}")?;
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Shared in-memory sink readable after the recorder owns the box.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> Vec<u8> {
            self.0.lock().expect("buffer lock").clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buffer lock").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sink(size: u32, seed: u64) -> (CohortSink, SharedBuf) {
        let buf = SharedBuf::default();
        let sink = CohortSink::enabled(
            CohortOptions { size, seed },
            Box::new(buf.clone()),
        );
        (sink, buf)
    }

    #[test]
    fn disabled_sink_is_inert() {
        let mut s = CohortSink::disabled();
        s.offer_join(0, 1);
        s.acquire(0, 1, 2, acquire_source::EXCHANGE);
        s.depart(1, 1, 3);
        assert!(!s.is_enabled());
        assert!(!s.is_member(1));
        assert_eq!(s.events(), 0);
        assert!(s.members().is_empty());
    }

    #[test]
    fn round_trips_through_binary_and_jsonl() {
        let (mut s, buf) = sink(2, 9);
        s.offer_join(0, 10);
        s.offer_join(0, 11);
        s.acquire(1, 10, 5, acquire_source::BOOTSTRAP);
        s.slot(2, 11, 10, true);
        s.phase(2, 10, 1);
        s.phase(3, 10, 1); // deduped
        s.observe(3, 11, 4, 2);
        s.shake(4, 10);
        s.handout(4, 11, 3);
        s.depart(5, 10, 16);
        s.finish();
        let (meta, events) = read_cohort(buf.contents().as_slice()).expect("parse");
        assert_eq!(meta.schema_version, COHORT_SCHEMA_VERSION);
        assert_eq!(meta.seed, 9);
        assert_eq!(meta.size, 2);
        assert_eq!(events.len() as u64, s.events());
        assert_eq!(
            events[0],
            CohortEvent::Join(CohortJoin { round: 0, peer: 10 })
        );
        assert!(matches!(
            events.last(),
            Some(CohortEvent::Depart(CohortDepart { pieces: 16, .. }))
        ));
        // Phase dedup: exactly one Phase record.
        let phases = events
            .iter()
            .filter(|e| matches!(e, CohortEvent::Phase(_)))
            .count();
        assert_eq!(phases, 1);
        let mut jsonl = Vec::new();
        write_jsonl(&meta, &events, &mut jsonl).expect("export");
        let text = String::from_utf8(jsonl).expect("utf8");
        assert_eq!(text.lines().count(), events.len() + 1);
        assert!(text.lines().next().expect("meta line").contains("\"seed\":9"));
    }

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let run = || {
            let (mut s, buf) = sink(4, 123);
            for t in 0..200u64 {
                s.offer_join(t / 10, t);
            }
            s.finish();
            (s.members(), buf.contents())
        };
        let (members_a, bytes_a) = run();
        let (members_b, bytes_b) = run();
        assert_eq!(members_a, members_b, "same seed, same membership");
        assert_eq!(bytes_a, bytes_b, "same seed, byte-identical stream");
        assert!(members_a.len() <= 4);
        // A different seed picks a different cohort.
        let (mut other, _buf) = sink(4, 124);
        for t in 0..200u64 {
            other.offer_join(t / 10, t);
        }
        assert_ne!(members_a, other.members(), "distinct seeds diverge");
    }

    #[test]
    fn non_members_produce_no_events() {
        let (mut s, _buf) = sink(1, 7);
        s.offer_join(0, 1);
        let baseline = s.events();
        s.acquire(1, 999, 0, acquire_source::SEED);
        s.observe(1, 999, 1, 1);
        s.slot(1, 999, 1, false);
        assert_eq!(s.events(), baseline);
    }

    #[test]
    fn truncated_stream_reports_offset() {
        let (mut s, buf) = sink(1, 3);
        s.offer_join(0, 5);
        s.finish();
        let mut bytes = buf.contents();
        bytes.pop();
        let err = read_cohort(bytes.as_slice()).expect_err("truncation detected");
        match err {
            CohortError::Parse { offset, detail } => {
                assert_eq!(offset, 24);
                assert!(detail.contains("truncated"), "{detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_cohort(&b"NOTACOHORTSTREAM01234567"[..]).expect_err("bad magic");
        assert!(err.to_string().contains("bad magic"));
    }
}
