//! Run manifests: what ran, how long, and what it counted.

use std::path::Path;
use std::time::Duration;

use crate::registry::{Registry, TimerSnapshot};

/// Schema version stamped into every manifest.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// A JSON document written next to result files at the end of a run,
/// recording enough to reproduce and sanity-check it: the command and
/// configuration hash, RNG seed, source revision, wall-clock per phase,
/// and final counter totals.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// Manifest schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The subcommand or binary that produced the run.
    pub command: String,
    /// FNV-1a hash of the serialized configuration, as hex.
    pub config_hash: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// `git describe --always --dirty`, or `"unknown"` outside a repo.
    pub git_describe: String,
    /// Total wall-clock time of the run, in seconds.
    pub wall_clock_secs: f64,
    /// Wall-clock seconds per named phase, in phase order.
    pub phase_secs: Vec<(String, f64)>,
    /// Timer percentile snapshots per named phase.
    #[serde(default)]
    pub phase_timers: Vec<(String, TimerSnapshot)>,
    /// Active round-pipeline stage names, in execution order (empty for
    /// commands without a stage pipeline, and in manifests written
    /// before the field existed).
    #[serde(default)]
    pub pipeline: Vec<String>,
    /// Stage names disabled by configuration for this run.
    #[serde(default)]
    pub disabled_stages: Vec<String>,
    /// Final counter totals, sorted by counter name.
    pub counters: Vec<(String, u64)>,
    /// Largest simultaneous peer population observed.
    pub peak_population: u64,
    /// Wall-clock seconds spent in observer-side work (telemetry
    /// sampling, monitor checks, cohort tracing — the `obs.*` phase
    /// timers). Zero in manifests written before the field existed.
    #[serde(default)]
    pub obs_wall_secs: f64,
    /// Observer share of total wall clock (`obs_wall_secs /
    /// wall_clock_secs`), the quantity the `--obs-budget` gate checks.
    #[serde(default)]
    pub obs_share: f64,
    /// Worker-thread count the run's parallel plan phases used. Zero in
    /// manifests written before the field existed (treat as 1: those
    /// runs were serial). Purely a throughput knob — the determinism
    /// contract guarantees byte-identical results at every value — but
    /// recorded so performance comparisons only pair like with like.
    #[serde(default)]
    pub threads: u32,
    /// Resident-set size in bytes sampled at the end of the run
    /// (`/proc/self/statm`). Zero in manifests written before the field
    /// existed and on platforms without procfs.
    #[serde(default)]
    pub rss_bytes: u64,
    /// Peak resident-set size in bytes over the whole run (`VmHWM`),
    /// the quantity the `--mem-budget` gate checks. Zero in manifests
    /// written before the field existed and on platforms without
    /// procfs.
    #[serde(default)]
    pub peak_rss_bytes: u64,
}

impl RunManifest {
    /// A manifest skeleton for `command`; phases, counters, and totals
    /// are filled in by [`RunManifest::finish`].
    #[must_use]
    pub fn new(command: &str, config_hash: String, seed: u64) -> RunManifest {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            command: command.to_string(),
            config_hash,
            seed,
            git_describe: git_describe(),
            wall_clock_secs: 0.0,
            phase_secs: Vec::new(),
            phase_timers: Vec::new(),
            pipeline: Vec::new(),
            disabled_stages: Vec::new(),
            counters: Vec::new(),
            peak_population: 0,
            obs_wall_secs: 0.0,
            obs_share: 0.0,
            threads: 1,
            rss_bytes: 0,
            peak_rss_bytes: 0,
        }
    }

    /// Copies totals out of `registry` and stamps the wall clock,
    /// deriving the observer-overhead share from the `obs.*` timers.
    pub fn finish(&mut self, registry: &Registry, wall_clock: Duration) {
        self.wall_clock_secs = wall_clock.as_secs_f64();
        self.counters = registry.counter_totals();
        self.phase_timers = registry.timer_snapshots();
        self.phase_secs = self
            .phase_timers
            .iter()
            .map(|(name, snapshot)| (name.clone(), snapshot.total_secs))
            .collect();
        self.obs_wall_secs = self
            .phase_secs
            .iter()
            .filter(|(name, _)| name.starts_with("obs."))
            .map(|(_, secs)| secs)
            .sum();
        self.obs_share = if self.wall_clock_secs > 0.0 {
            self.obs_wall_secs / self.wall_clock_secs
        } else {
            0.0
        };
        let memory = crate::mem::sample_memory();
        self.rss_bytes = memory.rss_bytes;
        self.peak_rss_bytes = memory.peak_rss_bytes;
    }

    /// Value of the counter named `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(counter, _)| counter == name)
            .map(|(_, total)| *total)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (which would indicate a bug in the
    /// manifest schema) instead of panicking mid-run.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Writes pretty JSON to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, and serializer errors mapped to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        std::fs::write(path, text)
    }
}

/// FNV-1a hash of `bytes`, rendered as 16 hex digits. Used to
/// fingerprint run configurations in manifests and filenames.
#[must_use]
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git or a repository is unavailable.
#[must_use]
pub fn git_describe() -> String {
    let output = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output();
    match output {
        Ok(output) if output.status.success() => {
            let text = String::from_utf8_lossy(&output.stdout).trim().to_string();
            if text.is_empty() {
                "unknown".to_string()
            } else {
                text
            }
        }
        _ => "unknown".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> RunManifest {
        let registry = Registry::new();
        registry.counter("arrivals").add(10);
        registry.counter("completions").add(7);
        registry
            .timer("exchange")
            .record(Duration::from_millis(12));
        let mut manifest = RunManifest::new("swarm", fnv1a_hex(b"config"), 42);
        manifest.peak_population = 55;
        manifest.finish(&registry, Duration::from_secs(2));
        manifest
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let manifest = sample_manifest();
        let text = manifest.to_json().unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn manifest_collects_registry_totals() {
        let manifest = sample_manifest();
        assert_eq!(manifest.schema_version, MANIFEST_SCHEMA_VERSION);
        assert_eq!(manifest.counter("arrivals"), Some(10));
        assert_eq!(manifest.counter("completions"), Some(7));
        assert_eq!(manifest.counter("missing"), None);
        assert_eq!(manifest.phase_secs.len(), 1);
        assert_eq!(manifest.phase_secs[0].0, "exchange");
        assert!(manifest.phase_secs[0].1 >= 0.012);
        assert!((manifest.wall_clock_secs - 2.0).abs() < 1e-9);
    }

    // Manifests written before `phase_timers` existed must still load.
    #[test]
    fn manifest_tolerates_missing_phase_timers() {
        let manifest = sample_manifest();
        let text = manifest.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let trimmed = match value {
            serde_json::Value::Object(entries) => serde_json::Value::Object(
                entries
                    .into_iter()
                    .filter(|(key, _)| key != "phase_timers")
                    .collect(),
            ),
            other => other,
        };
        let back: RunManifest =
            serde_json::from_str(&serde_json::to_string(&trimmed).unwrap()).unwrap();
        assert!(back.phase_timers.is_empty());
        assert_eq!(back.counter("arrivals"), Some(10));
    }

    // Manifests written before the pipeline fields existed must still
    // load, with both lists empty.
    #[test]
    fn manifest_tolerates_missing_pipeline_fields() {
        let manifest = sample_manifest();
        let text = manifest.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let trimmed = match value {
            serde_json::Value::Object(entries) => serde_json::Value::Object(
                entries
                    .into_iter()
                    .filter(|(key, _)| key != "pipeline" && key != "disabled_stages")
                    .collect(),
            ),
            other => other,
        };
        let back: RunManifest =
            serde_json::from_str(&serde_json::to_string(&trimmed).unwrap()).unwrap();
        assert!(back.pipeline.is_empty());
        assert!(back.disabled_stages.is_empty());
    }

    // Manifests written before the observer-overhead fields existed
    // must still load, with both shares zero.
    #[test]
    fn manifest_tolerates_missing_obs_fields() {
        let manifest = sample_manifest();
        let text = manifest.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let trimmed = match value {
            serde_json::Value::Object(entries) => serde_json::Value::Object(
                entries
                    .into_iter()
                    .filter(|(key, _)| key != "obs_wall_secs" && key != "obs_share")
                    .collect(),
            ),
            other => other,
        };
        let back: RunManifest =
            serde_json::from_str(&serde_json::to_string(&trimmed).unwrap()).unwrap();
        assert!(bt_markov_float_is_zero(back.obs_wall_secs));
        assert!(bt_markov_float_is_zero(back.obs_share));
    }

    /// Local exact-zero check (this crate has no bt-markov dependency).
    fn bt_markov_float_is_zero(x: f64) -> bool {
        x.abs() < f64::EPSILON
    }

    // Manifests written before `threads` existed must still load; the
    // zero marks them as pre-field (consumers treat that as serial).
    #[test]
    fn manifest_tolerates_missing_threads() {
        let manifest = sample_manifest();
        assert_eq!(manifest.threads, 1, "fresh manifests default to serial");
        let text = manifest.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let trimmed = match value {
            serde_json::Value::Object(entries) => serde_json::Value::Object(
                entries
                    .into_iter()
                    .filter(|(key, _)| key != "threads")
                    .collect(),
            ),
            other => other,
        };
        let back: RunManifest =
            serde_json::from_str(&serde_json::to_string(&trimmed).unwrap()).unwrap();
        assert_eq!(back.threads, 0);
    }

    // Manifests written before the memory fields existed must still
    // load, with both readings zero ("telemetry unavailable").
    #[test]
    fn manifest_tolerates_missing_memory_fields() {
        let manifest = sample_manifest();
        let text = manifest.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let trimmed = match value {
            serde_json::Value::Object(entries) => serde_json::Value::Object(
                entries
                    .into_iter()
                    .filter(|(key, _)| key != "rss_bytes" && key != "peak_rss_bytes")
                    .collect(),
            ),
            other => other,
        };
        let back: RunManifest =
            serde_json::from_str(&serde_json::to_string(&trimmed).unwrap()).unwrap();
        assert_eq!(back.rss_bytes, 0);
        assert_eq!(back.peak_rss_bytes, 0);
    }

    #[test]
    fn finish_samples_process_memory() {
        let registry = Registry::new();
        let mut manifest = RunManifest::new("swarm", fnv1a_hex(b"mem"), 1);
        manifest.finish(&registry, Duration::from_secs(1));
        assert!(
            manifest.peak_rss_bytes >= manifest.rss_bytes,
            "peak covers current"
        );
        if cfg!(target_os = "linux") {
            assert!(manifest.rss_bytes > 0, "procfs reports a resident process");
        }
    }

    #[test]
    fn finish_derives_obs_share_from_obs_timers() {
        let registry = Registry::new();
        registry
            .timer("round.exchange")
            .record(Duration::from_millis(900));
        registry
            .timer("obs.telemetry")
            .record(Duration::from_millis(80));
        registry
            .timer("obs.doctor")
            .record(Duration::from_millis(20));
        let mut manifest = RunManifest::new("swarm", fnv1a_hex(b"obs"), 1);
        manifest.finish(&registry, Duration::from_secs(1));
        assert!((manifest.obs_wall_secs - 0.1).abs() < 5e-3);
        assert!((manifest.obs_share - 0.1).abs() < 5e-3);
    }

    #[test]
    fn manifest_carries_pipeline_configuration() {
        let mut manifest = sample_manifest();
        manifest.pipeline = vec!["maintain".to_string(), "sample".to_string()];
        manifest.disabled_stages = vec!["shake".to_string()];
        let text = manifest.to_json().unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.pipeline, manifest.pipeline);
        assert_eq!(back.disabled_stages, manifest.disabled_stages);
    }

    #[test]
    fn manifest_writes_to_disk() {
        let manifest = sample_manifest();
        let dir = std::env::temp_dir().join("bt-obs-manifest-test");
        let path = dir.join("nested").join("manifest.json");
        manifest.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, manifest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_hash_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), "af63dc4c8601ec8c");
        assert_ne!(fnv1a_hex(b"config-a"), fnv1a_hex(b"config-b"));
        assert_eq!(fnv1a_hex(b"config-a").len(), 16);
    }

    #[test]
    fn git_describe_never_panics() {
        let described = git_describe();
        assert!(!described.is_empty());
    }
}
