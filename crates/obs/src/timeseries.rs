//! Ring-buffer-backed time series with bounded memory.
//!
//! [`SeriesStore`] keeps one bounded [`RingSeries`] per named scalar
//! signal (entropy, population, utilization, …), sampled on a
//! configurable stride. Memory is bounded by `capacity` samples per
//! series: once a ring is full the oldest sample is evicted and counted,
//! so a million-round run costs the same memory as a thousand-round one.
//!
//! The store converts to and from a flat stream of [`SeriesPoint`]s for
//! JSON-lines / CSV export, which is what the telemetry layer streams to
//! disk and `btlab report` reads back.
//!
//! # Example
//!
//! ```
//! use bt_obs::SeriesStore;
//!
//! let mut store = SeriesStore::new(2, 128); // every 2nd tick, 128 samples max
//! for tick in 0..10 {
//!     store.record("entropy", tick, tick as f64 / 10.0);
//! }
//! let entropy = store.get("entropy").unwrap();
//! assert_eq!(entropy.len(), 5); // ticks 0, 2, 4, 6, 8
//! assert_eq!(entropy.latest(), Some((8, 0.8)));
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

/// One `(tick, value)` sample of a named series — the unit of the
/// JSON-lines and CSV export formats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The series the sample belongs to.
    pub series: String,
    /// Sample tick (round number, step index, …).
    pub tick: u64,
    /// Sampled value.
    pub value: f64,
}

/// Errors from series export and import.
#[derive(Debug)]
pub enum SeriesError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line of the input failed to parse.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::Io(e) => write!(f, "series i/o error: {e}"),
            SeriesError::Parse { line, detail } => {
                write!(f, "series parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for SeriesError {}

impl From<std::io::Error> for SeriesError {
    fn from(e: std::io::Error) -> Self {
        SeriesError::Io(e)
    }
}

/// A bounded ring of `(tick, value)` samples for one signal.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSeries {
    capacity: usize,
    samples: VecDeque<(u64, f64)>,
    evicted: u64,
}

impl RingSeries {
    fn new(capacity: usize) -> Self {
        RingSeries {
            capacity,
            samples: VecDeque::with_capacity(capacity.min(1024)),
            evicted: 0,
        }
    }

    fn push(&mut self, tick: u64, value: f64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
        self.samples.push_back((tick, value));
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted to honor the capacity bound.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The most recent sample, if any.
    #[must_use]
    pub fn latest(&self) -> Option<(u64, f64)> {
        self.samples.back().copied()
    }

    /// Iterates over retained `(tick, value)` samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Mean of the retained values, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
    }

    /// Minimum retained value with its tick, `None` when empty. NaN
    /// samples are skipped (they are unordered).
    #[must_use]
    pub fn min(&self) -> Option<(u64, f64)> {
        self.samples
            .iter()
            .filter(|&&(_, v)| !v.is_nan())
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// A set of named [`RingSeries`] sharing one sampling stride and one
/// per-series capacity bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStore {
    stride: u64,
    capacity: usize,
    series: BTreeMap<String, RingSeries>,
}

impl SeriesStore {
    /// Creates a store sampling every `stride`-th tick, keeping at most
    /// `capacity` samples per series. Zero values are normalized to 1.
    #[must_use]
    pub fn new(stride: u64, capacity: usize) -> Self {
        SeriesStore {
            stride: stride.max(1),
            capacity: capacity.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The sampling stride.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The per-series capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `tick` falls on the sampling stride.
    #[must_use]
    pub fn accepts(&self, tick: u64) -> bool {
        tick.is_multiple_of(self.stride)
    }

    /// Records a sample if `tick` falls on the stride; returns whether it
    /// was kept.
    pub fn record(&mut self, name: &str, tick: u64, value: f64) -> bool {
        if !self.accepts(tick) {
            return false;
        }
        self.series
            .entry(name.to_string())
            .or_insert_with(|| RingSeries::new(self.capacity))
            .push(tick, value);
        true
    }

    /// The series named `name`, if any samples were recorded for it.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&RingSeries> {
        self.series.get(name)
    }

    /// All series names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Flattens the retained samples into a point stream, ordered by
    /// series name then tick.
    #[must_use]
    pub fn points(&self) -> Vec<SeriesPoint> {
        let mut out = Vec::new();
        for (name, ring) in &self.series {
            for (tick, value) in ring.iter() {
                out.push(SeriesPoint {
                    series: name.clone(),
                    tick,
                    value,
                });
            }
        }
        out
    }

    /// Rebuilds a store from a point stream. Points are recorded in the
    /// given order; ticks off the stride are dropped, as on live capture.
    #[must_use]
    pub fn from_points(stride: u64, capacity: usize, points: &[SeriesPoint]) -> Self {
        let mut store = SeriesStore::new(stride, capacity);
        for p in points {
            store.record(&p.series, p.tick, p.value);
        }
        store
    }

    /// Writes the retained samples as JSON lines, one [`SeriesPoint`] per
    /// line.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Io`] on write failure.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> Result<(), SeriesError> {
        for p in self.points() {
            let line = serde_json::to_string(&p).map_err(|e| SeriesError::Parse {
                line: 0,
                detail: e.to_string(),
            })?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Writes the retained samples as CSV with a `series,tick,value`
    /// header.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Io`] on write failure.
    pub fn write_csv<W: Write>(&self, w: &mut W) -> Result<(), SeriesError> {
        writeln!(w, "series,tick,value")?;
        for p in self.points() {
            writeln!(w, "{},{},{}", p.series, p.tick, p.value)?;
        }
        Ok(())
    }

    /// Parses a JSON-lines point stream (as written by
    /// [`SeriesStore::write_jsonl`]). Blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Io`] on read failure and
    /// [`SeriesError::Parse`] (with a 1-based line number) on a malformed
    /// line.
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Vec<SeriesPoint>, SeriesError> {
        let mut points = Vec::new();
        for (index, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let point: SeriesPoint =
                serde_json::from_str(&line).map_err(|e| SeriesError::Parse {
                    line: index + 1,
                    detail: e.to_string(),
                })?;
            points.push(point);
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_filters_ticks() {
        let mut store = SeriesStore::new(3, 16);
        for tick in 0..10 {
            store.record("x", tick, tick as f64);
        }
        let ring = store.get("x").unwrap();
        let ticks: Vec<u64> = ring.iter().map(|(t, _)| t).collect();
        assert_eq!(ticks, vec![0, 3, 6, 9]);
        assert!(store.accepts(6));
        assert!(!store.accepts(7));
    }

    #[test]
    fn capacity_bounds_memory_and_counts_evictions() {
        let mut store = SeriesStore::new(1, 4);
        for tick in 0..10 {
            store.record("x", tick, tick as f64);
        }
        let ring = store.get("x").unwrap();
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.evicted(), 6);
        let ticks: Vec<u64> = ring.iter().map(|(t, _)| t).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9], "oldest samples evicted first");
        assert_eq!(ring.latest(), Some((9, 9.0)));
    }

    #[test]
    fn degenerate_parameters_are_normalized() {
        let store = SeriesStore::new(0, 0);
        assert_eq!(store.stride(), 1);
        assert_eq!(store.capacity(), 1);
    }

    #[test]
    fn summary_statistics() {
        let mut store = SeriesStore::new(1, 16);
        for (tick, v) in [(0, 0.5), (1, 0.2), (2, 0.8)] {
            store.record("e", tick, v);
        }
        let ring = store.get("e").unwrap();
        assert_eq!(ring.min(), Some((1, 0.2)));
        assert!((ring.mean().unwrap() - 0.5).abs() < 1e-12);
        assert!(store.get("missing").is_none());
        assert_eq!(store.names(), vec!["e"]);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut store = SeriesStore::new(1, 32);
        for tick in 0..5 {
            store.record("entropy", tick, tick as f64 / 7.0);
            store.record("population", tick, (tick * 10) as f64);
        }
        let mut buf = Vec::new();
        store.write_jsonl(&mut buf).unwrap();
        let points = SeriesStore::read_jsonl(&buf[..]).unwrap();
        assert_eq!(points, store.points());
        let rebuilt = SeriesStore::from_points(1, 32, &points);
        assert_eq!(rebuilt, store);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut store = SeriesStore::new(1, 8);
        store.record("x", 0, 1.5);
        let mut buf = Vec::new();
        store.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "series,tick,value\nx,0,1.5\n");
    }

    #[test]
    fn parse_reports_line_numbers() {
        let input = b"{\"series\":\"x\",\"tick\":0,\"value\":1.0}\n\nnot json\n";
        let err = SeriesStore::read_jsonl(&input[..]).unwrap_err();
        match err {
            SeriesError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn nan_values_do_not_poison_min() {
        let mut store = SeriesStore::new(1, 8);
        store.record("x", 0, f64::NAN);
        store.record("x", 1, 2.0);
        assert_eq!(store.get("x").unwrap().min(), Some((1, 2.0)));
    }
}
