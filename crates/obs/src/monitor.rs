//! Runtime invariant monitors and anomaly diagnosis bundles.
//!
//! Profiling answers "where does the time go" and telemetry answers
//! "what did the swarm look like"; the monitor layer answers "was the
//! run *valid*". A [`Monitor`] inspects a sample of simulation state at
//! a configurable round cadence and reports [`Violation`]s of model
//! invariants (piece conservation, index-vs-oracle consistency, entropy
//! collapse, …). The framework here is generic over the sample type —
//! the simulation crate defines what a sample contains and which
//! monitors make sense; this module provides the trait, the
//! [`MonitorSet`] that drives a collection of monitors and accumulates
//! their [`MonitorReport`], and the [`DiagnosisBundle`] writer that
//! captures forensic context the moment an invariant breaks.
//!
//! Like the profiler, monitoring makes **no RNG calls** and never feeds
//! back into simulation decisions, so attaching monitors leaves a
//! same-seed run byte-identical — the determinism suite locks this in.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Schema version stamped into monitor reports and diagnosis bundles.
pub const MONITOR_SCHEMA_VERSION: u32 = 1;

/// One invariant violation found by a monitor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The monitor that found it (stable kebab-case name).
    pub monitor: String,
    /// The round at which the check failed.
    pub round: u64,
    /// Human-readable description with the numbers that disagreed.
    pub detail: String,
    /// Identifiers involved (peer sequence numbers or piece ids,
    /// monitor-dependent); empty when the violation is global.
    pub subjects: Vec<u64>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] round {}: {}", self.monitor, self.round, self.detail)
    }
}

/// An invariant check over samples of type `S`.
///
/// Monitors may keep state between samples (e.g. the entropy monitor
/// latches once it has seen a healthy value; the phase monitor tracks
/// per-observer history) — `check` therefore takes `&mut self`.
pub trait Monitor<S> {
    /// Stable kebab-case name, used in violation records and summaries.
    fn name(&self) -> &'static str;

    /// Checks one sample, returning any violations found in it.
    fn check(&mut self, sample: &S) -> Vec<Violation>;
}

/// A collection of monitors driven over a stream of samples,
/// accumulating violations into a [`MonitorReport`].
pub struct MonitorSet<S> {
    monitors: Vec<Box<dyn Monitor<S> + Send>>,
    report: MonitorReport,
}

impl<S> std::fmt::Debug for MonitorSet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorSet")
            .field(
                "monitors",
                &self.monitors.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .field("report", &self.report)
            .finish()
    }
}

impl<S> Default for MonitorSet<S> {
    fn default() -> Self {
        MonitorSet::new()
    }
}

impl<S> MonitorSet<S> {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        MonitorSet {
            monitors: Vec::new(),
            report: MonitorReport::new(),
        }
    }

    /// Adds a monitor to the set.
    pub fn push(&mut self, monitor: Box<dyn Monitor<S> + Send>) {
        self.monitors.push(monitor);
    }

    /// The names of the registered monitors, in check order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.monitors.iter().map(|m| m.name()).collect()
    }

    /// Runs every monitor against `sample`, appending violations to the
    /// report. Returns the violations found in *this* sample (empty for
    /// a clean check).
    pub fn check(&mut self, sample: &S) -> Vec<Violation> {
        self.report.checks += 1;
        let mut fresh = Vec::new();
        for monitor in &mut self.monitors {
            fresh.extend(monitor.check(sample));
        }
        self.report.violations.extend(fresh.iter().cloned());
        fresh
    }

    /// The accumulated report.
    #[must_use]
    pub fn report(&self) -> &MonitorReport {
        &self.report
    }

    /// Consumes the set, yielding the accumulated report.
    #[must_use]
    pub fn into_report(self) -> MonitorReport {
        self.report
    }
}

/// The outcome of a monitored run: how many sampled rounds were checked
/// and every violation found, in detection order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Report schema version ([`MONITOR_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Number of sampled rounds checked.
    pub checks: u64,
    /// Every violation found, in detection order.
    pub violations: Vec<Violation>,
}

impl Default for MonitorReport {
    fn default() -> Self {
        MonitorReport::new()
    }
}

impl MonitorReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        MonitorReport {
            schema_version: MONITOR_SCHEMA_VERSION,
            checks: 0,
            violations: Vec::new(),
        }
    }

    /// Whether no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A diagnosis bundle: a directory of JSON documents capturing the
/// state around an invariant violation (flight-recorder dump, peer
/// slice, trailing telemetry, pipeline and profile snapshots).
///
/// The bundle lands at `<root>/diagnosis-<run_id>/`; each document is
/// written with [`DiagnosisBundle::write_json`] (pretty, one file) or
/// [`DiagnosisBundle::write_jsonl`] (one record per line). All I/O is
/// fallible and propagated — a failed bundle write must never take the
/// run down with it.
#[derive(Debug, Clone)]
pub struct DiagnosisBundle {
    dir: PathBuf,
}

impl DiagnosisBundle {
    /// Creates (or reuses) the bundle directory `<root>/diagnosis-<run_id>`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(root: &Path, run_id: &str) -> std::io::Result<DiagnosisBundle> {
        let dir = root.join(format!("diagnosis-{run_id}"));
        std::fs::create_dir_all(&dir)?;
        Ok(DiagnosisBundle { dir })
    }

    /// The bundle directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `value` as pretty JSON to `<bundle>/<name>`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, and serializer errors mapped to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) -> std::io::Result<PathBuf> {
        let path = self.dir.join(name);
        let mut text = serde_json::to_string_pretty(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }

    /// Writes `rows` as JSON lines to `<bundle>/<name>`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, and serializer errors mapped to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn write_jsonl<T: Serialize>(&self, name: &str, rows: &[T]) -> std::io::Result<PathBuf> {
        let path = self.dir.join(name);
        let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
        for row in rows {
            let line = serde_json::to_string(row).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            })?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        out.flush()?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AboveTen;
    impl Monitor<u64> for AboveTen {
        fn name(&self) -> &'static str {
            "above-ten"
        }
        fn check(&mut self, sample: &u64) -> Vec<Violation> {
            if *sample > 10 {
                vec![Violation {
                    monitor: self.name().to_string(),
                    round: *sample,
                    detail: format!("{sample} exceeds 10"),
                    subjects: vec![*sample],
                }]
            } else {
                Vec::new()
            }
        }
    }

    /// Fires only after it has seen a sample >= 5 (stateful latch).
    struct LatchedDrop {
        armed: bool,
    }
    impl Monitor<u64> for LatchedDrop {
        fn name(&self) -> &'static str {
            "latched-drop"
        }
        fn check(&mut self, sample: &u64) -> Vec<Violation> {
            if *sample >= 5 {
                self.armed = true;
                return Vec::new();
            }
            if self.armed {
                return vec![Violation {
                    monitor: self.name().to_string(),
                    round: *sample,
                    detail: "dropped after being healthy".to_string(),
                    subjects: Vec::new(),
                }];
            }
            Vec::new()
        }
    }

    #[test]
    fn set_accumulates_checks_and_violations() {
        let mut set: MonitorSet<u64> = MonitorSet::new();
        set.push(Box::new(AboveTen));
        set.push(Box::new(LatchedDrop { armed: false }));
        assert_eq!(set.names(), vec!["above-ten", "latched-drop"]);

        assert!(set.check(&3).is_empty(), "low start is not a drop");
        assert!(set.check(&7).is_empty(), "healthy sample arms the latch");
        let fresh = set.check(&2);
        assert_eq!(fresh.len(), 1, "latched monitor fires on the drop");
        let fresh = set.check(&42);
        assert_eq!(fresh.len(), 1, "above-ten fires at 42; 42 re-arms the latch");
        let fresh = set.check(&1);
        assert_eq!(fresh.len(), 1, "re-armed latch fires on the second drop");

        let report = set.report();
        assert_eq!(report.checks, 5);
        assert_eq!(report.violations.len(), 3);
        assert!(!report.is_clean());
        assert_eq!(report.schema_version, MONITOR_SCHEMA_VERSION);
    }

    #[test]
    fn clean_report_round_trips() {
        let set: MonitorSet<u64> = MonitorSet::new();
        let report = set.into_report();
        assert!(report.is_clean());
        let text = serde_json::to_string(&report).unwrap();
        let back: MonitorReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn violation_displays_with_monitor_and_round() {
        let v = Violation {
            monitor: "piece-conservation".to_string(),
            round: 17,
            detail: "held 5 != acquired 4".to_string(),
            subjects: vec![],
        };
        assert_eq!(
            v.to_string(),
            "[piece-conservation] round 17: held 5 != acquired 4"
        );
    }

    #[derive(Serialize)]
    struct Meta {
        round: u64,
    }

    #[test]
    fn bundle_writes_documents() {
        let root = std::env::temp_dir().join("bt-obs-monitor-bundle-test");
        let _ = std::fs::remove_dir_all(&root);
        let bundle = DiagnosisBundle::create(&root, "demo-7").unwrap();
        assert!(bundle.dir().ends_with("diagnosis-demo-7"));
        let meta = bundle.write_json("meta.json", &Meta { round: 9 }).unwrap();
        let rows = bundle
            .write_jsonl("trail.jsonl", &[1u64, 2, 3])
            .unwrap();
        let text = std::fs::read_to_string(meta).unwrap();
        assert!(text.contains("\"round\": 9"));
        let text = std::fs::read_to_string(rows).unwrap();
        assert_eq!(text, "1\n2\n3\n");
        let _ = std::fs::remove_dir_all(&root);
    }
}
