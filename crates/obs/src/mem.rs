//! Process memory telemetry: RSS sampling and allocation counters.
//!
//! Two independent pieces, both observer-only (no RNG, no feedback
//! into model code):
//!
//! * [`sample_memory`] reads the current and peak resident-set size of
//!   this process from `/proc/self/statm` (resident pages × the page
//!   size from the auxiliary vector) and `/proc/self/status` (`VmHWM`).
//!   On platforms without procfs every field is 0 — callers treat a
//!   zero sample as "memory telemetry unavailable", never as an error.
//! * The allocation counters ([`record_alloc`], [`record_dealloc`],
//!   [`allocated_bytes_total`]) are plain process-global atomics that a
//!   counting [`std::alloc::GlobalAlloc`] wrapper increments on every
//!   heap call. The wrapper itself needs `unsafe impl` and therefore
//!   lives behind the `alloc-profile` feature of `bt-bench` (this crate
//!   forbids unsafe code); the counters live here so the engine can
//!   read per-stage deltas without depending on the bench crate. When
//!   no counting allocator is installed the totals stay 0 and every
//!   delta is 0 — the attribution path costs two atomic loads per
//!   stage and records nothing.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time memory reading. All fields are 0 when the platform
/// exposes no procfs (the sampler never fails, it degrades).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSample {
    /// Current resident-set size in bytes (`/proc/self/statm`).
    pub rss_bytes: u64,
    /// Peak resident-set size in bytes (`VmHWM`, high-water mark), at
    /// least `rss_bytes` when both sources are readable.
    pub peak_rss_bytes: u64,
}

/// Samples the current and peak RSS of this process. Infallible: any
/// unreadable source contributes 0.
#[must_use]
pub fn sample_memory() -> MemSample {
    let rss_bytes = statm_resident_bytes().unwrap_or(0);
    let peak_rss_bytes = status_peak_bytes().unwrap_or(0).max(rss_bytes);
    MemSample {
        rss_bytes,
        peak_rss_bytes,
    }
}

/// Current RSS from `/proc/self/statm`: the second field is the
/// resident page count, converted with the kernel page size.
fn statm_resident_bytes() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = text.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages.saturating_mul(page_size()))
}

/// Peak RSS from `/proc/self/status` (`VmHWM`, reported in kB).
fn status_peak_bytes() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb.saturating_mul(1024));
        }
    }
    None
}

/// The kernel page size, read once from the ELF auxiliary vector
/// (`AT_PAGESZ`) and cached; 4096 when the vector is unreadable.
fn page_size() -> u64 {
    static PAGE: AtomicU64 = AtomicU64::new(0);
    let cached = PAGE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let size = auxv_page_size().unwrap_or(4096);
    PAGE.store(size, Ordering::Relaxed);
    size
}

/// `AT_PAGESZ` (key 6) from `/proc/self/auxv`: native-endian
/// `(key, value)` machine-word pairs. 64-bit layouts only; anything
/// else falls back to the 4096 default above.
fn auxv_page_size() -> Option<u64> {
    let bytes = std::fs::read("/proc/self/auxv").ok()?;
    for entry in bytes.chunks_exact(16) {
        let (key, value) = entry.split_at(8);
        let key = u64::from_ne_bytes(key.try_into().ok()?);
        let value = u64::from_ne_bytes(value.try_into().ok()?);
        if key == 6 && value > 0 {
            return Some(value);
        }
    }
    None
}

/// Total bytes handed out by the counting allocator since process
/// start (monotonic; never decremented on free).
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Total bytes returned to the counting allocator.
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Number of allocation calls observed.
static ALLOCATION_CALLS: AtomicU64 = AtomicU64::new(0);

/// Records one heap allocation of `bytes`. Called from the counting
/// `GlobalAlloc` wrapper in `bt-bench` (feature `alloc-profile`); must
/// never allocate itself.
#[inline]
pub fn record_alloc(bytes: usize) {
    ALLOCATED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    ALLOCATION_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Records one heap deallocation of `bytes`.
#[inline]
pub fn record_dealloc(bytes: usize) {
    FREED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Monotonic total of allocated bytes. The engine samples this around
/// each round stage and attributes the delta as `mem.alloc_bytes` work
/// in the profiler; 0 (and all deltas 0) unless a counting allocator
/// is installed.
#[inline]
#[must_use]
pub fn allocated_bytes_total() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Number of allocation calls observed so far.
#[must_use]
pub fn allocation_calls() -> u64 {
    ALLOCATION_CALLS.load(Ordering::Relaxed)
}

/// Bytes currently live according to the counters (allocated − freed,
/// saturating: frees recorded before counting started would otherwise
/// underflow).
#[must_use]
pub fn live_alloc_bytes() -> u64 {
    ALLOCATED_BYTES
        .load(Ordering::Relaxed)
        .saturating_sub(FREED_BYTES.load(Ordering::Relaxed))
}

/// Whether a counting allocator has reported at least one allocation —
/// i.e. whether allocation attribution is live in this process.
#[must_use]
pub fn alloc_counting_active() -> bool {
    ALLOCATION_CALLS.load(Ordering::Relaxed) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_never_fails_and_peak_covers_current() {
        let sample = sample_memory();
        // On Linux (CI and dev machines) procfs is there and a running
        // test binary is resident; elsewhere both legs are 0.
        assert!(sample.peak_rss_bytes >= sample.rss_bytes);
        if cfg!(target_os = "linux") {
            assert!(sample.rss_bytes > 0, "statm should report resident pages");
        }
    }

    #[test]
    fn page_size_is_a_sane_power_of_two() {
        let size = page_size();
        assert!(size >= 4096, "page size at least 4 KiB, got {size}");
        assert_eq!(size & (size - 1), 0, "page size is a power of two");
    }

    #[test]
    fn alloc_counters_accumulate() {
        let before_total = allocated_bytes_total();
        let before_calls = allocation_calls();
        record_alloc(1024);
        record_alloc(512);
        record_dealloc(512);
        assert_eq!(allocated_bytes_total() - before_total, 1536);
        assert_eq!(allocation_calls() - before_calls, 2);
        assert!(alloc_counting_active());
        // live accounting is saturating, never panicking, even when a
        // foreign free is recorded first.
        record_dealloc(u64::MAX as usize);
        let _ = live_alloc_bytes();
    }
}
