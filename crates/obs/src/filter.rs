//! `RUST_LOG`-style level filtering.

use tracing::Level;

/// A parsed filter of the form `directive[,directive...]` where each
/// directive is either a bare level (`info`, `off`, ...) setting the
/// default, or `target-prefix=level` overriding it for one module tree
/// (longest matching prefix wins).
///
/// Examples: `info`, `debug,bt_des=off`, `warn,bt_swarm::round=debug`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFilter {
    default: Option<Level>,
    directives: Vec<(String, Option<Level>)>,
}

impl EnvFilter {
    /// Parses a filter string. Empty input means "use `default_level`".
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed directive.
    pub fn parse(text: &str, default_level: Option<Level>) -> Result<EnvFilter, String> {
        let mut filter = EnvFilter {
            default: default_level,
            directives: Vec::new(),
        };
        for raw in text.split(',') {
            let directive = raw.trim();
            if directive.is_empty() {
                continue;
            }
            match directive.split_once('=') {
                Some((target, level_text)) => {
                    let target = target.trim();
                    if target.is_empty() {
                        return Err(format!("empty target in log directive `{directive}`"));
                    }
                    let level = parse_level(level_text.trim())
                        .ok_or_else(|| format!("unknown log level in `{directive}`"))?;
                    filter.directives.push((target.to_string(), level));
                }
                None => {
                    filter.default = parse_level(directive)
                        .ok_or_else(|| format!("unknown log level `{directive}`"))?;
                }
            }
        }
        // Longest prefix first, so the first match below is the winner.
        filter
            .directives
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        Ok(filter)
    }

    /// The coarsest level any directive admits — the global fast-path
    /// gate handed to `tracing`. `None` means everything is off.
    #[must_use]
    pub fn max_level(&self) -> Option<Level> {
        self.directives
            .iter()
            .filter_map(|(_, level)| *level)
            .chain(self.default)
            .max()
    }

    /// Whether an event at `level` from `target` passes the filter.
    #[must_use]
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let effective = self
            .directives
            .iter()
            .find(|(prefix, _)| target_matches(target, prefix))
            .map_or(self.default, |(_, lvl)| *lvl);
        effective.is_some_and(|max| level <= max)
    }
}

/// A directive prefix matches a target on module-path boundaries:
/// `bt_des` matches `bt_des` and `bt_des::event` but not `bt_desx`.
fn target_matches(target: &str, prefix: &str) -> bool {
    target
        .strip_prefix(prefix)
        .is_some_and(|rest| rest.is_empty() || rest.starts_with("::"))
}

fn parse_level(text: &str) -> Option<Option<Level>> {
    Level::parse(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_sets_default() {
        let filter = EnvFilter::parse("debug", Some(Level::Info)).unwrap();
        assert!(filter.enabled(Level::Debug, "anything"));
        assert!(!filter.enabled(Level::Trace, "anything"));
        assert_eq!(filter.max_level(), Some(Level::Debug));
    }

    #[test]
    fn empty_uses_fallback_default() {
        let filter = EnvFilter::parse("", Some(Level::Warn)).unwrap();
        assert!(filter.enabled(Level::Warn, "x"));
        assert!(!filter.enabled(Level::Info, "x"));
    }

    #[test]
    fn per_target_overrides() {
        let filter = EnvFilter::parse("info,bt_des=off,bt_swarm::round=trace", None).unwrap();
        assert!(!filter.enabled(Level::Error, "bt_des"));
        assert!(!filter.enabled(Level::Error, "bt_des::event"));
        assert!(filter.enabled(Level::Trace, "bt_swarm::round"));
        assert!(filter.enabled(Level::Info, "bt_swarm"));
        assert!(!filter.enabled(Level::Debug, "bt_swarm"));
        assert_eq!(filter.max_level(), Some(Level::Trace));
    }

    #[test]
    fn prefix_matching_respects_path_boundaries() {
        let filter = EnvFilter::parse("off,bt_des=info", None).unwrap();
        assert!(filter.enabled(Level::Info, "bt_des::event"));
        assert!(!filter.enabled(Level::Error, "bt_desx"));
    }

    #[test]
    fn longest_prefix_wins() {
        let filter = EnvFilter::parse("bt_swarm=warn,bt_swarm::round=debug", None).unwrap();
        assert!(filter.enabled(Level::Debug, "bt_swarm::round::exchange"));
        assert!(!filter.enabled(Level::Debug, "bt_swarm::metrics"));
    }

    #[test]
    fn all_off_has_no_max_level() {
        let filter = EnvFilter::parse("off", Some(Level::Info)).unwrap();
        assert_eq!(filter.max_level(), None);
        assert!(!filter.enabled(Level::Error, "x"));
    }

    #[test]
    fn malformed_directives_error() {
        assert!(EnvFilter::parse("verbose", None).is_err());
        assert!(EnvFilter::parse("bt_des=loud", None).is_err());
        assert!(EnvFilter::parse("=info", None).is_err());
    }
}
