//! Named counters and timers, cheap enough for the round-loop hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Locks `mutex`, recovering from poisoning: these mutexes only guard
/// map insertions and histogram bumps, which cannot be left in a
/// half-updated state observable through this API, so a panic on
/// another thread must not cascade into every later metrics call.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A shared registry of named [`Counter`]s and [`Timer`]s.
///
/// Handles are looked up once (get-or-create by name) and then touched
/// lock-free; cloning a `Registry` clones the `Arc`, so a swarm and the
/// CLI that launched it observe the same totals. [`Registry::global`]
/// is the process default; tests construct private registries for
/// isolation.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    timers: Mutex<BTreeMap<String, Arc<TimerCell>>>,
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide default registry.
    #[must_use]
    pub fn global() -> Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new).clone()
    }

    /// The counter named `name`, created at zero on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = lock(&self.inner.counters);
        let cell = counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter { cell: Arc::clone(cell) }
    }

    /// The timer named `name`, created empty on first use.
    #[must_use]
    pub fn timer(&self, name: &str) -> Timer {
        let mut timers = lock(&self.inner.timers);
        let cell = timers
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(TimerCell::default()));
        Timer { cell: Arc::clone(cell) }
    }

    /// All counter totals, sorted by name.
    #[must_use]
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        lock(&self.inner.counters)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// All timer snapshots, sorted by name.
    #[must_use]
    pub fn timer_snapshots(&self) -> Vec<(String, TimerSnapshot)> {
        lock(&self.inner.timers)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.snapshot()))
            .collect()
    }
}

/// A monotonically increasing event counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to `value` if it is below it (max-gauge use,
    /// e.g. peak population).
    pub fn record_max(&self, value: u64) {
        self.cell.fetch_max(value, Ordering::Relaxed);
    }

    /// Current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct TimerCell {
    total_ns: AtomicU64,
    histogram: Mutex<Histogram>,
}

impl TimerCell {
    fn record(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.total_ns.fetch_add(nanos, Ordering::Relaxed);
        lock(&self.histogram).record(nanos);
    }

    fn snapshot(&self) -> TimerSnapshot {
        let histogram = lock(&self.histogram);
        TimerSnapshot {
            total_secs: self.total_ns.load(Ordering::Relaxed) as f64 / 1e9,
            count: histogram.count(),
            p50_ns: histogram.percentile(50.0),
            p95_ns: histogram.percentile(95.0),
            p99_ns: histogram.percentile(99.0),
            max_ns: histogram.max(),
        }
    }
}

/// Accumulates wall-clock durations for one named phase.
#[derive(Clone)]
pub struct Timer {
    cell: Arc<TimerCell>,
}

impl Timer {
    /// Records one elapsed duration.
    pub fn record(&self, elapsed: Duration) {
        self.cell.record(elapsed);
    }

    /// Starts timing; the guard records on drop.
    #[must_use]
    pub fn start(&self) -> TimerGuard {
        TimerGuard {
            cell: Arc::clone(&self.cell),
            started: Instant::now(),
        }
    }

    /// Times one call of `f`.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.start();
        f()
    }

    /// Point-in-time totals and percentiles.
    #[must_use]
    pub fn snapshot(&self) -> TimerSnapshot {
        self.cell.snapshot()
    }
}

/// RAII guard from [`Timer::start`]; records its lifetime on drop.
pub struct TimerGuard {
    cell: Arc<TimerCell>,
    started: Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.cell.record(self.started.elapsed());
    }
}

/// Summary of one timer: totals plus approximate percentiles.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimerSnapshot {
    /// Sum of recorded durations, in seconds.
    pub total_secs: f64,
    /// Number of recorded durations.
    pub count: u64,
    /// Approximate median duration in nanoseconds, `None` when empty.
    pub p50_ns: Option<u64>,
    /// Approximate 95th-percentile duration, `None` when empty.
    /// Defaults to `None` when reading snapshots written before the
    /// field existed.
    #[serde(default)]
    pub p95_ns: Option<u64>,
    /// Approximate 99th-percentile duration, `None` when empty.
    pub p99_ns: Option<u64>,
    /// Exact maximum recorded duration, `None` when empty.
    pub max_ns: Option<u64>,
}

/// A log-bucketed histogram of `u64` samples (power-of-two buckets).
///
/// Percentiles are approximate — a bucket's samples are reported as the
/// bucket's lower bound, clamped to the exact observed `[min, max]` —
/// which makes the single-sample case exact and keeps the error within
/// a factor of two elsewhere. No allocation after construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if let Some(bucket) = self.buckets.get_mut(Histogram::bucket_index(value)) {
            *bucket += 1;
        }
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The approximate `p`-th percentile (`0.0..=100.0`), `None` when
    /// empty. `p <= 0` yields the minimum, `p >= 100` the maximum.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let fraction = (p / 100.0).clamp(0.0, 1.0);
        // 1-based rank of the sample to report.
        let rank = ((fraction * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extremes are tracked exactly; report them exactly.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (index, &bucket_count) in self.buckets.iter().enumerate() {
            seen += bucket_count;
            if seen >= rank {
                let lower_bound = if index == 0 { 0 } else { 1u64 << index };
                return Some(lower_bound.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_arithmetic() {
        let registry = Registry::new();
        let counter = registry.counter("arrivals");
        counter.incr();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        counter.record_max(3);
        assert_eq!(counter.get(), 5, "record_max never lowers");
        // Same name, same cell.
        assert_eq!(registry.counter("arrivals").get(), 5);
        assert_eq!(registry.counter_totals(), vec![("arrivals".to_string(), 5)]);
        counter.record_max(9);
        assert_eq!(counter.get(), 9);
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let registry = Registry::new();
        let counter = registry.counter("shared");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        counter.incr();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(counter.get(), 4000);
    }

    #[test]
    fn timer_records_and_snapshots() {
        let registry = Registry::new();
        let timer = registry.timer("phase");
        timer.record(Duration::from_micros(100));
        timer.record(Duration::from_micros(300));
        let value = timer.time(|| 7);
        assert_eq!(value, 7);
        let snapshot = timer.snapshot();
        assert_eq!(snapshot.count, 3);
        assert!(snapshot.total_secs >= 400e-6);
        assert!(snapshot.p50_ns.is_some());
        assert!(snapshot.max_ns.unwrap() >= 300_000);
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let registry = Registry::new();
        let timer = registry.timer("guarded");
        {
            let _guard = timer.start();
        }
        assert_eq!(timer.snapshot().count, 1);
    }

    #[test]
    fn histogram_empty_has_no_percentiles() {
        let histogram = Histogram::new();
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.percentile(50.0), None);
        assert_eq!(histogram.min(), None);
        assert_eq!(histogram.max(), None);
        assert_eq!(histogram.mean(), None);
    }

    // With one sample, every percentile is exact.
    #[test]
    fn histogram_single_sample_is_exact() {
        let mut histogram = Histogram::new();
        histogram.record(12345);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(histogram.percentile(p), Some(12345), "p={p}");
        }
        assert_eq!(histogram.mean(), Some(12345.0));
    }

    #[test]
    fn histogram_zero_sample_is_representable() {
        let mut histogram = Histogram::new();
        histogram.record(0);
        assert_eq!(histogram.percentile(50.0), Some(0));
        assert_eq!(histogram.max(), Some(0));
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_bounded() {
        let mut histogram = Histogram::new();
        for value in [1u64, 2, 3, 10, 100, 1000, 10_000, 100_000] {
            histogram.record(value);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let value = histogram.percentile(p).unwrap();
            assert!(value >= last, "p={p}: {value} < {last}");
            assert!((1..=100_000).contains(&value), "p={p}: {value}");
            last = value;
        }
        assert_eq!(histogram.percentile(100.0), Some(100_000));
        assert_eq!(histogram.percentile(0.0), Some(1));
    }

    #[test]
    fn histogram_extreme_values_do_not_overflow() {
        let mut histogram = Histogram::new();
        histogram.record(u64::MAX);
        histogram.record(1);
        assert_eq!(histogram.max(), Some(u64::MAX));
        assert_eq!(histogram.percentile(100.0), Some(u64::MAX));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snapshot = TimerSnapshot {
            total_secs: 1.5,
            count: 3,
            p50_ns: Some(10),
            p95_ns: Some(80),
            p99_ns: Some(90),
            max_ns: Some(95),
        };
        let text = serde_json::to_string(&snapshot).unwrap();
        let back: TimerSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snapshot);
    }

    // Snapshots serialized before `p95_ns` existed must still load.
    #[test]
    fn snapshot_tolerates_missing_p95() {
        let text = r#"{"total_secs":1.5,"count":3,"p50_ns":10,"p99_ns":90,"max_ns":95}"#;
        let back: TimerSnapshot = serde_json::from_str(text).unwrap();
        assert_eq!(back.p95_ns, None);
        assert_eq!(back.p99_ns, Some(90));
    }

    #[test]
    fn snapshot_reports_all_three_quantiles() {
        let registry = Registry::new();
        let timer = registry.timer("quantiles");
        for micros in 1..=100 {
            timer.record(Duration::from_micros(micros));
        }
        let snapshot = timer.snapshot();
        let p50 = snapshot.p50_ns.unwrap();
        let p95 = snapshot.p95_ns.unwrap();
        let p99 = snapshot.p99_ns.unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= snapshot.max_ns.unwrap());
    }
}
