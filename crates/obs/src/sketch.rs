//! Streaming distribution sketches for sublinear observability.
//!
//! Two tools, both dependency-free and deterministic:
//!
//! * [`CountCells`] — *sharded counter cells* over a bounded integer
//!   domain: one cell per possible value, maintained incrementally by
//!   the producer (`incr`/`decr`/`shift` at mutation sites). Quantile
//!   queries walk the cells, so a sample costs O(domain) instead of
//!   O(population · log population) for the sort-based full scan it
//!   replaces. Results are **exact**: `value_at_rank` agrees with
//!   indexing the sorted per-item vector.
//! * [`P2Quantile`] — the classic P² (piecewise-parabolic) streaming
//!   quantile estimator of Jain & Chlamtac (CACM 1985) for unbounded
//!   domains where cells do not apply (e.g. per-round observer
//!   overhead in nanoseconds). Five markers, O(1) per observation,
//!   O(1) memory, no allocation after construction.
//!
//! # Determinism
//!
//! Neither sketch reads a clock or draws randomness; both are pure
//! functions of their observation sequence. Feeding the same stream
//! twice yields bit-identical estimates, which is what lets them live
//! inside the telemetry path without perturbing same-seed runs.
//!
//! # Error bounds
//!
//! `CountCells` is exact. `P2Quantile` is exact while `n <= 5`; beyond
//! that it is an approximation whose *rank error* (distance between the
//! estimate's rank in the sorted sample and the target rank `q·(n−1)`)
//! stays within `max(10, 0.55·n)` across the adversarial distributions
//! exercised by the property suite (uniform, constant, bimodal,
//! sorted/reverse-sorted, and heavy-tailed step mixtures — see
//! `crates/obs/tests/sketch_props.rs`). The bound is deliberately
//! honest rather than flattering: bimodal streams with a wide value
//! gap drive the markers' parabolic interpolation to `~0.52·n` rank
//! error, and monotone (sorted) streams reach `~0.41·n` — both known
//! P² weak spots. Well-mixed streams like the simulator's piece-count
//! samples stay far tighter in practice. The estimate is always
//! clamped to the observed `[min, max]` by construction.
//!
//! The engine's telemetry quantiles do not rely on the P² bound at
//! all: piece-count quantiles come from `CountCells`, which is exact.
//! `P2Quantile` exists for unbounded-domain signals (timings, ratios)
//! where a count array cannot apply.

// bt-lint: allow-file(panic-index) — every index below is structurally
// bounded: `CountCells` clamps values to its fixed domain before
// indexing `counts`, and the P² marker arrays are `[_; 5]` indexed by
// loop bounds and neighbors of interior markers (1..=3). The property
// suite in tests/sketch_props.rs hammers both with adversarial inputs.
/// Exact value-indexed counter cells over the domain `0..=max_value`.
///
/// The producer moves counts between cells as the underlying items
/// mutate; readers answer rank/quantile queries by walking the cells.
///
/// # Example
///
/// ```
/// use bt_obs::CountCells;
///
/// let mut cells = CountCells::new(10);
/// cells.incr(3);
/// cells.incr(7);
/// cells.incr(7);
/// assert_eq!(cells.total(), 3);
/// assert_eq!(cells.value_at_rank(0), 3);
/// assert_eq!(cells.value_at_rank(2), 7);
/// cells.shift(7, 8); // one item went from 7 to 8
/// assert_eq!(cells.value_at_rank(2), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountCells {
    cells: Vec<u64>,
    total: u64,
}

impl CountCells {
    /// Creates empty cells over `0..=max_value`.
    #[must_use]
    pub fn new(max_value: u32) -> CountCells {
        CountCells {
            cells: vec![0; max_value as usize + 1],
            total: 0,
        }
    }

    /// Largest representable value.
    #[must_use]
    pub fn max_value(&self) -> u32 {
        (self.cells.len() - 1) as u32
    }

    /// Number of items currently tracked.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw per-value counts (index = value).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.cells
    }

    /// Adds one item with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds the domain.
    pub fn incr(&mut self, value: u32) {
        self.cells[value as usize] += 1;
        self.total += 1;
    }

    /// Removes one item with `value`.
    ///
    /// # Panics
    ///
    /// Panics if no item with `value` is tracked (the producer lost
    /// sync with the underlying population).
    pub fn decr(&mut self, value: u32) {
        let cell = &mut self.cells[value as usize];
        assert!(*cell > 0, "count cell underflow at value {value}");
        *cell -= 1;
        self.total -= 1;
    }

    /// Moves one item from `from` to `to` (its value changed).
    ///
    /// # Panics
    ///
    /// Panics if no item with value `from` is tracked.
    pub fn shift(&mut self, from: u32, to: u32) {
        let cell = &mut self.cells[from as usize];
        assert!(*cell > 0, "count cell underflow at value {from}");
        *cell -= 1;
        self.cells[to as usize] += 1;
    }

    /// Value of the `rank`-th item (0-based) in ascending sorted order —
    /// exactly `sorted_values[rank]` for the equivalent sorted vector.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= total()`.
    #[must_use]
    pub fn value_at_rank(&self, rank: u64) -> u32 {
        assert!(rank < self.total, "rank {rank} out of {} items", self.total);
        let mut seen = 0u64;
        for (value, &count) in self.cells.iter().enumerate() {
            seen += count;
            if seen > rank {
                return value as u32;
            }
        }
        // The loop sums every cell, so `seen == total` afterwards and
        // the assert above already guaranteed `rank < total`.
        // bt-lint: allow(panic-macro) — structurally unreachable, see above
        unreachable!("total() covers all cells")
    }

    /// Quantile under the telemetry convention used by the full-scan
    /// path it replaces: the item at rank `round((total − 1) · fraction)`.
    /// Returns `None` when empty.
    #[must_use]
    pub fn quantile(&self, fraction: f64) -> Option<u32> {
        if self.total == 0 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((self.total - 1) as f64 * fraction).round() as u64;
        Some(self.value_at_rank(rank.min(self.total - 1)))
    }

    /// Sum of all tracked values (`Σ value · count`). O(domain).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.cells
            .iter()
            .enumerate()
            .map(|(value, &count)| value as u64 * count)
            .sum()
    }
}

/// P² streaming estimator for a single quantile `q` (Jain & Chlamtac).
///
/// Five markers track the running minimum, the `q/2`, `q`, and
/// `(1+q)/2` quantile estimates, and the running maximum; each
/// observation adjusts the inner markers with a piecewise-parabolic
/// interpolation. See the module docs for the tested error bound.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Observations seen so far.
    count: u64,
    /// Marker heights (estimates).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    rates: [f64; 5],
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    #[must_use]
    pub fn new(q: f64) -> P2Quantile {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        P2Quantile {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            rates: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// The target quantile.
    #[must_use]
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        #[allow(clippy::cast_possible_truncation)]
        let n = self.count as usize;
        self.count += 1;
        if n < 5 {
            // Exact phase: collect and keep sorted.
            self.heights[n] = x;
            let mut i = n;
            while i > 0 && self.heights[i - 1] > self.heights[i] {
                self.heights.swap(i - 1, i);
                i -= 1;
            }
            return;
        }
        // Locate the cell, updating the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.rates[i];
        }
        // Adjust the three inner markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let monotone =
                    self.heights[i - 1] < candidate && candidate < self.heights[i + 1];
                self.heights[i] = if monotone {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved
    /// by `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (n_prev, n_cur, n_next) =
            (self.positions[i - 1], self.positions[i], self.positions[i + 1]);
        let (h_prev, h_cur, h_next) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        h_cur
            + d / (n_next - n_prev)
                * ((n_cur - n_prev + d) * (h_next - h_cur) / (n_next - n_cur)
                    + (n_next - n_cur - d) * (h_cur - h_prev) / (n_cur - n_prev))
    }

    /// Linear fallback when the parabolic prediction breaks monotonicity.
    fn linear(&self, i: usize, d: f64) -> f64 {
        #[allow(clippy::cast_possible_truncation)]
        let j = (i as f64 + d) as usize;
        self.heights[i] + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate: exact for `n <= 5`, the central marker beyond.
    /// Returns `None` before any observation.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            #[allow(clippy::cast_possible_truncation)]
            n @ 1..=5 => {
                let n = n as usize;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let rank = ((n - 1) as f64 * self.q).round() as usize;
                Some(self.heights[rank.min(n - 1)])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_match_sorted_vector() {
        let values = [3u32, 0, 7, 7, 2, 9, 0, 4];
        let mut cells = CountCells::new(10);
        for &v in &values {
            cells.incr(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for (rank, &v) in sorted.iter().enumerate() {
            assert_eq!(cells.value_at_rank(rank as u64), v);
        }
        assert_eq!(cells.total(), 8);
        assert_eq!(cells.sum(), values.iter().map(|&v| u64::from(v)).sum());
    }

    #[test]
    fn cells_quantile_matches_index_convention() {
        let values = [5u32, 1, 3, 8, 8, 2, 0];
        let mut cells = CountCells::new(8);
        for &v in &values {
            cells.incr(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for &f in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = ((sorted.len() - 1) as f64 * f).round() as usize;
            assert_eq!(cells.quantile(f), Some(sorted[idx]), "fraction {f}");
        }
        assert_eq!(CountCells::new(3).quantile(0.5), None);
    }

    #[test]
    fn cells_shift_and_decr_track_mutations() {
        let mut cells = CountCells::new(4);
        cells.incr(0);
        cells.incr(0);
        cells.shift(0, 1);
        cells.shift(1, 2);
        assert_eq!(cells.counts(), &[1, 0, 1, 0, 0]);
        cells.decr(2);
        assert_eq!(cells.total(), 1);
        assert_eq!(cells.value_at_rank(0), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cells_decr_empty_value_panics() {
        CountCells::new(4).decr(2);
    }

    #[test]
    fn p2_exact_below_six_observations() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), None);
        for x in [9.0, 1.0, 5.0] {
            p2.observe(x);
        }
        assert_eq!(p2.estimate(), Some(5.0));
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut p2 = P2Quantile::new(0.5);
        // Deterministic low-discrepancy walk over [0, 1000).
        let mut x = 17u64;
        let mut seen = Vec::new();
        for _ in 0..2_000 {
            x = (x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)) % 1_000;
            #[allow(clippy::cast_precision_loss)]
            let v = x as f64;
            p2.observe(v);
            seen.push(v);
        }
        seen.sort_by(f64::total_cmp);
        let exact = seen[seen.len() / 2];
        let estimate = p2.estimate().expect("stream was non-empty");
        assert!(
            (estimate - exact).abs() < 100.0,
            "estimate {estimate} too far from exact median {exact}"
        );
    }

    #[test]
    fn p2_is_deterministic_and_bounded() {
        let stream: Vec<f64> = (0..500).map(|i| f64::from((i * 37) % 113)).collect();
        let run = || {
            let mut p2 = P2Quantile::new(0.95);
            for &x in &stream {
                p2.observe(x);
            }
            p2.estimate().expect("non-empty")
        };
        let (a, b) = (run(), run());
        assert!(a.to_bits() == b.to_bits(), "same stream, same bits");
        let (min, max) = (0.0, 112.0);
        assert!((min..=max).contains(&a), "estimate {a} escaped [min, max]");
    }
}
