//! The long-run heartbeat: wall-clock-cadenced progress records for
//! runs too long to babysit.
//!
//! A [`HeartbeatEmitter`] writes two artifacts into a run directory:
//!
//! * `run.heartbeat.jsonl` — an append-only stream: one `meta` header
//!   line (command, seed, target rounds, cadence), then one `beat`
//!   line per emission with round, rounds/sec, ETA to the configured
//!   round budget, the swarm-level phase, entropy, observer wall-time
//!   share, and current/peak RSS;
//! * `run.status.json` — the latest beat plus run state, replaced
//!   atomically (tmp file + rename) on every emission so a concurrent
//!   reader (`btlab watch`) never sees a torn document.
//!
//! # Determinism contract
//!
//! The heartbeat is an observer: it reads engine state handed to it in
//! a [`HeartbeatPulse`], makes **no model-RNG calls**, and feeds
//! nothing back — so attaching it leaves a same-seed run
//! byte-identical (locked by `crates/swarm/tests/determinism.rs`).
//! The *cadence* is wall-clock time, which means the heartbeat stream
//! itself is not deterministic (beat count and timing vary run to
//! run); only the model outputs are. This module is the one sanctioned
//! home for wall-clock reads outside the bench drivers, which is why
//! `bt-lint` applies `det-wall-clock` here and the waiver below keeps
//! every clock read on the audited record. Code that needs a wall
//! stopwatch (e.g. `btlab watch` stall detection) should use
//! [`WallTimer`] instead of touching the clock directly.

// Audited: the heartbeat subsystem IS the sanctioned wall-clock
// boundary — cadence, ETA, and stall detection are wall-time questions
// by definition, and none of it feeds back into model state.
// bt-lint: allow-file(det-wall-clock)

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::mem;
use crate::registry::Registry;

/// Schema version stamped into the stream header and the status file.
pub const HEARTBEAT_SCHEMA_VERSION: u32 = 1;

/// File name of the append-only heartbeat stream inside a run dir.
pub const HEARTBEAT_STREAM_FILE: &str = "run.heartbeat.jsonl";

/// File name of the atomically-replaced status document.
pub const RUN_STATUS_FILE: &str = "run.status.json";

/// The stream header: first line of `run.heartbeat.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatMeta {
    /// Stream schema version ([`HEARTBEAT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Command that produced the run (`swarm`, `swarm_scale`, …).
    pub command: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// The configured round budget ETAs count down to.
    pub target_rounds: u64,
    /// Configured emission cadence in seconds of wall time.
    pub interval_secs: f64,
}

/// One heartbeat: a progress snapshot at a wall-clock instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Simulation round at emission time.
    pub round: u64,
    /// Wall seconds since the emitter was created.
    pub elapsed_secs: f64,
    /// Sustained throughput so far (`round / elapsed_secs`).
    pub rounds_per_sec: f64,
    /// Estimated wall seconds to the configured round budget at the
    /// sustained rate; 0 when the run is done or the rate is unknown.
    pub eta_secs: f64,
    /// Swarm-level phase label (see [`swarm_phase`]).
    pub phase: String,
    /// Replication entropy of the swarm at emission time.
    pub entropy: f64,
    /// Leecher population at emission time.
    pub population: u64,
    /// Observer share of wall time so far (`obs.*` timers / elapsed).
    pub obs_share: f64,
    /// Current resident-set size in bytes (0 off-procfs).
    pub rss_bytes: u64,
    /// Peak resident-set size in bytes (0 off-procfs).
    pub peak_rss_bytes: u64,
}

/// One line of the heartbeat stream, tagged by `type`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum HeartbeatRecord {
    /// The stream header; exactly one, first.
    Meta(HeartbeatMeta),
    /// A progress snapshot.
    Beat(Heartbeat),
}

/// The atomically-replaced `run.status.json` document: the stream
/// header, the latest beat, and the run state — everything a watcher
/// needs without replaying the stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStatus {
    /// Schema version ([`HEARTBEAT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// `"running"` until the final beat, then `"finished"`.
    pub state: String,
    /// Command that produced the run.
    pub command: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// The configured round budget.
    pub target_rounds: u64,
    /// Emission sequence number; a watcher detects liveness by this
    /// (and the rest of the document) changing between polls.
    pub beats: u64,
    /// The latest progress snapshot.
    pub last: Heartbeat,
}

impl RunStatus {
    /// Whether the run has written its final beat.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.state == "finished"
    }

    /// Progress toward the round budget in `0.0..=1.0` (1 when the
    /// budget is 0, i.e. unbounded runs report full progress).
    #[must_use]
    pub fn progress(&self) -> f64 {
        if self.target_rounds == 0 {
            return 1.0;
        }
        (self.last.round as f64 / self.target_rounds as f64).clamp(0.0, 1.0)
    }
}

/// Construction knobs for a [`HeartbeatEmitter`].
#[derive(Debug, Clone)]
pub struct HeartbeatOptions {
    /// Run directory both artifacts land in (created if missing).
    pub dir: PathBuf,
    /// Wall-clock emission cadence; `Duration::ZERO` beats every call.
    pub interval: Duration,
    /// Command label stamped into the header.
    pub command: String,
    /// RNG seed stamped into the header.
    pub seed: u64,
    /// Round budget ETAs count down to.
    pub target_rounds: u64,
}

/// Writes the heartbeat stream and status document for one run. See
/// the module docs for the determinism contract.
pub struct HeartbeatEmitter {
    meta: HeartbeatMeta,
    dir: PathBuf,
    stream: std::fs::File,
    registry: Registry,
    started: Instant,
    last_emit: Option<Instant>,
    beats: u64,
    finished: bool,
}

impl std::fmt::Debug for HeartbeatEmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeartbeatEmitter")
            .field("dir", &self.dir)
            .field("beats", &self.beats)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

/// The engine-provided slice of a heartbeat: everything that comes
/// from model state rather than the wall clock. Building one makes no
/// RNG calls and costs O(pieces).
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatPulse {
    /// Current simulation round.
    pub round: u64,
    /// Current leecher population.
    pub population: u64,
    /// Current replication entropy.
    pub entropy: f64,
    /// Swarm-level phase label (see [`swarm_phase`]).
    pub phase: &'static str,
}

impl HeartbeatEmitter {
    /// Creates the run directory, writes the stream header, and
    /// publishes an initial `running` status (round 0) so a watcher
    /// can attach before the first beat. `registry` supplies the
    /// `obs.*` timer totals behind the reported `obs_share`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory or either
    /// artifact.
    pub fn new(options: HeartbeatOptions, registry: Registry) -> std::io::Result<HeartbeatEmitter> {
        std::fs::create_dir_all(&options.dir)?;
        let meta = HeartbeatMeta {
            schema_version: HEARTBEAT_SCHEMA_VERSION,
            command: options.command,
            seed: options.seed,
            target_rounds: options.target_rounds,
            interval_secs: options.interval.as_secs_f64(),
        };
        let mut stream = std::fs::File::create(options.dir.join(HEARTBEAT_STREAM_FILE))?;
        write_record(&mut stream, &HeartbeatRecord::Meta(meta.clone()))?;
        stream.flush()?;
        let emitter = HeartbeatEmitter {
            meta,
            dir: options.dir,
            stream,
            registry,
            started: Instant::now(),
            last_emit: None,
            beats: 0,
            finished: false,
        };
        let initial = emitter.snapshot(&HeartbeatPulse {
            round: 0,
            population: 0,
            entropy: 0.0,
            phase: "bootstrap",
        });
        emitter.write_status(&initial, "running")?;
        Ok(emitter)
    }

    /// Whether the wall-clock cadence says a beat is due. Cheap (one
    /// monotonic clock read); the engine calls this every round and
    /// only builds a pulse when it answers yes.
    #[must_use]
    pub fn due(&self) -> bool {
        if self.finished {
            return false;
        }
        match self.last_emit {
            None => true,
            Some(at) => at.elapsed().as_secs_f64() >= self.interval_secs(),
        }
    }

    /// The configured cadence in seconds.
    #[must_use]
    pub fn interval_secs(&self) -> f64 {
        self.meta.interval_secs
    }

    /// Beats emitted so far.
    #[must_use]
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Whether the final beat has been written.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Emits one beat: appends to the stream and atomically replaces
    /// the status document. Callers normally guard with [`Self::due`];
    /// calling when not due emits anyway. No-op after [`Self::finish`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from either artifact.
    pub fn beat(&mut self, pulse: &HeartbeatPulse) -> std::io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.write_beat(pulse, "running")
    }

    /// Writes the final beat (regardless of cadence) and flips the
    /// status document to `finished`. Idempotent.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from either artifact.
    pub fn finish(&mut self, pulse: &HeartbeatPulse) -> std::io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.write_beat(pulse, "finished")?;
        self.finished = true;
        Ok(())
    }

    // Named to avoid colliding with other sinks' `emit` methods: the
    // lint call graph resolves untyped receivers by name, and a shared
    // name would smear this module's (audited) clock taint onto them.
    fn write_beat(&mut self, pulse: &HeartbeatPulse, state: &str) -> std::io::Result<()> {
        let beat = self.snapshot(pulse);
        write_record(&mut self.stream, &HeartbeatRecord::Beat(beat.clone()))?;
        self.stream.flush()?;
        self.beats += 1;
        self.last_emit = Some(Instant::now());
        self.write_status(&beat, state)
    }

    /// Builds a [`Heartbeat`] from the pulse plus the wall-clock side:
    /// elapsed time, throughput, ETA, observer share, and RSS.
    fn snapshot(&self, pulse: &HeartbeatPulse) -> Heartbeat {
        let elapsed_secs = self.started.elapsed().as_secs_f64();
        let rounds_per_sec = if elapsed_secs > 0.0 {
            pulse.round as f64 / elapsed_secs
        } else {
            0.0
        };
        let remaining = self.meta.target_rounds.saturating_sub(pulse.round);
        let eta_secs = if rounds_per_sec > 0.0 {
            remaining as f64 / rounds_per_sec
        } else {
            0.0
        };
        let obs_wall_secs: f64 = self
            .registry
            .timer_snapshots()
            .iter()
            .filter(|(name, _)| name.starts_with("obs."))
            .map(|(_, snapshot)| snapshot.total_secs)
            .sum();
        let obs_share = if elapsed_secs > 0.0 {
            (obs_wall_secs / elapsed_secs).min(1.0)
        } else {
            0.0
        };
        let memory = mem::sample_memory();
        Heartbeat {
            round: pulse.round,
            elapsed_secs,
            rounds_per_sec,
            eta_secs,
            phase: pulse.phase.to_string(),
            entropy: pulse.entropy,
            population: pulse.population,
            obs_share,
            rss_bytes: memory.rss_bytes,
            peak_rss_bytes: memory.peak_rss_bytes,
        }
    }

    /// Replaces `run.status.json` atomically: serialize to a `.tmp`
    /// sibling, then rename over the target so readers see either the
    /// old document or the new one, never a torn write.
    fn write_status(&self, beat: &Heartbeat, state: &str) -> std::io::Result<()> {
        let status = RunStatus {
            schema_version: HEARTBEAT_SCHEMA_VERSION,
            state: state.to_string(),
            command: self.meta.command.clone(),
            seed: self.meta.seed,
            target_rounds: self.meta.target_rounds,
            beats: self.beats,
            last: beat.clone(),
        };
        let bytes = serde_json::to_string_pretty(&status)
            .map_err(to_io)?
            .into_bytes();
        let tmp = self.dir.join(format!("{RUN_STATUS_FILE}.tmp"));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.dir.join(RUN_STATUS_FILE))
    }
}

fn to_io(e: serde_json::Error) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Serializes one record as a JSON line.
fn write_record<W: Write>(writer: &mut W, record: &HeartbeatRecord) -> std::io::Result<()> {
    let mut line = serde_json::to_string(record).map_err(to_io)?.into_bytes();
    line.push(b'\n');
    writer.write_all(&line)
}

/// Reads `run.status.json`. A missing file propagates as
/// `ErrorKind::NotFound`; a torn/garbage document or a schema-version
/// mismatch maps to `ErrorKind::InvalidData`.
///
/// # Errors
///
/// See above — every failure is an `io::Error` with a telling kind.
pub fn read_status(path: &Path) -> std::io::Result<RunStatus> {
    let bytes = std::fs::read(path)?;
    let status: RunStatus = serde_json::from_slice(&bytes)
        .map_err(|e| invalid(format!("{}: malformed status document: {e}", path.display())))?;
    if status.schema_version != HEARTBEAT_SCHEMA_VERSION {
        return Err(invalid(format!(
            "{}: status schema_version {} does not match the supported version {}",
            path.display(),
            status.schema_version,
            HEARTBEAT_SCHEMA_VERSION
        )));
    }
    Ok(status)
}

/// Parses a heartbeat stream: the `meta` header then every *complete*
/// beat line.
///
/// Truncation tolerance: the stream is append-only and a reader may
/// catch the writer mid-line, so any bytes after the final newline are
/// treated as an in-flight partial record and ignored. Every
/// newline-terminated line, by contrast, must parse — a malformed
/// interior line is corruption, not truncation.
///
/// # Errors
///
/// `ErrorKind::InvalidData` when the first complete line is not a
/// `meta` header (headerless stream), on a schema-version mismatch, on
/// a duplicate header, or on a malformed complete line (reported with
/// its 1-based line number).
pub fn read_heartbeat<R: std::io::Read>(
    mut reader: R,
) -> std::io::Result<(HeartbeatMeta, Vec<Heartbeat>)> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    // Bytes after the last newline are an in-flight partial write.
    let complete = text
        .rfind('\n')
        .and_then(|i| text.get(..=i))
        .unwrap_or("");
    let mut meta: Option<HeartbeatMeta> = None;
    let mut beats = Vec::new();
    for (index, line) in complete.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: HeartbeatRecord = serde_json::from_str(line).map_err(|e| {
            invalid(format!("heartbeat stream line {}: {e}", index + 1))
        })?;
        match record {
            HeartbeatRecord::Meta(m) => {
                if meta.is_some() {
                    return Err(invalid(format!(
                        "heartbeat stream line {}: duplicate meta header",
                        index + 1
                    )));
                }
                if !beats.is_empty() {
                    return Err(invalid(format!(
                        "heartbeat stream line {}: meta header after beat records",
                        index + 1
                    )));
                }
                if m.schema_version != HEARTBEAT_SCHEMA_VERSION {
                    return Err(invalid(format!(
                        "heartbeat stream schema_version {} does not match the supported \
                         version {}",
                        m.schema_version, HEARTBEAT_SCHEMA_VERSION
                    )));
                }
                meta = Some(m);
            }
            HeartbeatRecord::Beat(beat) => {
                if meta.is_none() {
                    return Err(invalid(
                        "heartbeat stream has no meta header (line 1 must be a meta record)"
                            .to_string(),
                    ));
                }
                beats.push(beat);
            }
        }
    }
    match meta {
        Some(meta) => Ok((meta, beats)),
        None => Err(invalid(
            "heartbeat stream has no meta header (line 1 must be a meta record)".to_string(),
        )),
    }
}

/// Classifies the swarm-level phase from aggregate state, mirroring
/// the paper's §3.2 per-peer phases at the population level: the run
/// is `bootstrap` while the median peer is still acquiring its first
/// tradable piece, `last` once the median peer is within the final 10%
/// of pieces, `done` when the population has drained, and `efficient`
/// in between.
#[must_use]
pub fn swarm_phase(population: u64, median_pieces: u64, pieces: u32) -> &'static str {
    let pieces = u64::from(pieces);
    if population == 0 {
        "done"
    } else if median_pieces <= 1 {
        "bootstrap"
    } else if median_pieces >= pieces.saturating_sub((pieces / 10).max(1)) {
        "last"
    } else {
        "efficient"
    }
}

/// A wall-clock stopwatch for code *outside* the simulation — watcher
/// stall detection, CLI elapsed displays. Lives here so every wall
/// clock read in the workspace stays inside the one audited module.
#[derive(Debug)]
pub struct WallTimer(Instant);

impl WallTimer {
    /// Starts the stopwatch.
    #[must_use]
    pub fn start() -> WallTimer {
        WallTimer(Instant::now())
    }

    /// Wall seconds since [`WallTimer::start`].
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Restarts the stopwatch.
    pub fn reset(&mut self) {
        self.0 = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bt_obs_heartbeat_{}_{label}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn options(dir: &Path) -> HeartbeatOptions {
        HeartbeatOptions {
            dir: dir.to_path_buf(),
            interval: Duration::ZERO,
            command: "swarm".to_string(),
            seed: 42,
            target_rounds: 100,
        }
    }

    fn pulse(round: u64) -> HeartbeatPulse {
        HeartbeatPulse {
            round,
            population: 20,
            entropy: 3.5,
            phase: "efficient",
        }
    }

    #[test]
    fn emitter_round_trips_through_the_stream() {
        let dir = temp_dir("roundtrip");
        let mut emitter =
            HeartbeatEmitter::new(options(&dir), Registry::new()).expect("emitter starts");
        assert!(emitter.due(), "first beat is always due");
        emitter.beat(&pulse(10)).expect("beat writes");
        emitter.beat(&pulse(20)).expect("beat writes");
        emitter.finish(&pulse(100)).expect("final beat writes");
        emitter.finish(&pulse(100)).expect("finish is idempotent");
        assert_eq!(emitter.beats(), 3, "idempotent finish emits nothing");

        let file = std::fs::File::open(dir.join(HEARTBEAT_STREAM_FILE)).expect("stream exists");
        let (meta, beats) = read_heartbeat(file).expect("stream parses");
        assert_eq!(meta.command, "swarm");
        assert_eq!(meta.seed, 42);
        assert_eq!(meta.target_rounds, 100);
        assert_eq!(
            beats.iter().map(|b| b.round).collect::<Vec<_>>(),
            vec![10, 20, 100]
        );
        assert!(beats.iter().all(|b| b.phase == "efficient"));

        let status = read_status(&dir.join(RUN_STATUS_FILE)).expect("status parses");
        assert!(status.is_finished());
        assert_eq!(status.last.round, 100);
        assert_eq!(status.beats, 3);
        assert!((status.progress() - 1.0).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_exists_before_the_first_beat() {
        let dir = temp_dir("initial");
        let emitter =
            HeartbeatEmitter::new(options(&dir), Registry::new()).expect("emitter starts");
        let status = read_status(&dir.join(RUN_STATUS_FILE)).expect("initial status exists");
        assert!(!status.is_finished());
        assert_eq!(status.last.round, 0);
        assert_eq!(status.beats, 0);
        drop(emitter);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nonzero_interval_throttles_due() {
        let dir = temp_dir("throttle");
        let mut opts = options(&dir);
        opts.interval = Duration::from_secs(3600);
        let mut emitter = HeartbeatEmitter::new(opts, Registry::new()).expect("emitter starts");
        assert!(emitter.due(), "first beat is due immediately");
        emitter.beat(&pulse(1)).expect("beat writes");
        assert!(!emitter.due(), "an hour has not passed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_stream_is_invalid_data() {
        let line = serde_json::to_string(&HeartbeatRecord::Beat(Heartbeat {
            round: 1,
            elapsed_secs: 0.1,
            rounds_per_sec: 10.0,
            eta_secs: 9.9,
            phase: "efficient".to_string(),
            entropy: 3.0,
            population: 5,
            obs_share: 0.01,
            rss_bytes: 1,
            peak_rss_bytes: 2,
        }))
        .unwrap();
        let err = read_heartbeat(format!("{line}\n").as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("no meta header"), "{err}");

        let err = read_heartbeat(&b""[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn swarm_phase_tracks_the_paper_boundaries() {
        assert_eq!(swarm_phase(0, 50, 100), "done");
        assert_eq!(swarm_phase(10, 0, 100), "bootstrap");
        assert_eq!(swarm_phase(10, 1, 100), "bootstrap");
        assert_eq!(swarm_phase(10, 2, 100), "efficient");
        assert_eq!(swarm_phase(10, 89, 100), "efficient");
        assert_eq!(swarm_phase(10, 90, 100), "last");
        assert_eq!(swarm_phase(10, 100, 100), "last");
        // Tiny piece counts still classify sanely.
        assert_eq!(swarm_phase(5, 2, 3), "last");
        assert_eq!(swarm_phase(5, 1, 3), "bootstrap");
    }

    #[test]
    fn wall_timer_moves_forward() {
        let mut timer = WallTimer::start();
        assert!(timer.elapsed_secs() >= 0.0);
        timer.reset();
        assert!(timer.elapsed_secs() >= 0.0);
    }
}
