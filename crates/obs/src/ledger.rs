//! The cross-run regression ledger.
//!
//! A single frozen baseline (`results/baseline/BENCH_swarm.json`) tells
//! you whether today's build regressed against one blessed run; it says
//! nothing about the *trajectory* — a 2 % slide per PR that never trips
//! a 10 % tolerance, or a monitor violation that appeared three runs
//! ago. The ledger is the longitudinal complement: every `swarm`,
//! `doctor`, and bench run appends one compact [`LedgerRecord`] line to
//! `results/ledger.jsonl`, and `btlab trend` reads the file back to
//! render per-metric trajectories over the last K runs.
//!
//! Records separate **identity** fields (command, seed, config hash,
//! pipeline, rounds, population, violations — a pure function of the
//! run's inputs) from **timing** fields (wall clock, rounds/sec, stage
//! p95s — machine-dependent). [`LedgerRecord::normalized`] zeroes the
//! timing fields so the determinism suite can assert that two same-seed
//! runs produce byte-identical records up to wall-clock noise.

use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::manifest::RunManifest;

/// Schema version stamped into every ledger record.
pub const LEDGER_SCHEMA_VERSION: u32 = 1;

/// One run's compact health-and-performance record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRecord {
    /// Record schema version ([`LEDGER_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The subcommand or binary that produced the run.
    pub command: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// FNV-1a hash of the serialized configuration, as hex.
    pub config_hash: String,
    /// Active round-pipeline stage names, in execution order.
    pub pipeline: Vec<String>,
    /// Largest simultaneous peer population observed.
    pub peak_population: u64,
    /// Rounds the run executed.
    pub rounds: u64,
    /// Total wall-clock time of the run, in seconds (timing field).
    pub wall_clock_secs: f64,
    /// Sustained round throughput (timing field; 0 when unknown).
    pub rounds_per_sec: f64,
    /// Per-stage p95 latency in nanoseconds, from the `round.*` phase
    /// timers, in pipeline order (timing field).
    pub stage_p95_ns: Vec<(String, u64)>,
    /// Invariant violations the run's monitors found (0 for unmonitored
    /// runs).
    pub violations: u64,
    /// Observer share of the run's wall clock (timing field; 0 in
    /// records written before the field existed).
    #[serde(default)]
    pub obs_share: f64,
    /// Worker-thread count the run's parallel plan phases used (0 in
    /// records written before the field existed; treat as 1). A
    /// throughput knob, not part of the run's deterministic identity —
    /// [`LedgerRecord::normalized`] zeroes it with the other timing
    /// fields — but kept raw so `btlab trend` can chart rounds/sec per
    /// thread count.
    #[serde(default)]
    pub threads: u32,
    /// Peak resident-set size of the run's process in bytes (`VmHWM`;
    /// 0 in records written before the field existed or off procfs).
    /// Machine-dependent, so [`LedgerRecord::normalized`] zeroes it
    /// with the timing fields; `btlab trend` and the `--mem-budget`
    /// compare gate read the raw value.
    #[serde(default)]
    pub peak_rss_bytes: u64,
}

impl LedgerRecord {
    /// Builds a record from a finished [`RunManifest`] plus the monitor
    /// violation count. Rounds come from the `swarm.rounds` counter and
    /// stage p95s from the `round.*` phase timers.
    #[must_use]
    pub fn from_manifest(manifest: &RunManifest, violations: u64) -> LedgerRecord {
        let rounds = manifest.counter("swarm.rounds").unwrap_or(0);
        let rounds_per_sec = if rounds > 0 && manifest.wall_clock_secs > 0.0 {
            rounds as f64 / manifest.wall_clock_secs
        } else {
            0.0
        };
        let stage_p95_ns = manifest
            .phase_timers
            .iter()
            .filter(|(name, _)| name.starts_with("round."))
            .map(|(name, t)| (name.clone(), t.p95_ns.unwrap_or(0)))
            .collect();
        LedgerRecord {
            schema_version: LEDGER_SCHEMA_VERSION,
            command: manifest.command.clone(),
            seed: manifest.seed,
            config_hash: manifest.config_hash.clone(),
            pipeline: manifest.pipeline.clone(),
            peak_population: manifest.peak_population,
            rounds,
            wall_clock_secs: manifest.wall_clock_secs,
            rounds_per_sec,
            stage_p95_ns,
            violations,
            obs_share: manifest.obs_share,
            threads: manifest.threads,
            peak_rss_bytes: manifest.peak_rss_bytes,
        }
    }

    /// A copy with the timing fields (wall clock, rounds/sec, stage
    /// p95 values) zeroed, leaving only the deterministic identity of
    /// the run. Two same-seed monitored runs must serialize normalized
    /// records to identical bytes — the determinism suite asserts this.
    #[must_use]
    pub fn normalized(&self) -> LedgerRecord {
        LedgerRecord {
            wall_clock_secs: 0.0,
            rounds_per_sec: 0.0,
            obs_share: 0.0,
            threads: 0,
            peak_rss_bytes: 0,
            stage_p95_ns: self
                .stage_p95_ns
                .iter()
                .map(|(name, _)| (name.clone(), 0))
                .collect(),
            ..self.clone()
        }
    }

    /// The p95 of a `round.<stage>` timer, if recorded.
    #[must_use]
    pub fn stage_p95(&self, timer: &str) -> Option<u64> {
        self.stage_p95_ns
            .iter()
            .find(|(name, _)| name == timer)
            .map(|(_, ns)| *ns)
    }

    /// Serializes to one compact JSON line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (which would indicate a schema bug).
    pub fn to_jsonl(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }
}

/// The ledger path every producer shares: `$BT_LEDGER_PATH` when set,
/// else `ledger.jsonl` under `$BT_MANIFEST_DIR` (or `results/`), so the
/// ledger lands next to the run manifests by default.
#[must_use]
pub fn default_ledger_path() -> std::path::PathBuf {
    if let Some(path) = std::env::var_os("BT_LEDGER_PATH") {
        return std::path::PathBuf::from(path);
    }
    let dir = std::env::var_os("BT_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"));
    dir.join("ledger.jsonl")
}

/// Appends one record to the ledger at `path`, creating parent
/// directories and the file itself on first use.
///
/// # Errors
///
/// Propagates filesystem errors, and serializer errors mapped to
/// [`std::io::ErrorKind::InvalidData`].
pub fn append_record(path: &Path, record: &LedgerRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let line = record
        .to_jsonl()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(line.as_bytes())?;
    file.write_all(b"\n")
}

/// Default ledger size cap: generous, but bounded (16 MiB holds years
/// of per-run records at a few hundred bytes each).
pub const DEFAULT_MAX_LEDGER_BYTES: u64 = 16 * 1024 * 1024;

/// Rotates the ledger at `path` once it exceeds `max_bytes`: the older
/// half (by bytes) of its lines moves to `<path>.1` (replacing any
/// previous archive), and the file is rewritten with the newest lines
/// only. Returns the number of lines archived, or `None` when the file
/// is absent or under the cap. A `max_bytes` of 0 disables rotation.
///
/// # Errors
///
/// Propagates filesystem errors. Line *contents* are not validated —
/// rotation is a byte-budget operation, so a damaged ledger still
/// rotates (and still fails loudly on the next [`read_ledger`]).
pub fn rotate_ledger(path: &Path, max_bytes: u64) -> std::io::Result<Option<usize>> {
    if max_bytes == 0 {
        return Ok(None);
    }
    let metadata = match std::fs::metadata(path) {
        Ok(m) => m,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if metadata.len() <= max_bytes {
        return Ok(None);
    }
    let text = std::fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().collect();
    // Keep the newest lines fitting in half the cap, so repeated appends
    // do not re-rotate on every run.
    let budget = max_bytes / 2;
    let mut kept_bytes = 0u64;
    let mut first_kept = lines.len();
    for (index, line) in lines.iter().enumerate().rev() {
        let cost = line.len() as u64 + 1;
        // Always keep at least the newest line, however large.
        if kept_bytes + cost > budget && first_kept < lines.len() {
            break;
        }
        kept_bytes += cost;
        first_kept = index;
    }
    let archived = first_kept;
    if archived == 0 {
        return Ok(None);
    }
    let archive_path = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".1");
        std::path::PathBuf::from(name)
    };
    let mut archive = String::new();
    for line in lines.iter().take(archived) {
        archive.push_str(line);
        archive.push('\n');
    }
    std::fs::write(&archive_path, archive)?;
    let mut kept = String::new();
    for line in lines.iter().skip(archived) {
        kept.push_str(line);
        kept.push('\n');
    }
    std::fs::write(path, kept)?;
    Ok(Some(archived))
}

/// Reads every record from the ledger at `path`, oldest first. Blank
/// lines are skipped; a malformed line is an error naming its 1-based
/// line number (the ledger is append-only machine output, so damage
/// means something is wrong enough to surface, not skip).
///
/// # Errors
///
/// Propagates filesystem errors; malformed lines map to
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_ledger(path: &Path) -> std::io::Result<Vec<LedgerRecord>> {
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: LedgerRecord = serde_json::from_str(line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("ledger line {}: {e}", index + 1),
            )
        })?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::fnv1a_hex;
    use crate::registry::Registry;
    use std::time::Duration;

    fn sample_record(seed: u64) -> LedgerRecord {
        let registry = Registry::new();
        registry.counter("swarm.rounds").add(50);
        registry
            .timer("round.exchange")
            .record(Duration::from_millis(4));
        registry.timer("setup").record(Duration::from_millis(1));
        let mut manifest = RunManifest::new("swarm", fnv1a_hex(b"cfg"), seed);
        manifest.pipeline = vec!["exchange".to_string()];
        manifest.peak_population = 99;
        manifest.finish(&registry, Duration::from_secs(2));
        LedgerRecord::from_manifest(&manifest, 3)
    }

    #[test]
    fn record_derives_from_manifest() {
        let record = sample_record(7);
        assert_eq!(record.schema_version, LEDGER_SCHEMA_VERSION);
        assert_eq!(record.command, "swarm");
        assert_eq!(record.seed, 7);
        assert_eq!(record.rounds, 50);
        assert_eq!(record.violations, 3);
        assert!((record.rounds_per_sec - 25.0).abs() < 1e-9);
        assert!(record.stage_p95("round.exchange").is_some());
        assert!(
            record.stage_p95("setup").is_none(),
            "non-round timers stay out of the ledger"
        );
    }

    #[test]
    fn normalized_zeroes_timing_but_keeps_identity() {
        let record = sample_record(7);
        let normal = record.normalized();
        assert_eq!(normal.wall_clock_secs, 0.0);
        assert_eq!(normal.rounds_per_sec, 0.0);
        assert_eq!(normal.threads, 0, "thread count is a throughput knob");
        assert_eq!(normal.stage_p95("round.exchange"), Some(0));
        assert_eq!(normal.seed, record.seed);
        assert_eq!(normal.rounds, record.rounds);
        assert_eq!(normal.violations, record.violations);
        assert_eq!(normal.config_hash, record.config_hash);
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = std::env::temp_dir().join("bt-obs-ledger-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("ledger.jsonl");
        for seed in [1u64, 2, 3] {
            append_record(&path, &sample_record(seed)).unwrap();
        }
        let records = read_ledger(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.seed).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "append order is read order"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_line_errors_with_line_number() {
        let dir = std::env::temp_dir().join("bt-obs-ledger-bad-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ledger.jsonl");
        append_record(&path, &sample_record(1)).unwrap();
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{not json\n").unwrap();
        drop(file);
        let err = read_ledger(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("ledger line 2"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Records written before `obs_share` existed must still load.
    #[test]
    fn record_tolerates_missing_obs_share() {
        let record = sample_record(4);
        let line = record.to_jsonl().unwrap();
        let value: serde_json::Value = serde_json::from_str(&line).unwrap();
        let trimmed = match value {
            serde_json::Value::Object(entries) => serde_json::Value::Object(
                entries
                    .into_iter()
                    .filter(|(key, _)| key != "obs_share")
                    .collect(),
            ),
            other => other,
        };
        let back: LedgerRecord =
            serde_json::from_str(&serde_json::to_string(&trimmed).unwrap()).unwrap();
        assert!(back.obs_share.abs() < f64::EPSILON);
        assert_eq!(back.seed, record.seed);
    }

    // Records written before `peak_rss_bytes` existed must still load,
    // and normalization zeroes the machine-dependent value.
    #[test]
    fn record_tolerates_missing_peak_rss() {
        let record = sample_record(5);
        let line = record.to_jsonl().unwrap();
        let value: serde_json::Value = serde_json::from_str(&line).unwrap();
        let trimmed = match value {
            serde_json::Value::Object(entries) => serde_json::Value::Object(
                entries
                    .into_iter()
                    .filter(|(key, _)| key != "peak_rss_bytes")
                    .collect(),
            ),
            other => other,
        };
        let back: LedgerRecord =
            serde_json::from_str(&serde_json::to_string(&trimmed).unwrap()).unwrap();
        assert_eq!(back.peak_rss_bytes, 0);
        assert_eq!(back.seed, record.seed);
        assert_eq!(record.normalized().peak_rss_bytes, 0);
        if cfg!(target_os = "linux") {
            assert!(
                record.peak_rss_bytes > 0,
                "manifest finish samples memory on linux"
            );
        }
    }

    #[test]
    fn rotation_archives_older_half_and_keeps_newest() {
        let dir = std::env::temp_dir().join("bt-obs-ledger-rotate-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ledger.jsonl");
        for seed in 0..40u64 {
            append_record(&path, &sample_record(seed)).unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        // Under the cap: no-op.
        assert_eq!(rotate_ledger(&path, full_len + 1).unwrap(), None);
        // Over the cap: older lines move to the archive.
        let archived = rotate_ledger(&path, full_len / 2)
            .unwrap()
            .expect("rotation happened");
        assert!(archived > 0);
        let kept = read_ledger(&path).unwrap();
        assert_eq!(kept.len() + archived, 40);
        assert_eq!(
            kept.last().unwrap().seed,
            39,
            "newest record survives rotation"
        );
        assert!(std::fs::metadata(&path).unwrap().len() <= full_len / 4 + 512);
        let archive_path = dir.join("ledger.jsonl.1");
        let old = read_ledger(&archive_path).unwrap();
        assert_eq!(old.len(), archived);
        assert_eq!(old[0].seed, 0, "archive holds the oldest records");
        // Missing file and zero cap are both no-ops.
        assert_eq!(rotate_ledger(&dir.join("absent.jsonl"), 10).unwrap(), None);
        assert_eq!(rotate_ledger(&path, 0).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_is_single_line_and_stable() {
        let record = sample_record(9).normalized();
        let line = record.to_jsonl().unwrap();
        assert!(!line.contains('\n'));
        let again = sample_record(9).normalized().to_jsonl().unwrap();
        assert_eq!(line, again, "normalized records serialize identically");
    }
}
