//! Observability for the multiphase BitTorrent laboratory.
//!
//! Three pieces, designed to be cheap enough to leave compiled into
//! release binaries:
//!
//! 1. **Structured logging** ([`init`], [`LogMode`], [`EnvFilter`]):
//!    installs a global `tracing` subscriber that renders events either
//!    for humans or as JSON lines. Diagnostics always go to **stderr**
//!    so figure/result output on stdout stays byte-identical whatever
//!    the log mode.
//! 2. **Metrics registry** ([`Registry`], [`Counter`], [`Timer`],
//!    [`Histogram`]): named atomic counters and monotonic timers with
//!    log-bucketed histograms, used by the swarm round loop to count
//!    per-round events and time hot phases.
//! 3. **Run manifests** ([`RunManifest`]): a small JSON document written
//!    next to result files recording what ran (config hash, seed, git
//!    revision), how long each phase took, and final counter totals.
//! 4. **Time series** ([`SeriesStore`], [`RingSeries`]): ring-buffer
//!    backed per-signal sample stores with a configurable sampling
//!    stride and bounded memory, exportable as JSON lines or CSV — the
//!    storage layer of the swarm telemetry pipeline.
//! 5. **Profiling** ([`ProfileSink`], [`ProfileReport`]): a
//!    zero-cost-when-disabled cost-attribution profiler the swarm round
//!    loop threads through its stages — per-stage wall time and work
//!    counters, per-peer attribution, folded-stacks and per-round series
//!    artifacts. Makes no RNG calls, so attaching it never perturbs a
//!    deterministic run.
//! 6. **Monitors** ([`Monitor`], [`MonitorSet`], [`MonitorReport`],
//!    [`DiagnosisBundle`]): runtime invariant checks sampled at a round
//!    cadence, with a diagnosis-bundle writer that captures forensic
//!    context when an invariant breaks. Generic over the sample type;
//!    the simulation crate supplies the concrete invariants.
//! 7. **Regression ledger** ([`LedgerRecord`], [`append_record`],
//!    [`read_ledger`]): every run appends one compact health-and-perf
//!    record to `results/ledger.jsonl` so `btlab trend` can track
//!    trajectories across runs instead of against a single baseline.
//! 8. **Streaming sketches** ([`CountCells`], [`P2Quantile`]):
//!    deterministic, dependency-free distribution summaries — exact
//!    sharded counter cells for bounded domains and a P² quantile
//!    estimator for unbounded ones — so per-sample telemetry work is
//!    sublinear in population.
//! 9. **Peer cohorts** ([`CohortSink`], [`read_cohort`]): a
//!    deterministic reservoir-sampled peer cohort whose members get
//!    full binary-framed lifecycle traces at O(cohort) cost per round,
//!    with a JSONL export path.
//! 10. **Heartbeats** ([`HeartbeatEmitter`], [`read_status`],
//!     [`read_heartbeat`]): wall-clock-cadenced progress records for
//!     long runs — an append-only `run.heartbeat.jsonl` stream plus an
//!     atomically-replaced `run.status.json` that `btlab watch` tails.
//!     The one sanctioned wall-clock module; observer-only, so
//!     attaching heartbeats never perturbs a deterministic run.
//! 11. **Memory telemetry** ([`mem`]): procfs RSS sampling
//!     (`/proc/self/statm` + `VmHWM`) for heartbeats and manifests, and
//!     the process-global allocation counters a counting allocator
//!     (feature `alloc-profile` in `bt-bench`) feeds so the profiler
//!     can attribute allocation deltas per round stage.
//!
//! # Span hierarchy
//!
//! ```text
//! sim.run                  (bt-des)   one DES drive to the horizon
//! └─ per-event dispatch    TRACE events, target "bt_des::event"
//! swarm.run                (bt-swarm) one swarm simulation
//! └─ swarm.round           DEBUG span per simulated round
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cohort;
mod filter;
mod heartbeat;
mod ledger;
mod manifest;
pub mod mem;
mod monitor;
mod profiling;
mod registry;
mod sketch;
mod subscriber;
mod timeseries;

pub use cohort::{
    acquire_source, read_cohort, write_jsonl as write_cohort_jsonl, CohortAcquire, CohortDepart,
    CohortError, CohortEvent, CohortEvict, CohortHandout, CohortJoin, CohortMeta, CohortObserve,
    CohortOptions, CohortPhase, CohortShake, CohortSink, CohortSlot, COHORT_MAGIC,
    COHORT_SCHEMA_VERSION,
};
pub use filter::EnvFilter;
pub use heartbeat::{
    read_heartbeat, read_status, swarm_phase, Heartbeat, HeartbeatEmitter, HeartbeatMeta,
    HeartbeatOptions, HeartbeatPulse, HeartbeatRecord, RunStatus, WallTimer,
    HEARTBEAT_SCHEMA_VERSION, HEARTBEAT_STREAM_FILE, RUN_STATUS_FILE,
};
pub use ledger::{
    append_record, default_ledger_path, read_ledger, rotate_ledger, LedgerRecord,
    DEFAULT_MAX_LEDGER_BYTES, LEDGER_SCHEMA_VERSION,
};
pub use manifest::{fnv1a_hex, git_describe, RunManifest, MANIFEST_SCHEMA_VERSION};
pub use monitor::{
    DiagnosisBundle, Monitor, MonitorReport, MonitorSet, Violation, MONITOR_SCHEMA_VERSION,
};
pub use profiling::{
    LatencySummary, PeerWork, ProfileOptions, ProfileReport, ProfileSink, StageProfile,
    PROFILE_SCHEMA_VERSION,
};
pub use registry::{Counter, Histogram, Registry, Timer, TimerGuard, TimerSnapshot};
pub use sketch::{CountCells, P2Quantile};
pub use subscriber::{init, init_from_env, LogMode};
pub use timeseries::{RingSeries, SeriesError, SeriesPoint, SeriesStore};
