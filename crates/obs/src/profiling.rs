//! Deterministic cost-attribution profiling for staged round loops.
//!
//! [`ProfileSink`] is the hook a round-based engine threads through its
//! hot path: [`begin_round`](ProfileSink::begin_round) /
//! [`begin_stage`](ProfileSink::begin_stage) /
//! [`add_work`](ProfileSink::add_work) /
//! [`end_stage`](ProfileSink::end_stage) /
//! [`end_round`](ProfileSink::end_round). Disabled — the default — every
//! call is an inlined branch on a `None` and returns immediately, so the
//! engine pays nothing measurable for carrying the hooks. Enabled, the
//! sink aggregates, per round and per stage:
//!
//! * wall time, log-bucketed into the shared [`Histogram`] so per-stage
//!   and whole-round p50/p95/p99 latencies come out at report time;
//! * named *work counters* — candidate comparisons, handout entries,
//!   bitfield words scanned, slab probes — the "why" behind the wall
//!   clock;
//! * per-peer cumulative work keyed by the engine's sequence-stable peer
//!   ids, so the top-K hottest peers can be ranked;
//! * a per-round [`SeriesStore`] time series of stage cost, in the same
//!   point format the telemetry pipeline streams.
//!
//! Crucially for the simulation's determinism contract, the profiler
//! makes **zero RNG calls** and never branches on sampled time, so
//! attaching it cannot perturb a same-seed run: the telemetry stream of
//! a profiled run is byte-identical to an unprofiled one.
//!
//! [`ProfileSink::write_artifacts`] emits three files: a
//! [`ProfileReport`] JSON summary, a folded-stacks text file
//! (`swarm;stage;counter count`) consumable by standard flamegraph
//! tooling, and per-round JSON lines in the telemetry
//! [`SeriesPoint`](crate::SeriesPoint) format.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

use crate::registry::Histogram;
use crate::timeseries::SeriesStore;

/// Schema version stamped into every [`ProfileReport`].
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Configuration for an enabled [`ProfileSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileOptions {
    /// RNG seed of the profiled run, echoed into the report so profiles
    /// can be matched to manifests.
    pub seed: u64,
    /// How many of the hottest peers (by cumulative attributed work) the
    /// report ranks.
    pub top_peers: usize,
    /// Sampling stride for the per-round series (1 = every round).
    pub series_stride: u64,
    /// Ring capacity per series; older rounds are evicted beyond this.
    pub series_capacity: usize,
}

impl Default for ProfileOptions {
    fn default() -> ProfileOptions {
        ProfileOptions {
            seed: 0,
            top_peers: 10,
            series_stride: 1,
            series_capacity: 4096,
        }
    }
}

/// Latency percentiles of one timing distribution, in nanoseconds.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples, in seconds.
    pub total_secs: f64,
    /// Approximate median, `None` when empty.
    pub p50_ns: Option<u64>,
    /// Approximate 95th percentile, `None` when empty.
    pub p95_ns: Option<u64>,
    /// Approximate 99th percentile, `None` when empty.
    pub p99_ns: Option<u64>,
    /// Exact maximum, `None` when empty.
    pub max_ns: Option<u64>,
}

impl LatencySummary {
    fn from_histogram(histogram: &Histogram, total_ns: u64) -> LatencySummary {
        LatencySummary {
            count: histogram.count(),
            total_secs: total_ns as f64 / 1e9,
            p50_ns: histogram.percentile(50.0),
            p95_ns: histogram.percentile(95.0),
            p99_ns: histogram.percentile(99.0),
            max_ns: histogram.max(),
        }
    }
}

/// Aggregated cost of one pipeline stage across the profiled rounds.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageProfile {
    /// Stage name, in pipeline order.
    pub name: String,
    /// Rounds in which the stage ran.
    pub rounds: u64,
    /// Total wall time spent in the stage, in seconds.
    pub total_secs: f64,
    /// Fraction of all stage wall time spent here (`0.0..=1.0`).
    pub share: f64,
    /// Per-round latency distribution of the stage.
    pub latency: LatencySummary,
    /// Cumulative named work counters, sorted by counter name.
    pub work: Vec<(String, u64)>,
}

/// Cumulative attributed work of one peer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PeerWork {
    /// Sequence-stable peer id (`PeerId::seq`).
    pub peer: u64,
    /// Cumulative work units attributed to the peer.
    pub work: u64,
}

/// The `profile.json` summary of one profiled run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProfileReport {
    /// Report schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// RNG seed of the profiled run.
    pub seed: u64,
    /// Number of profiled rounds.
    pub rounds: u64,
    /// Total wall time across profiled rounds, in seconds.
    pub total_secs: f64,
    /// Rounds per second of wall time (0 when nothing was timed).
    pub rounds_per_sec: f64,
    /// Whole-round latency distribution.
    pub round_latency: LatencySummary,
    /// Per-stage cost, in pipeline order.
    pub stages: Vec<StageProfile>,
    /// Hottest peers by cumulative attributed work, descending.
    pub top_peers: Vec<PeerWork>,
}

impl ProfileReport {
    /// The stage named `name`, if it ran.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (which would indicate a schema bug)
    /// instead of panicking mid-run.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Writes pretty JSON to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, and serializer errors mapped to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Reads a report back from JSON at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed JSON is mapped to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn read_from(path: &Path) -> std::io::Result<ProfileReport> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Writes the report as folded stacks — one `frame;frame count` line
    /// per stage (weight: wall nanoseconds) and per work counter (weight:
    /// count) — the input format of standard flamegraph tooling.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_folded<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        for stage in &self.stages {
            let wall_ns = (stage.total_secs * 1e9).max(0.0) as u64;
            writeln!(w, "swarm;{} {}", stage.name, wall_ns)?;
            for (counter, count) in &stage.work {
                writeln!(w, "swarm;{};{} {}", stage.name, counter, count)?;
            }
        }
        Ok(())
    }
}

/// In-progress timing of one stage within the current round.
#[derive(Debug)]
struct CurrentStage {
    index: usize,
    started: Instant,
    /// Work reported via `add_work` since `begin_stage`; merged into the
    /// stage aggregate (and the per-round series) at `end_stage`. Tiny —
    /// a stage reports one to three counters — so linear merge is fine.
    pending: Vec<(&'static str, u64)>,
}

/// Running aggregate for one stage.
#[derive(Debug)]
struct StageAgg {
    name: &'static str,
    rounds: u64,
    total_ns: u64,
    latency: Histogram,
    work: BTreeMap<&'static str, u64>,
}

/// The live profiler state behind an enabled [`ProfileSink`].
#[derive(Debug)]
struct Profiler {
    options: ProfileOptions,
    rounds: u64,
    round_total_ns: u64,
    round_latency: Histogram,
    round_started: Option<Instant>,
    current_round: u64,
    /// Stage aggregates in first-seen (= pipeline) order. At most the
    /// pipeline length, so linear lookup beats a map.
    stages: Vec<StageAgg>,
    current_stage: Option<CurrentStage>,
    /// Cumulative work per peer, indexed by `PeerId::seq`. Dense by
    /// construction (seqs are allocated consecutively), so a vector keeps
    /// the hot-path attribution at O(1) with no hashing.
    peer_work: Vec<u64>,
    series: SeriesStore,
    /// Cached `stage.<name>.ns` series names, to avoid re-formatting in
    /// the per-round path.
    stage_series: BTreeMap<&'static str, String>,
    /// Cached `work.<counter>` series names.
    work_series: BTreeMap<&'static str, String>,
}

impl Profiler {
    fn new(options: ProfileOptions) -> Profiler {
        let series = SeriesStore::new(options.series_stride, options.series_capacity);
        Profiler {
            options,
            rounds: 0,
            round_total_ns: 0,
            round_latency: Histogram::new(),
            round_started: None,
            current_round: 0,
            stages: Vec::new(),
            current_stage: None,
            peer_work: Vec::new(),
            series,
            stage_series: BTreeMap::new(),
            work_series: BTreeMap::new(),
        }
    }

    fn begin_round(&mut self, round: u64) {
        self.current_round = round;
        self.round_started = Some(Instant::now());
    }

    fn end_round(&mut self) {
        let Some(started) = self.round_started.take() else {
            return;
        };
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.rounds += 1;
        self.round_total_ns = self.round_total_ns.saturating_add(elapsed_ns);
        self.round_latency.record(elapsed_ns);
        self.series
            .record("round.ns", self.current_round, elapsed_ns as f64);
    }

    fn begin_stage(&mut self, name: &'static str) {
        let index = match self.stages.iter().position(|s| s.name == name) {
            Some(index) => index,
            None => {
                self.stages.push(StageAgg {
                    name,
                    rounds: 0,
                    total_ns: 0,
                    latency: Histogram::new(),
                    work: BTreeMap::new(),
                });
                self.stages.len() - 1
            }
        };
        self.current_stage = Some(CurrentStage {
            index,
            started: Instant::now(),
            pending: Vec::new(),
        });
    }

    fn end_stage(&mut self) {
        let Some(current) = self.current_stage.take() else {
            return;
        };
        let elapsed_ns = u64::try_from(current.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let round = self.current_round;
        let on_stride = self.series.accepts(round);
        let Some(agg) = self.stages.get_mut(current.index) else {
            return;
        };
        agg.rounds += 1;
        agg.total_ns = agg.total_ns.saturating_add(elapsed_ns);
        agg.latency.record(elapsed_ns);
        if on_stride {
            let series_name = self
                .stage_series
                .entry(agg.name)
                .or_insert_with(|| format!("stage.{}.ns", agg.name));
            self.series.record(series_name, round, elapsed_ns as f64);
        }
        for (counter, amount) in current.pending {
            let total = agg.work.entry(counter).or_insert(0);
            *total = total.saturating_add(amount);
            if on_stride {
                let series_name = self
                    .work_series
                    .entry(counter)
                    .or_insert_with(|| format!("work.{counter}"));
                self.series.record(series_name, round, amount as f64);
            }
        }
    }

    fn add_work(&mut self, counter: &'static str, amount: u64) {
        // Work reported outside a stage window has nowhere to be
        // attributed; drop it rather than invent a stage.
        let Some(current) = &mut self.current_stage else {
            return;
        };
        match current.pending.iter_mut().find(|(name, _)| *name == counter) {
            Some((_, total)) => *total = total.saturating_add(amount),
            None => current.pending.push((counter, amount)),
        }
    }

    fn add_peer_work(&mut self, seq: u64, amount: u64) {
        let Ok(index) = usize::try_from(seq) else {
            return;
        };
        if index >= self.peer_work.len() {
            self.peer_work.resize(index + 1, 0);
        }
        if let Some(slot) = self.peer_work.get_mut(index) {
            *slot = slot.saturating_add(amount);
        }
    }

    fn report(&self) -> ProfileReport {
        let stage_total_ns: u64 = self.stages.iter().map(|s| s.total_ns).sum();
        let stages = self
            .stages
            .iter()
            .map(|agg| StageProfile {
                name: agg.name.to_string(),
                rounds: agg.rounds,
                total_secs: agg.total_ns as f64 / 1e9,
                share: if stage_total_ns > 0 {
                    agg.total_ns as f64 / stage_total_ns as f64
                } else {
                    0.0
                },
                latency: LatencySummary::from_histogram(&agg.latency, agg.total_ns),
                work: agg
                    .work
                    .iter()
                    .map(|(name, total)| ((*name).to_string(), *total))
                    .collect(),
            })
            .collect();
        let mut top_peers: Vec<PeerWork> = self
            .peer_work
            .iter()
            .enumerate()
            .filter(|&(_, &work)| work > 0)
            .map(|(seq, &work)| PeerWork {
                peer: seq as u64,
                work,
            })
            .collect();
        top_peers.sort_by_key(|p| (std::cmp::Reverse(p.work), p.peer));
        top_peers.truncate(self.options.top_peers);
        let total_secs = self.round_total_ns as f64 / 1e9;
        ProfileReport {
            schema_version: PROFILE_SCHEMA_VERSION,
            seed: self.options.seed,
            rounds: self.rounds,
            total_secs,
            rounds_per_sec: if total_secs > 0.0 {
                self.rounds as f64 / total_secs
            } else {
                0.0
            },
            round_latency: LatencySummary::from_histogram(&self.round_latency, self.round_total_ns),
            stages,
            top_peers,
        }
    }
}

/// The engine-facing profiling hook: a disabled sink is a no-op on every
/// call, an enabled one aggregates per-round × per-stage cost.
///
/// The sink deliberately takes `&mut self` everywhere and owns all its
/// state, so attaching it introduces no locks, no shared memory, and —
/// the determinism-critical property — no RNG use.
#[derive(Debug, Default)]
pub struct ProfileSink {
    inner: Option<Box<Profiler>>,
}

impl ProfileSink {
    /// A disabled sink: every hook call is a no-op (same as `default()`).
    #[must_use]
    pub fn disabled() -> ProfileSink {
        ProfileSink { inner: None }
    }

    /// An enabled sink aggregating under the given options.
    #[must_use]
    pub fn enabled(options: ProfileOptions) -> ProfileSink {
        ProfileSink {
            inner: Some(Box::new(Profiler::new(options))),
        }
    }

    /// Whether the sink is recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Marks the start of round `round`.
    #[inline]
    pub fn begin_round(&mut self, round: u64) {
        if let Some(profiler) = &mut self.inner {
            profiler.begin_round(round);
        }
    }

    /// Marks the end of the current round, recording its latency.
    #[inline]
    pub fn end_round(&mut self) {
        if let Some(profiler) = &mut self.inner {
            profiler.end_round();
        }
    }

    /// Marks the start of stage `name` within the current round.
    #[inline]
    pub fn begin_stage(&mut self, name: &'static str) {
        if let Some(profiler) = &mut self.inner {
            profiler.begin_stage(name);
        }
    }

    /// Marks the end of the current stage, folding its elapsed time and
    /// pending work into the aggregates.
    #[inline]
    pub fn end_stage(&mut self) {
        if let Some(profiler) = &mut self.inner {
            profiler.end_stage();
        }
    }

    /// Attributes `amount` units of work named `counter` to the current
    /// stage. Calls outside a `begin_stage`/`end_stage` window are
    /// dropped.
    #[inline]
    pub fn add_work(&mut self, counter: &'static str, amount: u64) {
        if let Some(profiler) = &mut self.inner {
            profiler.add_work(counter, amount);
        }
    }

    /// Attributes `amount` units of work to the peer with sequence id
    /// `seq`, for top-K hottest-peer ranking.
    #[inline]
    pub fn add_peer_work(&mut self, seq: u64, amount: u64) {
        if let Some(profiler) = &mut self.inner {
            profiler.add_peer_work(seq, amount);
        }
    }

    /// Builds the summary report; `None` when the sink is disabled.
    #[must_use]
    pub fn report(&self) -> Option<ProfileReport> {
        self.inner.as_ref().map(|profiler| profiler.report())
    }

    /// The per-round series recorded so far; `None` when disabled.
    #[must_use]
    pub fn series(&self) -> Option<&SeriesStore> {
        self.inner.as_ref().map(|profiler| &profiler.series)
    }

    /// Writes the three profile artifacts: the [`ProfileReport`] JSON at
    /// `path`, folded stacks at `path` with extension `folded`, and the
    /// per-round series at `path` with extension `rounds.jsonl`. Returns
    /// `false` (writing nothing) when the sink is disabled.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization failures.
    pub fn write_artifacts(&self, path: &Path) -> std::io::Result<bool> {
        let Some(profiler) = &self.inner else {
            return Ok(false);
        };
        let report = profiler.report();
        report.write_to(path)?;

        let folded_path = path.with_extension("folded");
        let mut folded = Vec::new();
        report.write_folded(&mut folded)?;
        std::fs::write(&folded_path, folded)?;

        let rounds_path = path.with_extension("rounds.jsonl");
        let mut rounds = Vec::new();
        profiler.series.write_jsonl(&mut rounds).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
        })?;
        std::fs::write(&rounds_path, rounds)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rounds(sink: &mut ProfileSink, rounds: u64) {
        for round in 0..rounds {
            sink.begin_round(round);
            sink.begin_stage("establish");
            sink.add_work("establish.candidate_comparisons", 10);
            sink.add_work("establish.candidate_comparisons", 5);
            sink.add_peer_work(3, 7);
            sink.end_stage();
            sink.begin_stage("exchange");
            sink.add_work("exchange.piece_transfers", 2);
            sink.add_peer_work(1, 1);
            sink.end_stage();
            sink.end_round();
        }
    }

    #[test]
    fn disabled_sink_is_inert() {
        let mut sink = ProfileSink::disabled();
        run_rounds(&mut sink, 5);
        assert!(!sink.is_enabled());
        assert!(sink.report().is_none());
        assert!(sink.series().is_none());
        let path = std::env::temp_dir().join("bt-obs-prof-disabled/profile.json");
        assert!(!sink.write_artifacts(&path).unwrap());
        assert!(!path.exists());
    }

    #[test]
    fn aggregates_rounds_stages_work_and_peers() {
        let mut sink = ProfileSink::enabled(ProfileOptions {
            seed: 42,
            ..ProfileOptions::default()
        });
        run_rounds(&mut sink, 4);
        let report = sink.report().unwrap();
        assert_eq!(report.schema_version, PROFILE_SCHEMA_VERSION);
        assert_eq!(report.seed, 42);
        assert_eq!(report.rounds, 4);
        assert!(report.total_secs > 0.0);
        assert!(report.rounds_per_sec > 0.0);
        assert_eq!(report.round_latency.count, 4);

        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["establish", "exchange"], "pipeline order kept");
        let establish = report.stage("establish").unwrap();
        assert_eq!(establish.rounds, 4);
        assert_eq!(
            establish.work,
            vec![("establish.candidate_comparisons".to_string(), 60)],
            "amounts for one counter merge within and across rounds"
        );
        assert!(establish.latency.p50_ns.is_some());
        assert!(establish.latency.p95_ns.is_some());
        let share_sum: f64 = report.stages.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to 1: {share_sum}");

        // Peer 3 earned 7×4 = 28, peer 1 earned 1×4 = 4; hottest first.
        assert_eq!(
            report.top_peers,
            vec![
                PeerWork { peer: 3, work: 28 },
                PeerWork { peer: 1, work: 4 }
            ]
        );
    }

    #[test]
    fn top_peers_is_truncated_and_tie_broken_by_seq() {
        let mut sink = ProfileSink::enabled(ProfileOptions {
            top_peers: 2,
            ..ProfileOptions::default()
        });
        sink.begin_round(0);
        sink.begin_stage("establish");
        sink.add_peer_work(9, 5);
        sink.add_peer_work(2, 5);
        sink.add_peer_work(4, 1);
        sink.end_stage();
        sink.end_round();
        let report = sink.report().unwrap();
        assert_eq!(
            report.top_peers,
            vec![
                PeerWork { peer: 2, work: 5 },
                PeerWork { peer: 9, work: 5 }
            ],
            "equal work ranks by seq; third peer truncated"
        );
    }

    #[test]
    fn per_round_series_is_recorded_on_stride() {
        let mut sink = ProfileSink::enabled(ProfileOptions {
            series_stride: 2,
            ..ProfileOptions::default()
        });
        run_rounds(&mut sink, 6);
        let series = sink.series().unwrap();
        let stage = series.get("stage.establish.ns").unwrap();
        let ticks: Vec<u64> = stage.iter().map(|(t, _)| t).collect();
        assert_eq!(ticks, vec![0, 2, 4], "only strided rounds sampled");
        let work = series.get("work.exchange.piece_transfers").unwrap();
        assert!(work.iter().all(|(_, v)| (v - 2.0).abs() < 1e-12));
        assert!(series.get("round.ns").is_some());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut sink = ProfileSink::enabled(ProfileOptions::default());
        run_rounds(&mut sink, 3);
        let report = sink.report().unwrap();
        let text = report.to_json().unwrap();
        let back: ProfileReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn folded_stacks_format() {
        let report = ProfileReport {
            schema_version: PROFILE_SCHEMA_VERSION,
            seed: 0,
            rounds: 1,
            total_secs: 0.0,
            rounds_per_sec: 0.0,
            round_latency: LatencySummary {
                count: 1,
                total_secs: 0.0,
                p50_ns: None,
                p95_ns: None,
                p99_ns: None,
                max_ns: None,
            },
            stages: vec![StageProfile {
                name: "exchange".to_string(),
                rounds: 1,
                total_secs: 2e-6,
                share: 1.0,
                latency: LatencySummary {
                    count: 1,
                    total_secs: 2e-6,
                    p50_ns: Some(2000),
                    p95_ns: Some(2000),
                    p99_ns: Some(2000),
                    max_ns: Some(2000),
                },
                work: vec![("exchange.piece_transfers".to_string(), 12)],
            }],
            top_peers: Vec::new(),
        };
        let mut buf = Vec::new();
        report.write_folded(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "swarm;exchange 2000\nswarm;exchange;exchange.piece_transfers 12\n"
        );
    }

    #[test]
    fn artifacts_land_on_disk_and_read_back() {
        let dir = std::env::temp_dir().join("bt-obs-prof-artifacts");
        std::fs::remove_dir_all(&dir).ok();
        let mut sink = ProfileSink::enabled(ProfileOptions {
            seed: 7,
            ..ProfileOptions::default()
        });
        run_rounds(&mut sink, 2);
        let path = dir.join("profile.json");
        assert!(sink.write_artifacts(&path).unwrap());
        let report = ProfileReport::read_from(&path).unwrap();
        assert_eq!(report.seed, 7);
        assert_eq!(report.rounds, 2);
        let folded = std::fs::read_to_string(dir.join("profile.folded")).unwrap();
        assert!(folded.contains("swarm;establish"), "{folded}");
        let jsonl = std::fs::File::open(dir.join("profile.rounds.jsonl")).unwrap();
        let points = SeriesStore::read_jsonl(std::io::BufReader::new(jsonl)).unwrap();
        assert!(points.iter().any(|p| p.series == "round.ns"), "{points:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unbalanced_hooks_are_tolerated() {
        let mut sink = ProfileSink::enabled(ProfileOptions::default());
        sink.end_stage(); // no stage open
        sink.end_round(); // no round open
        sink.add_work("orphan", 5); // outside any stage: dropped
        sink.begin_round(0);
        sink.begin_stage("a");
        sink.end_stage();
        sink.end_round();
        let report = sink.report().unwrap();
        assert_eq!(report.rounds, 1);
        assert_eq!(report.stage("a").unwrap().work, vec![]);
    }
}
