//! Global subscriber installation: human, JSON-lines, or quiet.

use std::io::Write;
use std::str::FromStr;
use std::time::Duration;

use tracing::{FieldValue, Level, Subscriber};

use crate::filter::EnvFilter;

/// How diagnostics are rendered. Result/figure output on stdout is
/// unaffected by the choice — all diagnostics go to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogMode {
    /// `[LEVEL target] message key=value ...` lines on stderr.
    #[default]
    Human,
    /// One JSON object per event on stderr (machine-consumable).
    Json,
    /// No diagnostics at all; instrumentation reduces to one atomic
    /// load per call site.
    Quiet,
}

impl FromStr for LogMode {
    type Err = String;

    fn from_str(text: &str) -> Result<LogMode, String> {
        match text.to_ascii_lowercase().as_str() {
            "human" | "text" => Ok(LogMode::Human),
            "json" => Ok(LogMode::Json),
            "quiet" | "off" => Ok(LogMode::Quiet),
            other => Err(format!(
                "unknown log mode `{other}` (expected human, json, or quiet)"
            )),
        }
    }
}

/// Installs the global subscriber. `filter` falls back to the
/// `RUST_LOG` environment variable, then to `info`. Safe to call more
/// than once; only the first install wins (later calls are no-ops, as
/// in integration tests that construct several runs in one process).
///
/// # Errors
///
/// Returns a message if `filter` (or `RUST_LOG`) is malformed.
pub fn init(mode: LogMode, filter: Option<&str>) -> Result<(), String> {
    let text = match filter {
        Some(text) => text.to_string(),
        None => std::env::var("RUST_LOG").unwrap_or_default(),
    };
    let filter = EnvFilter::parse(&text, Some(Level::Info))?;
    let max_level = match mode {
        LogMode::Quiet => None,
        LogMode::Human | LogMode::Json => filter.max_level(),
    };
    let subscriber: Box<dyn Subscriber> = match mode {
        LogMode::Human => Box::new(HumanSubscriber { filter }),
        LogMode::Json => Box::new(JsonSubscriber { filter }),
        LogMode::Quiet => Box::new(QuietSubscriber),
    };
    tracing::set_global_subscriber(subscriber, max_level);
    Ok(())
}

/// [`init`] driven purely by the environment: `BT_LOG` selects the mode
/// (`human` when unset), `RUST_LOG` the filter. Used by bench binaries
/// which take no CLI flags of their own.
///
/// # Errors
///
/// Returns a message if `BT_LOG` or `RUST_LOG` is malformed.
pub fn init_from_env() -> Result<(), String> {
    let mode = match std::env::var("BT_LOG") {
        Ok(text) => text.parse()?,
        Err(_) => LogMode::Human,
    };
    init(mode, None)
}

struct HumanSubscriber {
    filter: EnvFilter,
}

impl Subscriber for HumanSubscriber {
    fn enabled(&self, level: Level, target: &str) -> bool {
        self.filter.enabled(level, target)
    }

    fn event(&self, level: Level, target: &str, message: &str, fields: &[(&'static str, FieldValue)]) {
        let mut line = format!("[{level:<5} {target}] {message}");
        for (key, value) in fields {
            line.push_str(&format!(" {key}={value}"));
        }
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
    }

    fn span_close(&self, level: Level, target: &str, name: &str, elapsed: Duration) {
        let line = format!(
            "[{level:<5} {target}] {name} closed elapsed_ms={:.3}\n",
            elapsed.as_secs_f64() * 1e3
        );
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

struct JsonSubscriber {
    filter: EnvFilter,
}

impl JsonSubscriber {
    fn emit(&self, object: serde_json::Value) {
        let mut line = serde_json::to_string(&object).unwrap_or_default();
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

impl Subscriber for JsonSubscriber {
    fn enabled(&self, level: Level, target: &str) -> bool {
        self.filter.enabled(level, target)
    }

    fn event(&self, level: Level, target: &str, message: &str, fields: &[(&'static str, FieldValue)]) {
        use serde_json::Value;
        let rendered: Vec<(String, Value)> = fields
            .iter()
            .map(|(key, value)| ((*key).to_string(), field_to_json(value)))
            .collect();
        self.emit(Value::Object(vec![
            ("level".to_string(), Value::Str(level.as_str().to_string())),
            ("target".to_string(), Value::Str(target.to_string())),
            ("message".to_string(), Value::Str(message.to_string())),
            ("fields".to_string(), Value::Object(rendered)),
        ]));
    }

    fn span_close(&self, level: Level, target: &str, name: &str, elapsed: Duration) {
        use serde_json::Value;
        self.emit(Value::Object(vec![
            ("level".to_string(), Value::Str(level.as_str().to_string())),
            ("target".to_string(), Value::Str(target.to_string())),
            ("span".to_string(), Value::Str(name.to_string())),
            (
                "elapsed_ms".to_string(),
                Value::Float(elapsed.as_secs_f64() * 1e3),
            ),
        ]));
    }
}

fn field_to_json(value: &FieldValue) -> serde_json::Value {
    use serde_json::Value;
    match value {
        FieldValue::Bool(v) => Value::Bool(*v),
        FieldValue::I64(v) => Value::Int(*v),
        FieldValue::U64(v) => Value::UInt(*v),
        FieldValue::F64(v) => {
            if v.is_finite() {
                Value::Float(*v)
            } else {
                Value::Null
            }
        }
        FieldValue::Str(v) => Value::Str(v.clone()),
    }
}

struct QuietSubscriber;

impl Subscriber for QuietSubscriber {
    fn enabled(&self, _level: Level, _target: &str) -> bool {
        false
    }

    fn event(
        &self,
        _level: Level,
        _target: &str,
        _message: &str,
        _fields: &[(&'static str, FieldValue)],
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_mode_parses() {
        assert_eq!("human".parse::<LogMode>().unwrap(), LogMode::Human);
        assert_eq!("JSON".parse::<LogMode>().unwrap(), LogMode::Json);
        assert_eq!("quiet".parse::<LogMode>().unwrap(), LogMode::Quiet);
        assert!("loud".parse::<LogMode>().is_err());
    }

    #[test]
    fn field_values_render_as_json() {
        assert_eq!(field_to_json(&FieldValue::U64(3)), serde_json::Value::UInt(3));
        assert_eq!(
            field_to_json(&FieldValue::F64(f64::NAN)),
            serde_json::Value::Null
        );
        assert_eq!(
            field_to_json(&FieldValue::Str("x".into())),
            serde_json::Value::Str("x".into())
        );
    }

    // The quiet subscriber must reject everything so stdout/stderr stay
    // untouched in benchmark runs.
    #[test]
    fn quiet_subscriber_rejects_all() {
        let quiet = QuietSubscriber;
        assert!(!quiet.enabled(Level::Error, "bt_swarm"));
    }
}
