//! Property suite for the streaming sketches (ISSUE 7, satellite c).
//!
//! * `CountCells` must agree exactly with a sorted-vector oracle under
//!   arbitrary incr/shift/decr mutation sequences.
//! * `P2Quantile` must keep its *rank error* — the distance between the
//!   estimate's rank in the sorted sample and the target rank
//!   `q·(n−1)` — within the bound documented in
//!   `crates/obs/src/sketch.rs`: `max(10, 0.55·n)`, across adversarial
//!   input distributions (uniform, constant, bimodal, sorted,
//!   reverse-sorted, heavy-tailed). The bound is calibrated against a
//!   100k-case offline scan of the same families; the worst observed
//!   ratio was `0.52·n` (bimodal gaps) with monotone streams close
//!   behind at `~0.41·n` — both known P² weak spots.

use bt_obs::{CountCells, P2Quantile};
use proptest::prelude::*;

/// The documented P² rank-error bound for a sample of `n` observations.
fn rank_error_bound(n: usize) -> f64 {
    10.0f64.max(0.55 * n as f64)
}

/// Rank distance between `estimate` and the target rank `q·(n−1)` in
/// `sorted`. An estimate equal to sample values occupies their whole
/// rank interval; an interpolated estimate sits between its neighbors.
fn rank_error(sorted: &[f64], q: f64, estimate: f64) -> f64 {
    let n = sorted.len() as f64;
    let target = q * (n - 1.0);
    let below = sorted.iter().filter(|&&v| v < estimate).count() as f64;
    let equal = sorted.iter().filter(|&&v| v == estimate).count() as f64;
    let (lo, hi) = if equal > 0.0 {
        (below, below + equal - 1.0)
    } else {
        ((below - 1.0).max(0.0), below.min(n - 1.0))
    };
    if target < lo {
        lo - target
    } else if target > hi {
        target - hi
    } else {
        0.0
    }
}

/// Shapes one raw uniform stream into an adversarial distribution.
fn shape(raw: &[u32], family: usize) -> Vec<f64> {
    let mut data: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
    match family {
        0 => {} // uniform as generated
        1 => {
            // Constant: the degenerate stream every marker lands on.
            let c = data[0];
            data.fill(c);
        }
        2 => {
            // Bimodal: two far-apart modes with nothing between.
            for v in &mut data {
                *v = if *v < 500.0 { *v * 0.01 } else { 9_000.0 + *v };
            }
        }
        3 => data.sort_by(f64::total_cmp), // sorted ascending
        4 => {
            data.sort_by(f64::total_cmp);
            data.reverse();
        }
        _ => {
            // Heavy-tailed: cubic stretch pushes most mass low with a
            // long right tail.
            for v in &mut data {
                *v = (*v / 10.0).powi(3);
            }
        }
    }
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn p2_rank_error_within_documented_bound(
        raw in prop::collection::vec(0u32..1000, 6..400),
        family in 0usize..6,
        q_index in 0usize..5,
    ) {
        let q = [0.1, 0.25, 0.5, 0.75, 0.9][q_index];
        let data = shape(&raw, family);
        let mut sketch = P2Quantile::new(q);
        for &x in &data {
            sketch.observe(x);
        }
        let estimate = sketch.estimate().expect("non-empty stream");
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        prop_assert!(
            (min..=max).contains(&estimate),
            "estimate {estimate} escaped the observed range [{min}, {max}]"
        );
        let err = rank_error(&sorted, q, estimate);
        let bound = rank_error_bound(data.len());
        prop_assert!(
            err <= bound,
            "rank error {err:.1} exceeds bound {bound:.1} \
             (family {family}, q {q}, n {})",
            data.len()
        );
    }

    #[test]
    fn p2_is_exact_for_tiny_streams(
        raw in prop::collection::vec(0u32..1000, 1..=5),
        q_index in 0usize..5,
    ) {
        let q = [0.0, 0.25, 0.5, 0.75, 1.0][q_index];
        let mut sketch = P2Quantile::new(q);
        for &x in &raw {
            sketch.observe(f64::from(x));
        }
        let mut sorted: Vec<f64> = raw.iter().map(|&v| f64::from(v)).collect();
        sorted.sort_by(f64::total_cmp);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        prop_assert_eq!(sketch.estimate(), Some(sorted[rank]));
    }

    #[test]
    fn cells_agree_with_sorted_oracle(
        ops in prop::collection::vec((0u32..3, 0usize..64), 1..300),
    ) {
        const DOMAIN: u32 = 16;
        let mut cells = CountCells::new(DOMAIN);
        let mut items: Vec<u32> = Vec::new();
        for &(op, pick) in &ops {
            match op {
                // Arrival: a new item at value 0.
                0 => {
                    cells.incr(0);
                    items.push(0);
                }
                // Progress: one existing item moves up a value.
                1 => {
                    let candidates: Vec<usize> = (0..items.len())
                        .filter(|&i| items[i] < DOMAIN)
                        .collect();
                    if let Some(&i) = candidates.get(pick % candidates.len().max(1)) {
                        cells.shift(items[i], items[i] + 1);
                        items[i] += 1;
                    }
                }
                // Departure: one existing item leaves.
                _ => {
                    if !items.is_empty() {
                        let i = pick % items.len();
                        let v = items.swap_remove(i);
                        cells.decr(v);
                    }
                }
            }
        }
        let mut sorted = items.clone();
        sorted.sort_unstable();
        prop_assert_eq!(cells.total(), sorted.len() as u64);
        for (rank, &value) in sorted.iter().enumerate() {
            prop_assert_eq!(cells.value_at_rank(rank as u64), value);
        }
        for &fraction in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let expected = if sorted.is_empty() {
                None
            } else {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let idx = ((sorted.len() - 1) as f64 * fraction).round() as usize;
                Some(sorted[idx])
            };
            prop_assert_eq!(cells.quantile(fraction), expected);
        }
    }
}
