//! Property suite for the heartbeat stream (ISSUE 10, satellite c).
//!
//! * Round trip: any header + beat sequence written through the
//!   emitter's line format must parse back bit-identically through
//!   [`bt_obs::read_heartbeat`].
//! * Truncation: the stream is append-only and a reader may catch the
//!   writer mid-line, so for EVERY byte prefix of a valid stream the
//!   parser must either succeed with a prefix of the beats (when the
//!   header line is complete) or fail with `InvalidData` (when it is
//!   not) — never panic, never fabricate records.

use bt_obs::{Heartbeat, HeartbeatMeta, HeartbeatRecord, HEARTBEAT_SCHEMA_VERSION};
use proptest::prelude::*;

fn arb_meta() -> impl Strategy<Value = HeartbeatMeta> {
    const COMMANDS: [&str; 3] = ["swarm", "swarm_scale", "doctor"];
    (0usize..COMMANDS.len(), any::<u64>(), 0u64..=1_000_000, 0.0f64..=60.0).prop_map(
        |(command, seed, target_rounds, interval_secs)| HeartbeatMeta {
            schema_version: HEARTBEAT_SCHEMA_VERSION,
            command: COMMANDS[command].to_string(),
            seed,
            target_rounds,
            interval_secs,
        },
    )
}

fn arb_beat() -> impl Strategy<Value = Heartbeat> {
    const PHASES: [&str; 4] = ["bootstrap", "efficient", "last", "done"];
    (
        0u64..=1_000_000,
        0.0f64..=1e6,
        0.0f64..=1e6,
        0.0f64..=1e9,
        0usize..PHASES.len(),
        (0.0f64..=16.0, 0u64..=1_000_000, 0.0f64..=1.0),
        (0u64..=u64::MAX / 2, 0u64..=u64::MAX / 2),
    )
        .prop_map(
            |(
                round,
                elapsed_secs,
                rounds_per_sec,
                eta_secs,
                phase,
                (entropy, population, obs_share),
                (rss_bytes, peak_rss_bytes),
            )| Heartbeat {
                round,
                elapsed_secs,
                rounds_per_sec,
                eta_secs,
                phase: PHASES[phase].to_string(),
                entropy,
                population,
                obs_share,
                rss_bytes,
                peak_rss_bytes,
            },
        )
}

/// Serializes a stream the way the emitter does: one JSON line per
/// record, header first.
fn render(meta: &HeartbeatMeta, beats: &[Heartbeat]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut push = |record: &HeartbeatRecord| {
        bytes.extend_from_slice(serde_json::to_string(record).expect("serializes").as_bytes());
        bytes.push(b'\n');
    };
    push(&HeartbeatRecord::Meta(meta.clone()));
    for beat in beats {
        push(&HeartbeatRecord::Beat(beat.clone()));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_round_trips(meta in arb_meta(), beats in prop::collection::vec(arb_beat(), 0..8)) {
        let bytes = render(&meta, &beats);
        let (parsed_meta, parsed_beats) =
            bt_obs::read_heartbeat(&bytes[..]).expect("full stream parses");
        prop_assert_eq!(parsed_meta, meta);
        prop_assert_eq!(parsed_beats, beats);
    }

    #[test]
    fn every_byte_prefix_parses_or_rejects_cleanly(
        meta in arb_meta(),
        beats in prop::collection::vec(arb_beat(), 0..5),
    ) {
        let bytes = render(&meta, &beats);
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .expect("header line is newline-terminated");
        for cut in 0..=bytes.len() {
            let prefix = &bytes[..cut];
            let result = bt_obs::read_heartbeat(prefix);
            if cut > header_end {
                // The header line is complete: the parser must accept
                // the prefix and return exactly the complete beats.
                let complete_beats = bytes[..cut].iter().filter(|&&b| b == b'\n').count() - 1;
                let (parsed_meta, parsed_beats) = result
                    .unwrap_or_else(|e| panic!("prefix of {cut} bytes must parse: {e}"));
                prop_assert_eq!(&parsed_meta, &meta);
                prop_assert_eq!(parsed_beats.as_slice(), &beats[..complete_beats]);
            } else {
                // No complete header yet: headerless-stream error.
                let err = result.expect_err("prefix without a header must be rejected");
                prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
            }
        }
    }
}
