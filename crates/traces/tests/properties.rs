//! Property-based tests for the trace toolkit.

use bt_traces::analyzer::segment;
use bt_traces::io::{read_traces, write_traces};
use bt_traces::stats::{downsample, duration_cdf, summarize};
use bt_traces::{Trace, TraceSample};
use proptest::prelude::*;

/// Strategy: a structurally valid trace (time-ordered, bytes monotone and
/// bounded by the file size).
fn valid_trace() -> impl Strategy<Value = Trace> {
    (
        1u32..=20,    // pieces
        1u64..=1_000, // piece bytes
        prop::collection::vec((0.0f64..5.0, 0u64..50, 0u32..8), 0..40),
        prop::bool::ANY,
    )
        .prop_map(|(pieces, piece_bytes, raw, completed)| {
            let file_bytes = u64::from(pieces) * piece_bytes;
            let mut t_acc = 0.0;
            let mut b_acc = 0u64;
            let samples = raw
                .into_iter()
                .map(|(dt, db, potential)| {
                    t_acc += dt;
                    b_acc = (b_acc + db).min(file_bytes);
                    TraceSample {
                        t: t_acc,
                        bytes: b_acc,
                        potential,
                    }
                })
                .collect();
            Trace {
                client: "prop".into(),
                swarm: "prop".into(),
                piece_bytes,
                pieces,
                completed,
                samples,
            }
        })
}

proptest! {
    #[test]
    fn generated_traces_validate(trace in valid_trace()) {
        trace.validate().expect("strategy builds valid traces");
    }

    #[test]
    fn io_round_trips(traces in prop::collection::vec(valid_trace(), 0..5)) {
        let mut buf = Vec::new();
        write_traces(&mut buf, &traces).unwrap();
        let back = read_traces(buf.as_slice()).unwrap();
        prop_assert_eq!(traces, back);
    }

    #[test]
    fn segmentation_partitions_samples(trace in valid_trace()) {
        let p = segment(&trace);
        prop_assert_eq!(
            p.bootstrap_samples + p.efficient_samples + p.last_samples,
            p.total_samples
        );
        prop_assert!(p.bootstrap_secs >= 0.0);
        prop_assert!(p.efficient_secs >= 0.0);
        prop_assert!(p.last_secs >= 0.0);
        let bf = p.bootstrap_fraction();
        let lf = p.last_fraction();
        prop_assert!((0.0..=1.0).contains(&bf));
        prop_assert!((0.0..=1.0).contains(&lf));
        prop_assert!(bf + lf <= 1.0 + 1e-9);
    }

    #[test]
    fn downsample_preserves_validity_and_endpoints(
        trace in valid_trace(),
        cap in 2usize..20,
    ) {
        let small = downsample(&trace, cap);
        small.validate().expect("downsampling preserves validity");
        prop_assert!(small.samples.len() <= cap.max(trace.samples.len().min(cap)));
        if let (Some(first), Some(last)) = (trace.samples.first(), trace.samples.last()) {
            prop_assert_eq!(small.samples.first().map(|s| s.t), Some(first.t));
            prop_assert_eq!(small.samples.last().map(|s| s.t), Some(last.t));
        }
    }

    #[test]
    fn summary_is_consistent(traces in prop::collection::vec(valid_trace(), 0..6)) {
        let s = summarize(&traces);
        prop_assert_eq!(s.traces, traces.len());
        prop_assert!(s.completed <= s.traces);
        let cdf = duration_cdf(&traces);
        prop_assert_eq!(cdf.len(), traces.iter().filter(|t| t.completed).count());
        for pair in cdf.windows(2) {
            prop_assert!(pair[1].0 >= pair[0].0, "durations sorted");
            prop_assert!(pair[1].1 >= pair[0].1, "cdf monotone");
        }
        if let Some(&(_, last)) = cdf.last() {
            prop_assert!((last - 1.0).abs() < 1e-12);
        }
    }
}
