//! The trace schema.
//!
//! One trace is the log of one instrumented client's download: a header
//! (client, swarm, piece size) plus timestamped samples of the two series
//! the paper's Fig. 2 plots — cumulative bytes downloaded and the
//! potential-set size.

use serde::{Deserialize, Serialize};

/// One timestamped measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Seconds since the client joined the swarm.
    pub t: f64,
    /// Cumulative bytes downloaded.
    pub bytes: u64,
    /// Potential-set size at this instant.
    pub potential: u32,
}

/// A complete instrumented-client trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Client identifier (unique within a collection run).
    pub client: String,
    /// Name of the swarm the client was injected into.
    pub swarm: String,
    /// Piece size in bytes.
    pub piece_bytes: u64,
    /// Number of pieces in the file.
    pub pieces: u32,
    /// Whether the client finished the download before logging stopped.
    pub completed: bool,
    /// The samples, in time order.
    pub samples: Vec<TraceSample>,
}

impl Trace {
    /// Validates internal consistency: samples time-ordered, bytes
    /// monotone, bytes within the file size.
    ///
    /// # Errors
    ///
    /// [`crate::Error::InvalidTrace`] describing the first violation.
    pub fn validate(&self) -> crate::Result<()> {
        let file_bytes = self.piece_bytes * u64::from(self.pieces);
        let mut prev_t = f64::NEG_INFINITY;
        let mut prev_bytes = 0u64;
        for (i, s) in self.samples.iter().enumerate() {
            if !s.t.is_finite() || s.t < prev_t {
                return Err(crate::Error::InvalidTrace(format!(
                    "sample {i}: time {} not monotone",
                    s.t
                )));
            }
            if s.bytes < prev_bytes {
                return Err(crate::Error::InvalidTrace(format!(
                    "sample {i}: bytes {} decreased",
                    s.bytes
                )));
            }
            if s.bytes > file_bytes {
                return Err(crate::Error::InvalidTrace(format!(
                    "sample {i}: bytes {} exceed file size {file_bytes}",
                    s.bytes
                )));
            }
            prev_t = s.t;
            prev_bytes = s.bytes;
        }
        Ok(())
    }

    /// Total bytes at the last sample (0 if empty).
    #[must_use]
    pub fn final_bytes(&self) -> u64 {
        self.samples.last().map_or(0, |s| s.bytes)
    }

    /// Duration covered by the trace in seconds (0 if fewer than two
    /// samples).
    #[must_use]
    pub fn duration(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Approximate pieces held at each sample (`bytes / piece_bytes`).
    #[must_use]
    pub fn pieces_series(&self) -> Vec<u32> {
        self.samples
            .iter()
            .map(|s| (s.bytes / self.piece_bytes.max(1)) as u32)
            .collect()
    }

    /// Mean download rate in bytes/second over the whole trace (0 for
    /// degenerate traces).
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        let d = self.duration();
        if d <= 0.0 {
            0.0
        } else {
            self.final_bytes() as f64 / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, bytes: u64, potential: u32) -> TraceSample {
        TraceSample {
            t,
            bytes,
            potential,
        }
    }

    fn trace(samples: Vec<TraceSample>) -> Trace {
        Trace {
            client: "c0".into(),
            swarm: "s0".into(),
            piece_bytes: 100,
            pieces: 10,
            completed: false,
            samples,
        }
    }

    #[test]
    fn valid_trace_passes() {
        let t = trace(vec![
            sample(0.0, 0, 0),
            sample(1.0, 100, 2),
            sample(2.0, 300, 3),
        ]);
        assert!(t.validate().is_ok());
        assert_eq!(t.final_bytes(), 300);
        assert_eq!(t.duration(), 2.0);
        assert_eq!(t.pieces_series(), vec![0, 1, 3]);
        assert_eq!(t.mean_rate(), 150.0);
    }

    #[test]
    fn rejects_time_regression() {
        let t = trace(vec![sample(2.0, 0, 0), sample(1.0, 0, 0)]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_byte_regression() {
        let t = trace(vec![sample(0.0, 100, 0), sample(1.0, 50, 0)]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_overflow_bytes() {
        let t = trace(vec![sample(0.0, 2_000, 0)]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_nan_time() {
        let t = trace(vec![sample(f64::NAN, 0, 0)]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn empty_trace_is_degenerate_but_valid() {
        let t = trace(vec![]);
        assert!(t.validate().is_ok());
        assert_eq!(t.final_bytes(), 0);
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.mean_rate(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = trace(vec![sample(0.0, 0, 1), sample(1.5, 100, 2)]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
