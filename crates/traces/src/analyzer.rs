//! Phase segmentation of traces.
//!
//! Recovers the paper's three download phases from the two logged series
//! alone (cumulative bytes and potential-set size), mirroring how the
//! phases manifest in Fig. 2:
//!
//! * **bootstrap** — the prefix before the client holds two pieces (it is
//!   still acquiring, or stuck holding, its first tradable piece);
//! * **last download** — the suffix during which the potential set never
//!   exceeds one again (progress only via new peers trickling in);
//! * **efficient** — everything in between.

use serde::{Deserialize, Serialize};

use crate::record::Trace;

/// Result of segmenting a trace into phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Number of samples in the trace.
    pub total_samples: usize,
    /// Samples spent in the bootstrap phase.
    pub bootstrap_samples: usize,
    /// Samples spent in the efficient download phase.
    pub efficient_samples: usize,
    /// Samples spent in the last download phase.
    pub last_samples: usize,
    /// Seconds spent in the bootstrap phase.
    pub bootstrap_secs: f64,
    /// Seconds spent in the efficient phase.
    pub efficient_secs: f64,
    /// Seconds spent in the last download phase.
    pub last_secs: f64,
    /// Mean download rate during the efficient phase (bytes/sec; 0 if the
    /// phase is empty).
    pub efficient_rate: f64,
}

impl PhaseSummary {
    /// Fraction of trace time spent in the bootstrap phase (0 for empty
    /// traces).
    #[must_use]
    pub fn bootstrap_fraction(&self) -> f64 {
        let total = self.bootstrap_secs + self.efficient_secs + self.last_secs;
        if total == 0.0 {
            0.0
        } else {
            self.bootstrap_secs / total
        }
    }

    /// Fraction of trace time spent in the last download phase.
    #[must_use]
    pub fn last_fraction(&self) -> f64 {
        let total = self.bootstrap_secs + self.efficient_secs + self.last_secs;
        if total == 0.0 {
            0.0
        } else {
            self.last_secs / total
        }
    }

    /// Whether the dominant feature is a long bootstrap (threshold on the
    /// time fraction).
    #[must_use]
    pub fn has_significant_bootstrap(&self, threshold: f64) -> bool {
        self.bootstrap_fraction() >= threshold
    }

    /// Whether the dominant feature is a long last phase.
    #[must_use]
    pub fn has_significant_last_phase(&self, threshold: f64) -> bool {
        self.last_fraction() >= threshold
    }
}

/// Segments a trace into the three phases.
///
/// # Example
///
/// ```
/// use bt_traces::analyzer::segment;
/// use bt_traces::{Trace, TraceSample};
///
/// let trace = Trace {
///     client: "c".into(),
///     swarm: "s".into(),
///     piece_bytes: 100,
///     pieces: 4,
///     completed: true,
///     samples: vec![
///         TraceSample { t: 0.0, bytes: 0, potential: 0 },   // bootstrap
///         TraceSample { t: 10.0, bytes: 100, potential: 0 },// bootstrap
///         TraceSample { t: 20.0, bytes: 200, potential: 5 },// efficient
///         TraceSample { t: 30.0, bytes: 300, potential: 4 },// efficient
///         TraceSample { t: 40.0, bytes: 300, potential: 0 },// last
///         TraceSample { t: 50.0, bytes: 400, potential: 1 },// last
///     ],
/// };
/// let phases = segment(&trace);
/// assert_eq!(phases.bootstrap_samples, 2);
/// assert_eq!(phases.efficient_samples, 2);
/// assert_eq!(phases.last_samples, 2);
/// ```
#[must_use]
pub fn segment(trace: &Trace) -> PhaseSummary {
    let n = trace.samples.len();
    if n == 0 {
        return PhaseSummary {
            total_samples: 0,
            bootstrap_samples: 0,
            efficient_samples: 0,
            last_samples: 0,
            bootstrap_secs: 0.0,
            efficient_secs: 0.0,
            last_secs: 0.0,
            efficient_rate: 0.0,
        };
    }
    let pieces = trace.pieces_series();
    // Bootstrap: samples before the client holds its second piece.
    let bootstrap_end = pieces.iter().position(|&p| p >= 2).unwrap_or(n);
    // Last phase: the suffix (after bootstrap) in which the potential set
    // never exceeds 1 again.
    let mut last_start = n;
    while last_start > bootstrap_end && trace.samples[last_start - 1].potential <= 1 {
        last_start -= 1;
    }
    // A trailing completed sample with potential 0 is the natural end of a
    // finished download, not a last phase; require the stall to span more
    // than one sample to count.
    if n - last_start <= 1 {
        last_start = n;
    }
    let span = |from: usize, to: usize| -> f64 {
        if from >= to {
            0.0
        } else {
            let start_t = trace.samples[from].t;
            let end_t = if to < n {
                trace.samples[to].t
            } else {
                trace.samples[n - 1].t
            };
            (end_t - start_t).max(0.0)
        }
    };
    let efficient_rate = if bootstrap_end < last_start {
        let d_bytes = trace.samples[last_start - 1]
            .bytes
            .saturating_sub(trace.samples[bootstrap_end].bytes);
        let d_t = trace.samples[last_start - 1].t - trace.samples[bootstrap_end].t;
        if d_t > 0.0 {
            d_bytes as f64 / d_t
        } else {
            0.0
        }
    } else {
        0.0
    };
    PhaseSummary {
        total_samples: n,
        bootstrap_samples: bootstrap_end,
        efficient_samples: last_start - bootstrap_end,
        last_samples: n - last_start,
        bootstrap_secs: span(0, bootstrap_end),
        efficient_secs: span(bootstrap_end, last_start),
        last_secs: span(last_start, n),
        efficient_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceSample;

    fn trace(samples: Vec<(f64, u64, u32)>) -> Trace {
        Trace {
            client: "c".into(),
            swarm: "s".into(),
            piece_bytes: 100,
            pieces: 10,
            completed: false,
            samples: samples
                .into_iter()
                .map(|(t, bytes, potential)| TraceSample {
                    t,
                    bytes,
                    potential,
                })
                .collect(),
        }
    }

    #[test]
    fn empty_trace_all_zero() {
        let p = segment(&trace(vec![]));
        assert_eq!(p.total_samples, 0);
        assert_eq!(p.bootstrap_fraction(), 0.0);
        assert_eq!(p.last_fraction(), 0.0);
    }

    #[test]
    fn smooth_trace_is_mostly_efficient() {
        let samples: Vec<(f64, u64, u32)> = (0..10)
            .map(|i| (f64::from(i) * 10.0, u64::try_from(i).unwrap() * 100, 8))
            .collect();
        let p = segment(&trace(samples));
        assert!(p.efficient_samples >= 7, "{p:?}");
        assert_eq!(p.last_samples, 0);
        assert!(p.efficient_rate > 0.0);
    }

    #[test]
    fn long_bootstrap_detected() {
        let mut samples = vec![(0.0, 0, 0)];
        for i in 1..8 {
            samples.push((f64::from(i) * 10.0, 100, 0)); // stuck at 1 piece
        }
        for i in 8..12 {
            samples.push((f64::from(i) * 10.0, u64::try_from(i - 6).unwrap() * 100, 5));
        }
        let p = segment(&trace(samples));
        assert!(p.bootstrap_samples >= 8, "{p:?}");
        assert!(p.has_significant_bootstrap(0.5), "{p:?}");
        assert!(!p.has_significant_last_phase(0.5));
    }

    #[test]
    fn long_last_phase_detected() {
        let mut samples = Vec::new();
        for i in 0..5 {
            samples.push((f64::from(i) * 10.0, u64::try_from(i).unwrap() * 200, 6));
        }
        for i in 5..15 {
            samples.push((f64::from(i) * 10.0, 800 + u64::try_from(i).unwrap() * 10, 1));
        }
        let p = segment(&trace(samples));
        assert!(p.last_samples >= 9, "{p:?}");
        assert!(p.has_significant_last_phase(0.5), "{p:?}");
    }

    #[test]
    fn single_trailing_zero_not_a_last_phase() {
        let samples = vec![
            (0.0, 0, 0),
            (10.0, 200, 5),
            (20.0, 500, 5),
            (30.0, 1000, 0), // finished, potential drops — not a stall
        ];
        let p = segment(&trace(samples));
        assert_eq!(p.last_samples, 0, "{p:?}");
    }

    #[test]
    fn fractions_sum_to_one_for_nonempty() {
        let samples: Vec<(f64, u64, u32)> = (0..20)
            .map(|i| {
                (
                    f64::from(i),
                    u64::try_from(i).unwrap() * 50,
                    if i < 15 { 4 } else { 1 },
                )
            })
            .collect();
        let p = segment(&trace(samples));
        let total = p.bootstrap_fraction()
            + p.last_fraction()
            + p.efficient_secs / (p.bootstrap_secs + p.efficient_secs + p.last_secs);
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_counts_partition() {
        let samples: Vec<(f64, u64, u32)> = (0..30)
            .map(|i| (f64::from(i), u64::try_from(i).unwrap() * 40, 3))
            .collect();
        let p = segment(&trace(samples));
        assert_eq!(
            p.bootstrap_samples + p.efficient_samples + p.last_samples,
            p.total_samples
        );
    }
}
