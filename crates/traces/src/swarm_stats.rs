//! Synthetic tracker statistics and stable-swarm screening.
//!
//! The paper selected measurement swarms "based on manual inspection of the
//! statistics provided by the tracker" — hourly peer counts — filtering out
//! flash crowds and dying swarms (§4.2). This module synthesizes such
//! hourly population series and automates the screening.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hourly tracker statistics of one swarm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwarmStat {
    /// Swarm name.
    pub name: String,
    /// Peer count at each hour.
    pub hourly_peers: Vec<u64>,
}

/// The lifecycle class of a swarm, inferred from its population series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwarmClass {
    /// Population fluctuates around a level — suitable for measurement.
    Stable,
    /// Population rising rapidly (the paper excludes these).
    FlashCrowd,
    /// Population collapsing (the paper excludes these).
    Dying,
}

impl SwarmStat {
    /// Classifies the swarm from its hourly series.
    ///
    /// Heuristics mirroring the paper's manual screening: compare the mean
    /// of the first and last thirds of the series; a rise (fall) by more
    /// than 50% is a flash crowd (dying swarm); otherwise the swarm is
    /// stable. Series shorter than 3 samples are conservatively classified
    /// from their endpoints.
    #[must_use]
    pub fn classify(&self) -> SwarmClass {
        if self.hourly_peers.is_empty() {
            return SwarmClass::Dying;
        }
        let n = self.hourly_peers.len();
        let third = (n / 3).max(1);
        let head: f64 = self.hourly_peers[..third].iter().sum::<u64>() as f64 / third as f64;
        let tail: f64 = self.hourly_peers[n - third..].iter().sum::<u64>() as f64 / third as f64;
        if head == 0.0 {
            return if tail > 0.0 {
                SwarmClass::FlashCrowd
            } else {
                SwarmClass::Dying
            };
        }
        let ratio = tail / head;
        if ratio > 1.5 {
            SwarmClass::FlashCrowd
        } else if ratio < 0.5 {
            SwarmClass::Dying
        } else {
            SwarmClass::Stable
        }
    }

    /// Mean population over the observation window (0 for empty series).
    #[must_use]
    pub fn mean_population(&self) -> f64 {
        if self.hourly_peers.is_empty() {
            0.0
        } else {
            self.hourly_peers.iter().sum::<u64>() as f64 / self.hourly_peers.len() as f64
        }
    }
}

/// Synthesizes an hourly series of the given class.
///
/// * `Stable` — a level around `base` with ±10% multiplicative noise;
/// * `FlashCrowd` — exponential growth from `base / 10` to several times
///   `base`;
/// * `Dying` — exponential decay from `base` toward zero.
///
/// # Panics
///
/// Panics if `hours == 0` or `base == 0`.
pub fn synthesize<R: Rng + ?Sized>(
    class: SwarmClass,
    name: &str,
    base: u64,
    hours: usize,
    rng: &mut R,
) -> SwarmStat {
    assert!(hours > 0, "need at least one hour");
    assert!(base > 0, "need a positive base population");
    let series: Vec<u64> = (0..hours)
        .map(|h| {
            let frac = h as f64 / hours as f64;
            let level = match class {
                SwarmClass::Stable => base as f64,
                SwarmClass::FlashCrowd => base as f64 / 10.0 * (30.0f64).powf(frac),
                SwarmClass::Dying => base as f64 * (0.02f64).powf(frac),
            };
            let noise = 1.0 + rng.gen_range(-0.1..0.1);
            (level * noise).round().max(0.0) as u64
        })
        .collect();
    SwarmStat {
        name: name.to_string(),
        hourly_peers: series,
    }
}

/// The screening step: keeps only stable swarms, as the paper did before
/// injecting its instrumented client.
#[must_use]
pub fn filter_stable(stats: Vec<SwarmStat>) -> Vec<SwarmStat> {
    stats
        .into_iter()
        .filter(|s| s.classify() == SwarmClass::Stable)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesized_classes_classify_back() {
        let mut rng = StdRng::seed_from_u64(1);
        for (class, name) in [
            (SwarmClass::Stable, "s"),
            (SwarmClass::FlashCrowd, "f"),
            (SwarmClass::Dying, "d"),
        ] {
            let stat = synthesize(class, name, 1_000, 48, &mut rng);
            assert_eq!(stat.classify(), class, "{name}: {:?}", stat.hourly_peers);
        }
    }

    #[test]
    fn filter_keeps_only_stable() {
        let mut rng = StdRng::seed_from_u64(2);
        let stats = vec![
            synthesize(SwarmClass::Stable, "a", 500, 24, &mut rng),
            synthesize(SwarmClass::FlashCrowd, "b", 500, 24, &mut rng),
            synthesize(SwarmClass::Dying, "c", 500, 24, &mut rng),
            synthesize(SwarmClass::Stable, "d", 2_000, 24, &mut rng),
        ];
        let stable = filter_stable(stats);
        let names: Vec<&str> = stable.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "d"]);
    }

    #[test]
    fn empty_series_is_dying() {
        let stat = SwarmStat {
            name: "empty".into(),
            hourly_peers: vec![],
        };
        assert_eq!(stat.classify(), SwarmClass::Dying);
        assert_eq!(stat.mean_population(), 0.0);
    }

    #[test]
    fn zero_head_cases() {
        let flash = SwarmStat {
            name: "z".into(),
            hourly_peers: vec![0, 0, 0, 50, 100, 200],
        };
        assert_eq!(flash.classify(), SwarmClass::FlashCrowd);
        let dead = SwarmStat {
            name: "zz".into(),
            hourly_peers: vec![0, 0, 0],
        };
        assert_eq!(dead.classify(), SwarmClass::Dying);
    }

    #[test]
    fn mean_population() {
        let stat = SwarmStat {
            name: "m".into(),
            hourly_peers: vec![10, 20, 30],
        };
        assert!((stat.mean_population() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn short_series_classified() {
        let stat = SwarmStat {
            name: "short".into(),
            hourly_peers: vec![100, 100],
        };
        assert_eq!(stat.classify(), SwarmClass::Stable);
    }

    #[test]
    #[should_panic(expected = "at least one hour")]
    fn synthesize_rejects_zero_hours() {
        let mut rng = StdRng::seed_from_u64(0);
        synthesize(SwarmClass::Stable, "x", 100, 0, &mut rng);
    }
}
