//! # bt-traces — instrumented-client trace toolkit
//!
//! The paper validated its model against logs collected by a modified
//! BitTornado client injected into live swarms (§4.2). Live swarms are not
//! available in this environment, so this crate reproduces the *pipeline*
//! end to end and substitutes the data source:
//!
//! * [`record`] — the trace schema: timestamped cumulative bytes and
//!   potential-set size per sample, exactly the two series Fig. 2 plots;
//! * [`io`] — JSON-lines serialization (write/read round-trip);
//! * [`generator`] — synthetic traces from an instrumented observer peer
//!   inside a [`bt_swarm`] swarm, with sub-piece measurement jitter, and
//!   scenario presets that produce the paper's three archetypes (smooth,
//!   significant last phase, significant bootstrap phase);
//! * [`swarm_stats`] — synthetic hourly tracker statistics and the
//!   stable-swarm screening the paper performed by hand;
//! * [`stats`] — collection-level summaries (completion rates, duration
//!   CDFs, per-phase time shares);
//! * [`analyzer`] — phase segmentation of a trace into
//!   bootstrap / efficient / last-download phases.
//!
//! The substitution preserves what matters: the paper's claim is the
//! *qualitative phase structure* of per-client download logs, the swarm
//! simulator is this workspace's ground truth for that structure, and the
//! analyzer sees only the logged series — the same view a real measurement
//! pipeline had.
//!
//! ## Quickstart
//!
//! ```
//! use bt_traces::generator::{generate, TraceScenario};
//! use bt_traces::analyzer::segment;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let traces = generate(TraceScenario::Smooth, 4, 42)?;
//! assert!(!traces.is_empty());
//! let phases = segment(&traces[0]);
//! assert!(phases.total_samples > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyzer;
pub mod generator;
pub mod io;
pub mod record;
pub mod stats;
pub mod swarm_stats;

pub use analyzer::{segment, PhaseSummary};
pub use record::{Trace, TraceSample};

/// Errors produced by this crate.
#[derive(Debug)]
pub enum Error {
    /// Underlying swarm configuration failed.
    Swarm(bt_swarm::Error),
    /// Serialization or deserialization failed.
    Serde(serde_json::Error),
    /// File I/O failed.
    Io(std::io::Error),
    /// A trace violated schema expectations.
    InvalidTrace(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Swarm(e) => write!(f, "swarm error: {e}"),
            Error::Serde(e) => write!(f, "serialization error: {e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::InvalidTrace(detail) => write!(f, "invalid trace: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Swarm(e) => Some(e),
            Error::Serde(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::InvalidTrace(_) => None,
        }
    }
}

impl From<bt_swarm::Error> for Error {
    fn from(e: bt_swarm::Error) -> Self {
        Error::Swarm(e)
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Serde(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
