//! JSON-lines trace serialization.
//!
//! One trace per line, so collections stream and append naturally — the
//! format an instrumented client would log to disk.

use std::io::{BufRead, Write};

use crate::record::Trace;
use crate::Result;

/// Writes traces as JSON lines. A `&mut` reference can be passed as the
/// writer.
///
/// # Errors
///
/// I/O or serialization failures.
///
/// # Example
///
/// ```
/// use bt_traces::io::{read_traces, write_traces};
/// use bt_traces::{Trace, TraceSample};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let traces = vec![Trace {
///     client: "c1".into(),
///     swarm: "alpha".into(),
///     piece_bytes: 262_144,
///     pieces: 200,
///     completed: true,
///     samples: vec![TraceSample { t: 0.0, bytes: 0, potential: 0 }],
/// }];
/// let mut buf = Vec::new();
/// write_traces(&mut buf, &traces)?;
/// let back = read_traces(buf.as_slice())?;
/// assert_eq!(traces, back);
/// # Ok(())
/// # }
/// ```
pub fn write_traces<W: Write>(mut writer: W, traces: &[Trace]) -> Result<()> {
    for trace in traces {
        serde_json::to_writer(&mut writer, trace)?;
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads traces from JSON lines, validating each. Blank lines are skipped.
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// I/O, deserialization, or [`Trace::validate`] failures.
pub fn read_traces<R: BufRead>(reader: R) -> Result<Vec<Trace>> {
    let mut traces = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let trace: Trace = serde_json::from_str(&line)?;
        trace.validate()?;
        traces.push(trace);
    }
    Ok(traces)
}

/// Writes traces to a file path.
///
/// # Errors
///
/// Same conditions as [`write_traces`].
pub fn write_traces_to_path<P: AsRef<std::path::Path>>(path: P, traces: &[Trace]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_traces(std::io::BufWriter::new(file), traces)
}

/// Reads traces from a file path.
///
/// # Errors
///
/// Same conditions as [`read_traces`].
pub fn read_traces_from_path<P: AsRef<std::path::Path>>(path: P) -> Result<Vec<Trace>> {
    let file = std::fs::File::open(path)?;
    read_traces(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceSample;

    fn trace(client: &str) -> Trace {
        Trace {
            client: client.into(),
            swarm: "test".into(),
            piece_bytes: 10,
            pieces: 5,
            completed: false,
            samples: vec![
                TraceSample {
                    t: 0.0,
                    bytes: 0,
                    potential: 1,
                },
                TraceSample {
                    t: 1.0,
                    bytes: 20,
                    potential: 2,
                },
            ],
        }
    }

    #[test]
    fn round_trip_multiple() {
        let traces = vec![trace("a"), trace("b"), trace("c")];
        let mut buf = Vec::new();
        write_traces(&mut buf, &traces).unwrap();
        assert_eq!(read_traces(buf.as_slice()).unwrap(), traces);
    }

    #[test]
    fn blank_lines_skipped() {
        let mut buf = Vec::new();
        write_traces(&mut buf, &[trace("a")]).unwrap();
        buf.extend_from_slice(b"\n\n");
        write_traces(&mut buf, &[trace("b")]).unwrap();
        assert_eq!(read_traces(buf.as_slice()).unwrap().len(), 2);
    }

    #[test]
    fn malformed_line_errors() {
        let result = read_traces(b"{not json}\n".as_slice());
        assert!(matches!(result, Err(crate::Error::Serde(_))));
    }

    #[test]
    fn invalid_trace_rejected_on_read() {
        // Bytes regress; serialization succeeds but validation must fail.
        let mut bad = trace("bad");
        bad.samples[1].bytes = 0;
        bad.samples[0].bytes = 20;
        let mut buf = Vec::new();
        write_traces(&mut buf, &[bad]).unwrap();
        assert!(matches!(
            read_traces(buf.as_slice()),
            Err(crate::Error::InvalidTrace(_))
        ));
    }

    #[test]
    fn path_round_trip() {
        let dir = std::env::temp_dir().join("bt-traces-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.jsonl");
        let traces = vec![trace("x")];
        write_traces_to_path(&path, &traces).unwrap();
        assert_eq!(read_traces_from_path(&path).unwrap(), traces);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_input_reads_empty() {
        assert!(read_traces(b"".as_slice()).unwrap().is_empty());
    }
}
