//! Aggregate statistics over trace collections.
//!
//! The per-trace view lives in [`crate::analyzer`]; this module summarizes
//! whole collections — the level at which a measurement study reports its
//! results (completion rates, download-time distributions, per-phase time
//! shares).

use serde::{Deserialize, Serialize};

use crate::analyzer::segment;
use crate::record::Trace;

/// Aggregate summary of a trace collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionSummary {
    /// Number of traces.
    pub traces: usize,
    /// Traces whose client finished the download.
    pub completed: usize,
    /// Mean download duration over completed traces (seconds; NaN if none).
    pub mean_duration_secs: f64,
    /// Mean download rate over completed traces (bytes/sec; NaN if none).
    pub mean_rate: f64,
    /// Mean fraction of trace time spent in each phase
    /// (bootstrap, efficient, last), averaged over all traces.
    pub phase_shares: [f64; 3],
}

/// Summarizes a collection of traces.
///
/// # Example
///
/// ```
/// use bt_traces::generator::{generate, TraceScenario};
/// use bt_traces::stats::summarize;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let traces = generate(TraceScenario::Smooth, 3, 1)?;
/// let summary = summarize(&traces);
/// assert_eq!(summary.traces, 3);
/// assert!(summary.phase_shares[1] > 0.5, "smooth = mostly efficient");
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn summarize(traces: &[Trace]) -> CollectionSummary {
    let completed: Vec<&Trace> = traces.iter().filter(|t| t.completed).collect();
    let mean_duration_secs = if completed.is_empty() {
        f64::NAN
    } else {
        completed.iter().map(|t| t.duration()).sum::<f64>() / completed.len() as f64
    };
    let mean_rate = if completed.is_empty() {
        f64::NAN
    } else {
        completed.iter().map(|t| t.mean_rate()).sum::<f64>() / completed.len() as f64
    };
    let mut shares = [0.0; 3];
    let mut counted = 0usize;
    for trace in traces {
        let phases = segment(trace);
        let total = phases.bootstrap_secs + phases.efficient_secs + phases.last_secs;
        if total > 0.0 {
            shares[0] += phases.bootstrap_secs / total;
            shares[1] += phases.efficient_secs / total;
            shares[2] += phases.last_secs / total;
            counted += 1;
        }
    }
    if counted > 0 {
        for share in &mut shares {
            *share /= counted as f64;
        }
    }
    CollectionSummary {
        traces: traces.len(),
        completed: completed.len(),
        mean_duration_secs,
        mean_rate,
        phase_shares: shares,
    }
}

/// Empirical CDF of completed-download durations: sorted `(duration_secs,
/// cumulative_fraction)` points. Empty if no trace completed.
#[must_use]
pub fn duration_cdf(traces: &[Trace]) -> Vec<(f64, f64)> {
    let mut durations: Vec<f64> = traces
        .iter()
        .filter(|t| t.completed)
        .map(Trace::duration)
        .collect();
    durations.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let n = durations.len();
    durations
        .into_iter()
        .enumerate()
        .map(|(i, d)| (d, (i + 1) as f64 / n as f64))
        .collect()
}

/// Downsamples a trace to at most `max_samples` samples (uniform stride,
/// always keeping the first and last). Traces already small are returned
/// unchanged.
#[must_use]
pub fn downsample(trace: &Trace, max_samples: usize) -> Trace {
    if max_samples < 2 || trace.samples.len() <= max_samples {
        return trace.clone();
    }
    let n = trace.samples.len();
    let mut samples = Vec::with_capacity(max_samples);
    for i in 0..max_samples {
        let idx = if i == max_samples - 1 {
            n - 1
        } else {
            i * (n - 1) / (max_samples - 1)
        };
        samples.push(trace.samples[idx]);
    }
    samples.dedup_by_key(|s| s.t.to_bits());
    Trace {
        samples,
        ..trace.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceSample;

    fn trace(completed: bool, samples: Vec<(f64, u64, u32)>) -> Trace {
        Trace {
            client: "c".into(),
            swarm: "s".into(),
            piece_bytes: 100,
            pieces: 10,
            completed,
            samples: samples
                .into_iter()
                .map(|(t, bytes, potential)| TraceSample {
                    t,
                    bytes,
                    potential,
                })
                .collect(),
        }
    }

    #[test]
    fn summarize_counts_and_rates() {
        let traces = vec![
            trace(true, vec![(0.0, 0, 5), (10.0, 500, 5), (20.0, 1000, 5)]),
            trace(false, vec![(0.0, 0, 0), (10.0, 100, 0)]),
        ];
        let s = summarize(&traces);
        assert_eq!(s.traces, 2);
        assert_eq!(s.completed, 1);
        assert!((s.mean_duration_secs - 20.0).abs() < 1e-12);
        assert!((s.mean_rate - 50.0).abs() < 1e-12);
        let share_sum: f64 = s.phase_shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "{:?}", s.phase_shares);
    }

    #[test]
    fn summarize_empty_collection() {
        let s = summarize(&[]);
        assert_eq!(s.traces, 0);
        assert!(s.mean_duration_secs.is_nan());
        assert_eq!(s.phase_shares, [0.0; 3]);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let traces = vec![
            trace(true, vec![(0.0, 0, 1), (30.0, 1000, 1)]),
            trace(true, vec![(0.0, 0, 1), (10.0, 1000, 1)]),
            trace(false, vec![(0.0, 0, 1)]),
        ];
        let cdf = duration_cdf(&traces);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0], (10.0, 0.5));
        assert_eq!(cdf[1], (30.0, 1.0));
    }

    #[test]
    fn cdf_empty_when_no_completions() {
        assert!(duration_cdf(&[trace(false, vec![(0.0, 0, 0)])]).is_empty());
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let samples: Vec<(f64, u64, u32)> = (0..100)
            .map(|i| (f64::from(i), u64::from(i as u32) * 10, 3))
            .collect();
        let t = trace(true, samples);
        let small = downsample(&t, 10);
        assert!(small.samples.len() <= 10);
        assert_eq!(small.samples[0].t, 0.0);
        assert_eq!(small.samples.last().unwrap().t, 99.0);
        small.validate().unwrap();
    }

    #[test]
    fn downsample_noop_when_small() {
        let t = trace(true, vec![(0.0, 0, 1), (1.0, 10, 1)]);
        assert_eq!(downsample(&t, 10), t);
        assert_eq!(downsample(&t, 0), t);
    }
}
