//! Synthetic trace generation.
//!
//! Drives a [`bt_swarm`] swarm with instrumented observer peers and turns
//! their per-round logs into [`Trace`]s, adding sub-piece measurement
//! jitter (a real client reports partially downloaded pieces, so the byte
//! counter moves between piece completions).
//!
//! Three scenario presets recreate the archetypes the paper's Fig. 2
//! exhibits:
//!
//! * [`TraceScenario::Smooth`] — a large peer-set size keeps the potential
//!   set well above `k` throughout, giving a smooth download;
//! * [`TraceScenario::LastPhase`] — a small peer-set size makes the
//!   potential set collapse near the end (significant last download
//!   phase);
//! * [`TraceScenario::BootstrapStall`] — a skewed swarm with
//!   replication-weighted first pieces leaves newcomers holding untradable
//!   pieces (significant bootstrap phase).

use bt_des::SeedStream;
use bt_swarm::config::{BootstrapInjection, InitialPieces};
use bt_swarm::{Swarm, SwarmConfig};
use rand::Rng;

use crate::record::{Trace, TraceSample};
use crate::Result;

/// Seconds of wall-clock time one simulation round represents in generated
/// traces (a piece-exchange period; arbitrary but fixed).
pub const SECONDS_PER_ROUND: f64 = 10.0;

/// The archetype a generated collection should exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceScenario {
    /// Smooth download without a predominant bootstrap or last phase
    /// (Fig. 2(a)/(b)).
    Smooth,
    /// Significant last download phase (Fig. 2(c)/(d)).
    LastPhase,
    /// Significant bootstrap phase (Fig. 2(e)/(f)).
    BootstrapStall,
}

impl TraceScenario {
    /// The swarm configuration that produces this archetype.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors (none for these
    /// constants; kept fallible for robustness).
    pub fn config(self, observers: u32, seed: u64) -> Result<SwarmConfig> {
        let config = match self {
            TraceScenario::Smooth => SwarmConfig::builder()
                .pieces(120)
                .max_connections(7)
                .neighbor_set_size(40)
                .arrival_rate(2.0)
                .initial_leechers(50)
                .initial_pieces(InitialPieces::Random { count: 30 })
                .max_rounds(600)
                .observers(observers)
                .seed(seed)
                .build()?,
            TraceScenario::LastPhase => SwarmConfig::builder()
                .pieces(120)
                .max_connections(7)
                .neighbor_set_size(6)
                .arrival_rate(1.0)
                .initial_leechers(25)
                .initial_pieces(InitialPieces::Random { count: 30 })
                .seed_uploads_per_round(1)
                .join_eviction(false)
                .max_rounds(1_200)
                .observers(observers)
                .seed(seed)
                .build()?,
            TraceScenario::BootstrapStall => SwarmConfig::builder()
                .pieces(120)
                .max_connections(7)
                .neighbor_set_size(4)
                .arrival_rate(0.05)
                .initial_leechers(100)
                .initial_pieces(InitialPieces::Skewed {
                    count: 30,
                    strength: 0.3,
                })
                .bootstrap(BootstrapInjection::Weighted { seed_weight: 0.01 })
                .seed_uploads_per_round(1)
                .observe_from(100)
                .max_rounds(1_500)
                .observers(observers)
                .seed(seed)
                .build()?,
        };
        Ok(config)
    }

    /// Human-readable scenario name (used in trace metadata).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceScenario::Smooth => "smooth",
            TraceScenario::LastPhase => "last-phase",
            TraceScenario::BootstrapStall => "bootstrap-stall",
        }
    }
}

/// Generates `observers` traces under the given scenario.
///
/// The traces come from the swarm's observer peers; incomplete downloads
/// (observers still running when the simulation ends) are included with
/// `completed = false`, since the bootstrap-stall archetype is precisely
/// about clients that barely progress.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn generate(scenario: TraceScenario, observers: u32, seed: u64) -> Result<Vec<Trace>> {
    let config = scenario.config(observers, seed)?;
    let piece_bytes = config.piece_bytes;
    let pieces = config.pieces;
    let metrics = Swarm::new(config).run();
    let mut jitter_rng = SeedStream::new(seed).rng("trace-jitter", 0);
    let traces = metrics
        .observers
        .iter()
        .map(|log| {
            // Peers depart the round they complete, before metric sampling,
            // so completion is determined from the completion records.
            let completion = metrics.completions.iter().find(|rec| rec.id == log.id);
            let completed = completion.is_some();
            let start_round = log.rounds.first().copied().unwrap_or(0);
            let samples = log
                .rounds
                .iter()
                .zip(&log.pieces)
                .zip(&log.potential)
                .map(|((&round, &held), &potential)| {
                    // Sub-piece jitter: a real client reports bytes of
                    // partially downloaded pieces. Only while incomplete
                    // and actively connected can bytes run ahead.
                    let base = u64::from(held) * piece_bytes;
                    let jitter = if held < pieces && potential > 0 {
                        jitter_rng.gen_range(0..piece_bytes / 2)
                    } else {
                        0
                    };
                    TraceSample {
                        t: (round - start_round) as f64 * SECONDS_PER_ROUND,
                        bytes: (base + jitter).min(u64::from(pieces) * piece_bytes),
                        potential,
                    }
                })
                .collect::<Vec<_>>();
            // Enforce monotone bytes despite jitter.
            let mut samples = samples;
            let mut high = 0u64;
            for s in &mut samples {
                high = high.max(s.bytes);
                s.bytes = high;
            }
            // Close a completed trace with a full-file sample at the
            // completion round (the client logs its own finish).
            if let Some(rec) = completion {
                samples.push(TraceSample {
                    t: (rec.completed_round.max(start_round) - start_round) as f64
                        * SECONDS_PER_ROUND,
                    bytes: u64::from(pieces) * piece_bytes,
                    potential: 0,
                });
            }
            Trace {
                client: format!("{}-{}", scenario.name(), log.id),
                swarm: scenario.name().to_string(),
                piece_bytes,
                pieces,
                completed,
                samples,
            }
        })
        .collect();
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_generate_valid_traces() {
        for scenario in [
            TraceScenario::Smooth,
            TraceScenario::LastPhase,
            TraceScenario::BootstrapStall,
        ] {
            let traces = generate(scenario, 3, 1).unwrap();
            assert_eq!(traces.len(), 3, "{scenario:?}");
            for t in &traces {
                t.validate().unwrap_or_else(|e| panic!("{scenario:?}: {e}"));
                assert!(!t.samples.is_empty());
                assert_eq!(t.swarm, scenario.name());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TraceScenario::Smooth, 2, 9).unwrap();
        let b = generate(TraceScenario::Smooth, 2, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_vary_output() {
        let a = generate(TraceScenario::Smooth, 2, 1).unwrap();
        let b = generate(TraceScenario::Smooth, 2, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn smooth_scenario_completes_observers() {
        let traces = generate(TraceScenario::Smooth, 4, 3).unwrap();
        let completed = traces.iter().filter(|t| t.completed).count();
        assert!(
            completed >= 3,
            "smooth swarm should complete most observers, got {completed}/4"
        );
    }

    #[test]
    fn jitter_never_breaks_piece_floor() {
        let traces = generate(TraceScenario::Smooth, 2, 5).unwrap();
        for t in &traces {
            for (s, held) in t.samples.iter().zip(t.pieces_series()) {
                // Reported bytes are at least the completed pieces and less
                // than one piece ahead.
                assert!(s.bytes >= u64::from(held) * t.piece_bytes - t.piece_bytes.min(s.bytes));
            }
        }
    }

    #[test]
    fn scenario_names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            TraceScenario::Smooth.name(),
            TraceScenario::LastPhase.name(),
            TraceScenario::BootstrapStall.name(),
        ]
        .into();
        assert_eq!(names.len(), 3);
    }
}
