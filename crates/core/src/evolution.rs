//! Monte-Carlo evolution of the download chain and expected timelines.
//!
//! The exact fundamental-matrix analysis in [`crate::transitions`] is cubic
//! in the state-space size, so realistic configurations (`B = 200`,
//! `s = 40`) are analyzed here by sampling trajectories of the chain. This
//! is the machinery behind the paper's Fig. 1(b): the expected time at which
//! a peer holds `b` pieces, compared against the swarm simulator.

use rand::Rng;

use crate::params::ModelParams;
use crate::phase::{Phase, PhaseSojourns};
use crate::state::DownloadState;
use crate::transitions::TransitionKernel;
use crate::Result;

/// A sampled trajectory of the download chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    states: Vec<DownloadState>,
    pieces: u32,
}

impl Trajectory {
    /// The visited states, starting at `(0, 0, 0)`, ending at absorption
    /// (or at the step cap).
    #[must_use]
    pub fn states(&self) -> &[DownloadState] {
        &self.states
    }

    /// Number of steps taken (states visited minus one).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.states.len() - 1
    }

    /// The final state.
    ///
    /// # Panics
    ///
    /// Never panics: a trajectory always contains the initial state.
    #[must_use]
    pub fn final_state(&self) -> DownloadState {
        *self.states.last().expect("trajectory is never empty")
    }

    /// Whether the trajectory reached absorption.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.final_state().is_absorbed(self.pieces)
    }

    /// The first step index at which the peer held at least `b` pieces,
    /// or `None` if it never did.
    #[must_use]
    pub fn first_step_with_pieces(&self, b: u32) -> Option<usize> {
        self.states.iter().position(|s| s.b >= b)
    }

    /// Per-phase step counts along the trajectory.
    #[must_use]
    pub fn sojourns(&self) -> PhaseSojourns {
        let mut sojourns = PhaseSojourns::default();
        // The state *before* each step determines the phase the step was
        // spent in.
        for &state in &self.states[..self.states.len() - 1] {
            sojourns.record(Phase::classify(state, self.pieces));
        }
        sojourns
    }

    /// Mean potential-set size at each piece count `0..=B` (NaN where a
    /// piece count was never observed).
    #[must_use]
    pub fn potential_by_pieces(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.pieces as usize + 1];
        let mut counts = vec![0u32; self.pieces as usize + 1];
        for s in &self.states {
            sums[s.b as usize] += f64::from(s.i);
            counts[s.b as usize] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(&sum, &c)| if c == 0 { f64::NAN } else { sum / f64::from(c) })
            .collect()
    }
}

/// A Monte-Carlo walker over the download chain.
///
/// # Example
///
/// ```
/// use bt_model::evolution::Walker;
/// use bt_model::ModelParams;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = ModelParams::builder().pieces(30).build()?;
/// let mut walker = Walker::new(&params, StdRng::seed_from_u64(1));
/// let t = walker.run();
/// assert!(t.completed());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Walker<R> {
    kernel: TransitionKernel,
    rng: R,
    max_steps: usize,
}

/// Default step cap for a single trajectory; generous relative to any
/// realistic download length, it only guards against `α = 0` / `γ = 0`
/// configurations whose chains never absorb.
pub const DEFAULT_MAX_STEPS: usize = 1_000_000;

impl<R: Rng> Walker<R> {
    /// Creates a walker.
    ///
    /// # Panics
    ///
    /// Panics if the trading-power curve cannot be computed — impossible
    /// for parameters built via [`ModelParams::builder`], which validates
    /// `φ`. Use [`Walker::try_new`] to handle the error.
    #[must_use]
    pub fn new(params: &ModelParams, rng: R) -> Self {
        Self::try_new(params, rng).expect("validated params always yield a kernel")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Propagates Eq. 1 curve construction errors.
    pub fn try_new(params: &ModelParams, rng: R) -> Result<Self> {
        Ok(Walker {
            kernel: TransitionKernel::new(params)?,
            rng,
            max_steps: DEFAULT_MAX_STEPS,
        })
    }

    /// Overrides the per-trajectory step cap.
    pub fn set_max_steps(&mut self, max_steps: usize) {
        self.max_steps = max_steps;
    }

    /// Samples one step from `state`.
    pub fn step(&mut self, state: DownloadState) -> DownloadState {
        let successors = self.kernel.successors(state);
        let weights: Vec<f64> = successors.iter().map(|&(_, p)| p).collect();
        successors[bt_markov::chain::sample_index(&weights, &mut self.rng)].0
    }

    /// Samples a complete trajectory from `(0, 0, 0)` to absorption (or the
    /// step cap).
    pub fn run(&mut self) -> Trajectory {
        self.run_from(DownloadState::INITIAL)
    }

    /// Samples a trajectory starting from an arbitrary state.
    pub fn run_from(&mut self, start: DownloadState) -> Trajectory {
        let pieces = self.kernel.params().pieces();
        let mut states = vec![start];
        let mut current = start;
        for _ in 0..self.max_steps {
            if current.is_absorbed(pieces) {
                break;
            }
            current = self.step(current);
            states.push(current);
        }
        Trajectory { states, pieces }
    }
}

/// Aggregated expected-timeline statistics over many trajectories — the
/// model-side series of the paper's Fig. 1(b) (time vs pieces) and Fig. 1(a)
/// (potential-set ratio vs pieces).
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// `mean_step[b]` — average step at which the peer first held `b`
    /// pieces (NaN if unreached in every replication).
    pub mean_step: Vec<f64>,
    /// `mean_potential[b]` — average potential-set size while holding `b`
    /// pieces (NaN if unobserved).
    pub mean_potential: Vec<f64>,
    /// Average per-phase sojourns.
    pub mean_sojourns: [f64; 3],
    /// Replications that reached absorption.
    pub completed: usize,
    /// Total replications.
    pub replications: usize,
}

impl Timeline {
    /// Potential-set size divided by the neighbor-set size `s` — the y-axis
    /// of Fig. 1(a).
    #[must_use]
    pub fn potential_ratio(&self, s: u32) -> Vec<f64> {
        self.mean_potential
            .iter()
            .map(|&v| v / f64::from(s))
            .collect()
    }
}

/// Runs `replications` trajectories and aggregates the timeline.
///
/// # Errors
///
/// Propagates kernel-construction errors.
///
/// # Panics
///
/// Panics if `replications == 0`.
pub fn expected_timeline<R: Rng>(
    params: &ModelParams,
    replications: usize,
    rng: R,
) -> Result<Timeline> {
    assert!(replications > 0, "need at least one replication");
    let mut walker = Walker::try_new(params, rng)?;
    let b_max = params.pieces() as usize;
    let mut step_sum = vec![0.0; b_max + 1];
    let mut step_count = vec![0u32; b_max + 1];
    let mut pot_sum = vec![0.0; b_max + 1];
    let mut pot_count = vec![0u32; b_max + 1];
    let mut sojourn_sum = [0.0; 3];
    let mut completed = 0;
    for _ in 0..replications {
        let t = walker.run();
        if t.completed() {
            completed += 1;
        }
        for b in 0..=b_max {
            if let Some(step) = t.first_step_with_pieces(b as u32) {
                step_sum[b] += step as f64;
                step_count[b] += 1;
            }
        }
        for s in t.states() {
            pot_sum[s.b as usize] += f64::from(s.i);
            pot_count[s.b as usize] += 1;
        }
        let sj = t.sojourns();
        sojourn_sum[0] += sj.bootstrap as f64;
        sojourn_sum[1] += sj.efficient as f64;
        sojourn_sum[2] += sj.last_download as f64;
    }
    let reps = replications as f64;
    Ok(Timeline {
        mean_step: step_sum
            .iter()
            .zip(&step_count)
            .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / f64::from(c) })
            .collect(),
        mean_potential: pot_sum
            .iter()
            .zip(&pot_count)
            .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / f64::from(c) })
            .collect(),
        mean_sojourns: [
            sojourn_sum[0] / reps,
            sojourn_sum[1] / reps,
            sojourn_sum[2] / reps,
        ],
        completed,
        replications,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(pieces: u32, s: u32) -> ModelParams {
        ModelParams::builder()
            .pieces(pieces)
            .max_connections(3)
            .neighbor_set_size(s)
            .alpha(0.4)
            .gamma(0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn walker_reaches_absorption() {
        let mut w = Walker::new(&params(20, 8), StdRng::seed_from_u64(3));
        let t = w.run();
        assert!(t.completed());
        assert_eq!(t.final_state(), DownloadState::absorbed(20));
        assert!(t.steps() >= 20 / 3);
    }

    #[test]
    fn trajectory_pieces_monotone() {
        let mut w = Walker::new(&params(25, 6), StdRng::seed_from_u64(9));
        let t = w.run();
        for pair in t.states().windows(2) {
            assert!(pair[1].b >= pair[0].b, "pieces can never be lost");
        }
    }

    #[test]
    fn first_piece_in_one_step() {
        let mut w = Walker::new(&params(10, 5), StdRng::seed_from_u64(5));
        let t = w.run();
        assert_eq!(t.first_step_with_pieces(0), Some(0));
        assert_eq!(t.first_step_with_pieces(1), Some(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            Walker::new(&params(15, 5), StdRng::seed_from_u64(seed))
                .run()
                .states()
                .to_vec()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn step_cap_stops_non_absorbing_chains() {
        let p = ModelParams::builder()
            .pieces(10)
            .max_connections(2)
            .neighbor_set_size(4)
            .p_init(0.0) // entry finds no potential peers...
            .alpha(0.0) // ...and bootstrap never escapes
            .build()
            .unwrap();
        let mut w = Walker::new(&p, StdRng::seed_from_u64(0));
        w.set_max_steps(200);
        let t = w.run();
        assert!(!t.completed());
        assert_eq!(t.steps(), 200);
        // All those steps were bootstrap.
        assert_eq!(t.sojourns().bootstrap, 200);
    }

    #[test]
    fn timeline_steps_monotone_in_pieces() {
        let tl = expected_timeline(&params(20, 8), 40, StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(tl.completed, 40);
        let steps: Vec<f64> = tl
            .mean_step
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        for w in steps.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "mean first-passage must be monotone");
        }
    }

    #[test]
    fn timeline_potential_ratio_bounded() {
        let p = params(20, 8);
        let tl = expected_timeline(&p, 30, StdRng::seed_from_u64(11)).unwrap();
        for &r in tl.potential_ratio(8).iter().filter(|v| !v.is_nan()) {
            assert!((0.0..=1.0 + 1e-9).contains(&r), "ratio {r}");
        }
    }

    #[test]
    fn larger_neighbor_set_downloads_no_slower() {
        // Fig. 1(b)'s headline: small peer-set size suffers.
        let small = expected_timeline(&params(30, 2), 60, StdRng::seed_from_u64(2)).unwrap();
        let large = expected_timeline(&params(30, 20), 60, StdRng::seed_from_u64(2)).unwrap();
        let total_small = small.mean_step[30];
        let total_large = large.mean_step[30];
        assert!(
            total_large <= total_small,
            "s=20 ({total_large}) must not be slower than s=2 ({total_small})"
        );
    }

    #[test]
    fn sojourns_sum_to_steps() {
        let mut w = Walker::new(&params(15, 6), StdRng::seed_from_u64(21));
        let t = w.run();
        assert_eq!(t.sojourns().total() as usize, t.steps());
    }

    #[test]
    fn potential_by_pieces_has_full_support_on_completion() {
        let mut w = Walker::new(&params(12, 6), StdRng::seed_from_u64(13));
        let t = w.run();
        let pot = t.potential_by_pieces();
        assert_eq!(pot.len(), 13);
        // Piece counts actually visited have finite means.
        for s in t.states() {
            assert!(!pot[s.b as usize].is_nan());
        }
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = expected_timeline(&params(10, 5), 0, StdRng::seed_from_u64(0));
    }
}
