//! The connection-class efficiency model (§5, Eq. 4–6).
//!
//! Peers are grouped into classes by their number of active connections;
//! `x_i` is the fraction of peers with `i` connections, `i = 0..=k`. Per
//! round:
//!
//! * **Downward flow (Eq. 4)** — each of a peer's `i` connections fails
//!   independently with probability `1 − p_r`, so class `i` redistributes
//!   binomially: the flow `i → j` is `x_i · w^i_{i−j}` with
//!   `w^i_l = C(i, l)(1 − p_r)^l p_r^{i−l}`.
//! * **Upward flow (Eq. 5–6)** — peers with an open slot attempt one
//!   encounter with a uniformly random peer; the encounter succeeds iff the
//!   target also has an open slot (is not in class `k`), promoting *both*
//!   endpoints. Classes are updated in increasing order of `i`, which — as
//!   the paper notes — biases the iteration toward an upper bound on the
//!   efficiency. The paper tracks single encounters of weight `1/N`; here
//!   the per-round aggregate is used with a factor ½ per role so that a
//!   peer participates in one encounter per round whether as initiator or
//!   target (the paper's one-at-a-time scheme summed over all `N` peers).
//!
//! The steady state is the fixed point of the combined sweep; the
//! efficiency is `η = (1/k) Σ i · x_i`.

use bt_markov::fixed_point::{self, Options};
use bt_markov::Binomial;
use rand::Rng;

use crate::{Error, Result};
use bt_markov::float::exactly_zero;

/// Order in which the upward (Eq. 5–6) class updates are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepOrder {
    /// The paper's scheme: classes updated in increasing order using the
    /// already-updated values. Mass promoted out of a low class can be
    /// promoted again higher up within the same sweep, which the paper
    /// notes makes the resulting efficiency an *upper bound*.
    Ascending,
    /// Physically conservative scheme: all upward flows are computed from
    /// the post-failure populations, so each peer participates in at most
    /// one encounter per round.
    #[default]
    Simultaneous,
}

/// The §5 efficiency model for a given `k` and re-encounter probability.
///
/// # Example
///
/// ```
/// use bt_model::efficiency::EfficiencyModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let eta1 = EfficiencyModel::new(1, 0.9)?.solve()?.efficiency;
/// let eta2 = EfficiencyModel::new(2, 0.9)?.solve()?.efficiency;
/// // The paper's headline: a large gain from k = 1 to k = 2.
/// assert!(eta2 > eta1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyModel {
    k: u32,
    p_r: f64,
    match_prob: f64,
    order: SweepOrder,
}

/// The solved steady state of the efficiency model.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Class populations `x_0..=x_k` (sums to 1).
    pub classes: Vec<f64>,
    /// Upload-slot utilization `η = (1/k) Σ i · x_i`.
    pub efficiency: f64,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

impl EfficiencyModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] if `k == 0` or `p_r ∉ [0, 1]`.
    pub fn new(k: u32, p_r: f64) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                detail: "k must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&p_r) || p_r.is_nan() {
            return Err(Error::InvalidParameter {
                name: "p_r",
                detail: format!("probability {p_r} outside [0, 1]"),
            });
        }
        Ok(EfficiencyModel {
            k,
            p_r,
            match_prob: 1.0,
            order: SweepOrder::default(),
        })
    }

    /// Creates a model with connection durations coupled to `k`, following
    /// the paper's §5 explanation of Fig. 4(a): with multiple simultaneous
    /// connections, freshly downloaded pieces keep existing connections
    /// tradable, so the per-round failure probability shrinks with `k`:
    /// `1 − p_r(k) = (1 − p_r_base) / k`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EfficiencyModel::new`].
    pub fn with_duration_coupling(k: u32, p_r_base: f64) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                detail: "k must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&p_r_base) || p_r_base.is_nan() {
            return Err(Error::InvalidParameter {
                name: "p_r",
                detail: format!("probability {p_r_base} outside [0, 1]"),
            });
        }
        let p_r = 1.0 - (1.0 - p_r_base) / f64::from(k);
        Ok(EfficiencyModel {
            k,
            p_r,
            match_prob: 1.0,
            order: SweepOrder::default(),
        })
    }

    /// Sets the probability that an encounter with an open peer actually
    /// finds exchangeable pieces (the potential-set membership probability
    /// `p₍c₎` of Eq. 1 folded into the encounter success). Default 1.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] if `p ∉ [0, 1]`.
    pub fn match_prob(mut self, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(Error::InvalidParameter {
                name: "match_prob",
                detail: format!("probability {p} outside [0, 1]"),
            });
        }
        self.match_prob = p;
        Ok(self)
    }

    /// Selects the upward-sweep order (default
    /// [`SweepOrder::Simultaneous`]).
    #[must_use]
    pub fn sweep_order(mut self, order: SweepOrder) -> Self {
        self.order = order;
        self
    }

    /// Maximum simultaneous connections `k`.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Re-encounter probability `p_r`.
    #[must_use]
    pub fn p_r(&self) -> f64 {
        self.p_r
    }

    /// One balance-equation sweep: Eq. 4 downward flows, then the Eq. 5–6
    /// upward flows in increasing class order. Probability mass is
    /// conserved exactly.
    #[must_use]
    pub fn sweep(&self, x: &[f64]) -> Vec<f64> {
        let k = self.k as usize;
        assert_eq!(x.len(), k + 1, "expected k + 1 class populations");
        // Downward: binomial survival of connections.
        let mut cur = vec![0.0; k + 1];
        for (l, &mass) in x.iter().enumerate() {
            if exactly_zero(mass) {
                continue;
            }
            let survive = Binomial::new(l as u64, self.p_r).expect("validated p_r");
            for (j, slot) in cur.iter_mut().enumerate().take(l + 1) {
                *slot += mass * survive.pmf(j as u64);
            }
        }
        match self.order {
            SweepOrder::Ascending => self.sweep_up_ascending(&mut cur),
            SweepOrder::Simultaneous => self.sweep_up_simultaneous(&mut cur),
        }
        cur
    }

    /// The paper's ascending upward sweep (Eq. 5–6) on already-updated
    /// values — an upper bound on the efficiency.
    fn sweep_up_ascending(&self, cur: &mut [f64]) {
        let k = self.k as usize;
        for i in 0..k {
            let open = 1.0 - cur[k];
            if exactly_zero(cur[i]) || open <= 0.0 {
                continue;
            }
            let initiators = cur[i];
            // Initiator promotions (half-weight per encounter role).
            let promoted = 0.5 * initiators * open * self.match_prob;
            // Target promotions across all open classes.
            let mut target_moves = vec![0.0; k + 1];
            for (l, mv) in target_moves.iter_mut().enumerate().take(k) {
                *mv = 0.5 * initiators * cur[l] * self.match_prob;
            }
            cur[i] -= promoted;
            cur[i + 1] += promoted;
            for (l, &mv) in target_moves.iter().enumerate().take(k) {
                cur[l] -= mv;
                cur[l + 1] += mv;
            }
        }
    }

    /// Upward flows computed from the post-failure populations: one
    /// encounter per peer per round.
    fn sweep_up_simultaneous(&self, cur: &mut [f64]) {
        let k = self.k as usize;
        let open = 1.0 - cur[k];
        if open <= 0.0 {
            return;
        }
        // Out-flow from class l: as initiator (0.5·y_l·open) plus as the
        // target of some initiator (0.5·open·y_l). Total y_l·open ≤ y_l.
        let flows: Vec<f64> = (0..k).map(|l| cur[l] * open * self.match_prob).collect();
        for (l, &fl) in flows.iter().enumerate() {
            cur[l] -= fl;
            cur[l + 1] += fl;
        }
    }

    /// Iterates the sweep to its fixed point from the all-idle state.
    ///
    /// # Errors
    ///
    /// [`Error::Numeric`] wrapping a convergence failure (does not occur
    /// for valid parameters; the sweep is a contraction in practice).
    pub fn solve(&self) -> Result<Equilibrium> {
        let k = self.k as usize;
        let mut x0 = vec![0.0; k + 1];
        x0[0] = 1.0;
        let opts = Options {
            tol: 1e-13,
            max_iters: 200_000,
            damping: 1.0,
            renormalize: true,
        };
        let fp = fixed_point::iterate(x0, opts, |x, out| {
            out.copy_from_slice(&self.sweep(x));
        })?;
        let efficiency = efficiency_of(&fp.value);
        Ok(Equilibrium {
            classes: fp.value,
            efficiency,
            iterations: fp.iterations,
        })
    }

    /// Solves the model for every `k` in `1..=k_max` (the paper's Fig. 4(a)
    /// sweep).
    ///
    /// # Errors
    ///
    /// Propagates [`EfficiencyModel::solve`] errors.
    pub fn sweep_k(k_max: u32, p_r: f64) -> Result<Vec<(u32, f64)>> {
        (1..=k_max)
            .map(|k| {
                let eta = EfficiencyModel::new(k, p_r)?.solve()?.efficiency;
                Ok((k, eta))
            })
            .collect()
    }
}

/// `η = (1/k) Σ i · x_i` for class populations `x_0..=x_k`.
///
/// # Panics
///
/// Panics if `classes` is empty or has length 1 (no connection slots).
#[must_use]
pub fn efficiency_of(classes: &[f64]) -> f64 {
    assert!(classes.len() >= 2, "need at least classes x_0 and x_1");
    let k = (classes.len() - 1) as f64;
    classes
        .iter()
        .enumerate()
        .map(|(i, &x)| i as f64 * x)
        .sum::<f64>()
        / k
}

/// Agent-based Monte-Carlo cross-check of the efficiency model: `n_peers`
/// peers maintain up to `k` pairwise connections; per round each connection
/// fails independently with probability `1 − p_r`, then every peer with an
/// open slot attempts one encounter with a uniformly random peer (success
/// iff the target has an open slot). Returns the time-averaged slot
/// utilization after a warm-up.
///
/// This is the "simulation" column of Fig. 4(a) at the granularity of the
/// §5 model itself (the full protocol simulator in `bt-swarm` provides the
/// protocol-level version).
///
/// # Panics
///
/// Panics if `k == 0`, `n_peers < 2`, or `rounds == 0`.
pub fn monte_carlo_efficiency<R: Rng>(
    k: u32,
    p_r: f64,
    n_peers: usize,
    rounds: usize,
    rng: &mut R,
) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert!(n_peers >= 2, "need at least two peers");
    assert!(rounds > 0, "need at least one round");
    let k = k as usize;
    // Adjacency as an edge set; degree per peer.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut degree = vec![0usize; n_peers];
    let warmup = rounds / 2;
    let mut util_sum = 0.0;
    let mut samples = 0usize;
    for round in 0..rounds {
        // Failures.
        edges.retain(|&(a, b)| {
            if rng.gen::<f64>() < p_r {
                true
            } else {
                degree[a] -= 1;
                degree[b] -= 1;
                false
            }
        });
        // Encounters: peers in random order.
        let mut order: Vec<usize> = (0..n_peers).collect();
        for idx in (1..order.len()).rev() {
            order.swap(idx, rng.gen_range(0..=idx));
        }
        for &p in &order {
            if degree[p] >= k {
                continue;
            }
            let mut q = rng.gen_range(0..n_peers - 1);
            if q >= p {
                q += 1;
            }
            if degree[q] >= k || edges.iter().any(|&(a, b)| (a, b) == (p.min(q), p.max(q))) {
                continue;
            }
            edges.push((p.min(q), p.max(q)));
            degree[p] += 1;
            degree[q] += 1;
        }
        if round >= warmup {
            let used: usize = degree.iter().sum();
            util_sum += used as f64 / (n_peers * k) as f64;
            samples += 1;
        }
    }
    util_sum / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(EfficiencyModel::new(0, 0.5).is_err());
        assert!(EfficiencyModel::new(2, -0.1).is_err());
        assert!(EfficiencyModel::new(2, 1.5).is_err());
        assert!(EfficiencyModel::new(2, f64::NAN).is_err());
    }

    #[test]
    fn sweep_conserves_mass() {
        let m = EfficiencyModel::new(4, 0.8).unwrap();
        let x = vec![0.2, 0.2, 0.2, 0.2, 0.2];
        let y = m.sweep(&x);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&v| v >= -1e-15), "no negative mass: {y:?}");
    }

    #[test]
    fn equilibrium_is_fixed_point() {
        let m = EfficiencyModel::new(3, 0.9).unwrap();
        let eq = m.solve().unwrap();
        let swept = m.sweep(&eq.classes);
        for (a, b) in eq.classes.iter().zip(&swept) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!((eq.classes.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_in_unit_interval() {
        for k in 1..=8 {
            for &p_r in &[0.1, 0.5, 0.9, 0.99] {
                let eta = EfficiencyModel::new(k, p_r)
                    .unwrap()
                    .solve()
                    .unwrap()
                    .efficiency;
                assert!((0.0..=1.0).contains(&eta), "k={k} p_r={p_r}: {eta}");
            }
        }
    }

    #[test]
    fn k1_matches_closed_form() {
        // For k = 1 one sweep is x₁ ← p_r·x₁ + (1 − p_r·x₁)²: failures
        // first, then every open peer pairs with another open peer. The
        // fixed point solves that quadratic.
        let p_r = 0.9;
        let eta = EfficiencyModel::new(1, p_r)
            .unwrap()
            .solve()
            .unwrap()
            .efficiency;
        let resid = eta - (p_r * eta + (1.0 - p_r * eta).powi(2));
        assert!(resid.abs() < 1e-9, "eta={eta}, residual={resid}");
    }

    #[test]
    fn large_gain_from_k1_to_k2_then_plateau() {
        // The paper's Fig. 4(a) conclusion, with the §5 duration coupling
        // (connection lifetimes grow with k).
        let curve: Vec<f64> = (1..=8)
            .map(|k| {
                EfficiencyModel::with_duration_coupling(k, 0.6)
                    .unwrap()
                    .match_prob(0.6)
                    .unwrap()
                    .solve()
                    .unwrap()
                    .efficiency
            })
            .collect();
        let gain_12 = curve[1] - curve[0];
        assert!(
            gain_12 > 0.03,
            "k=1→2 gain should be significant: {curve:?}"
        );
        for w in curve[1..].windows(2) {
            let gain = w[1] - w[0];
            assert!(gain < gain_12, "gains beyond k=2 are smaller: {curve:?}");
            assert!(gain > -0.02, "efficiency does not collapse: {curve:?}");
        }
    }

    #[test]
    fn sweep_orders_agree_closely() {
        // The ascending order re-promotes freshly promoted mass (upper-bound
        // bias, per the paper) but also sees a smaller open fraction for
        // later classes; the two effects nearly cancel, so the orders must
        // stay close and identical for k = 1 (single class, no reordering).
        let asc1 = EfficiencyModel::new(1, 0.8)
            .unwrap()
            .sweep_order(SweepOrder::Ascending)
            .solve()
            .unwrap()
            .efficiency;
        let sim1 = EfficiencyModel::new(1, 0.8)
            .unwrap()
            .solve()
            .unwrap()
            .efficiency;
        assert!((asc1 - sim1).abs() < 1e-9, "k=1: {asc1} vs {sim1}");
        for k in [2u32, 4] {
            let asc = EfficiencyModel::new(k, 0.8)
                .unwrap()
                .sweep_order(SweepOrder::Ascending)
                .solve()
                .unwrap()
                .efficiency;
            let sim = EfficiencyModel::new(k, 0.8)
                .unwrap()
                .solve()
                .unwrap()
                .efficiency;
            assert!((asc - sim).abs() < 0.05, "k={k}: {asc} vs {sim}");
        }
    }

    #[test]
    fn match_prob_lowers_efficiency() {
        let full = EfficiencyModel::new(2, 0.8)
            .unwrap()
            .solve()
            .unwrap()
            .efficiency;
        let half = EfficiencyModel::new(2, 0.8)
            .unwrap()
            .match_prob(0.5)
            .unwrap()
            .solve()
            .unwrap()
            .efficiency;
        assert!(half < full, "harder matching must hurt: {half} vs {full}");
        assert!(EfficiencyModel::new(2, 0.8)
            .unwrap()
            .match_prob(1.5)
            .is_err());
    }

    #[test]
    fn duration_coupling_raises_p_r_with_k() {
        let m1 = EfficiencyModel::with_duration_coupling(1, 0.6).unwrap();
        let m3 = EfficiencyModel::with_duration_coupling(3, 0.6).unwrap();
        assert!((m1.p_r() - 0.6).abs() < 1e-12);
        assert!((m3.p_r() - (1.0 - 0.4 / 3.0)).abs() < 1e-12);
        assert!(EfficiencyModel::with_duration_coupling(0, 0.6).is_err());
        assert!(EfficiencyModel::with_duration_coupling(2, 7.0).is_err());
    }

    #[test]
    fn efficiency_increases_with_p_r() {
        let mut last = 0.0;
        for &p_r in &[0.5, 0.7, 0.9, 0.99] {
            let eta = EfficiencyModel::new(2, p_r)
                .unwrap()
                .solve()
                .unwrap()
                .efficiency;
            assert!(eta > last, "eta({p_r}) = {eta} should exceed {last}");
            last = eta;
        }
    }

    #[test]
    fn zero_p_r_still_has_some_throughput() {
        // Connections all fail every round but one encounter per round
        // still re-forms one of them.
        let eta = EfficiencyModel::new(2, 0.0)
            .unwrap()
            .solve()
            .unwrap()
            .efficiency;
        assert!(eta > 0.0);
        assert!(eta < 0.9, "eta={eta}");
    }

    #[test]
    fn efficiency_of_uniform_classes() {
        // x = (1/3, 1/3, 1/3) over k = 2: η = (0 + 1/3 + 2/3)/2 = 0.5.
        assert!((efficiency_of(&[1.0 / 3.0; 3]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least classes")]
    fn efficiency_of_rejects_trivial() {
        let _ = efficiency_of(&[1.0]);
    }

    #[test]
    fn monte_carlo_agrees_with_model_shape() {
        let mut rng = StdRng::seed_from_u64(17);
        let p_r = 0.9;
        let mc1 = monte_carlo_efficiency(1, p_r, 300, 200, &mut rng);
        let mc2 = monte_carlo_efficiency(2, p_r, 300, 200, &mut rng);
        let m1 = EfficiencyModel::new(1, p_r)
            .unwrap()
            .solve()
            .unwrap()
            .efficiency;
        let m2 = EfficiencyModel::new(2, p_r)
            .unwrap()
            .solve()
            .unwrap()
            .efficiency;
        // Same ordering and the same large k=1→2 gain.
        assert!(
            mc2 > mc1,
            "simulation must also gain from k=2: {mc1} vs {mc2}"
        );
        // The model is an upper bound (per the paper's iteration-order
        // argument) and should be within a moderate gap of the simulation.
        assert!(m1 >= mc1 - 0.05, "model {m1} vs sim {mc1}");
        assert!(m2 >= mc2 - 0.05, "model {m2} vs sim {mc2}");
        assert!((m1 - mc1).abs() < 0.25, "model {m1} vs sim {mc1}");
        assert!((m2 - mc2).abs() < 0.25, "model {m2} vs sim {mc2}");
    }

    #[test]
    fn monte_carlo_deterministic_for_seed() {
        let run = |seed| monte_carlo_efficiency(2, 0.8, 50, 50, &mut StdRng::seed_from_u64(seed));
        assert_eq!(run(3), run(3));
        assert!(run(3) > 0.0);
    }
}
