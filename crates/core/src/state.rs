//! The `(n, b, i)` state triple and state-space indexing.

use serde::{Deserialize, Serialize};

use crate::params::ModelParams;

/// A state of the download-evolution chain: `n` active connections, `b`
/// downloaded pieces, `i` potential-set size.
///
/// # Example
///
/// ```
/// use bt_model::DownloadState;
///
/// let start = DownloadState::INITIAL;
/// assert_eq!(start, DownloadState::new(0, 0, 0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DownloadState {
    /// Number of active connections.
    pub n: u32,
    /// Number of downloaded pieces.
    pub b: u32,
    /// Potential-set size.
    pub i: u32,
}

impl DownloadState {
    /// The initial state `(0, 0, 0)` of a freshly joined peer.
    pub const INITIAL: DownloadState = DownloadState { n: 0, b: 0, i: 0 };

    /// Creates a state.
    #[must_use]
    pub const fn new(n: u32, b: u32, i: u32) -> Self {
        DownloadState { n, b, i }
    }

    /// The absorbing state `(0, B, 0)` for a file of `pieces` pieces.
    #[must_use]
    pub const fn absorbed(pieces: u32) -> Self {
        DownloadState {
            n: 0,
            b: pieces,
            i: 0,
        }
    }

    /// Whether this is the absorbing state for `pieces` pieces.
    #[must_use]
    pub fn is_absorbed(&self, pieces: u32) -> bool {
        self.b == pieces
    }

    /// The peer's instantaneous trading stock `b + n` (pieces on hand plus
    /// pieces in flight on active connections), the quantity Eq. 1–3
    /// condition on.
    #[must_use]
    pub fn stock(&self) -> u32 {
        self.b + self.n
    }
}

impl std::fmt::Display for DownloadState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(n={}, b={}, i={})", self.n, self.b, self.i)
    }
}

/// Bijective indexing of the full state space `{0..=k} × {0..=B} × {0..=s}`
/// for building explicit transition matrices over small configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateSpace {
    k: u32,
    pieces: u32,
    s: u32,
}

impl StateSpace {
    /// The state space implied by `params`.
    #[must_use]
    pub fn new(params: &ModelParams) -> Self {
        StateSpace {
            k: params.max_connections(),
            pieces: params.pieces(),
            s: params.neighbor_set_size(),
        }
    }

    /// Total number of states `(k+1)(B+1)(s+1)`.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.k as usize + 1) * (self.pieces as usize + 1) * (self.s as usize + 1)
    }

    /// Always false: a state space has at least the initial state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flattens a state to its index.
    ///
    /// # Panics
    ///
    /// Panics if the state is outside the space.
    #[must_use]
    pub fn index(&self, state: DownloadState) -> usize {
        assert!(
            state.n <= self.k && state.b <= self.pieces && state.i <= self.s,
            "state {state} outside space (k={}, B={}, s={})",
            self.k,
            self.pieces,
            self.s
        );
        let per_b = self.s as usize + 1;
        let per_n = (self.pieces as usize + 1) * per_b;
        state.n as usize * per_n + state.b as usize * per_b + state.i as usize
    }

    /// Inverse of [`StateSpace::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn state(&self, index: usize) -> DownloadState {
        assert!(index < self.len(), "index {index} out of {}", self.len());
        let per_b = self.s as usize + 1;
        let per_n = (self.pieces as usize + 1) * per_b;
        DownloadState {
            n: (index / per_n) as u32,
            b: ((index % per_n) / per_b) as u32,
            i: (index % per_b) as u32,
        }
    }

    /// Iterates over all states in index order.
    pub fn iter(&self) -> impl Iterator<Item = DownloadState> + '_ {
        (0..self.len()).map(move |idx| self.state(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelParams;

    fn small_space() -> StateSpace {
        let params = ModelParams::builder()
            .pieces(5)
            .max_connections(2)
            .neighbor_set_size(3)
            .build()
            .unwrap();
        StateSpace::new(&params)
    }

    #[test]
    fn initial_and_absorbed() {
        assert_eq!(DownloadState::INITIAL.stock(), 0);
        let done = DownloadState::absorbed(5);
        assert!(done.is_absorbed(5));
        assert!(!DownloadState::new(0, 4, 0).is_absorbed(5));
    }

    #[test]
    fn index_is_bijective() {
        let space = small_space();
        assert_eq!(space.len(), 3 * 6 * 4);
        for idx in 0..space.len() {
            assert_eq!(space.index(space.state(idx)), idx);
        }
    }

    #[test]
    fn iter_yields_all_states_once() {
        let space = small_space();
        let states: Vec<DownloadState> = space.iter().collect();
        assert_eq!(states.len(), space.len());
        let mut dedup = states.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), states.len());
    }

    #[test]
    #[should_panic(expected = "outside space")]
    fn index_rejects_foreign_state() {
        let _ = small_space().index(DownloadState::new(9, 0, 0));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn state_rejects_big_index() {
        let space = small_space();
        let _ = space.state(space.len());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(DownloadState::new(1, 2, 3).to_string(), "(n=1, b=2, i=3)");
    }

    #[test]
    fn stock_sums_b_and_n() {
        assert_eq!(DownloadState::new(3, 7, 1).stock(), 10);
    }

    #[test]
    fn serde_round_trip() {
        let s = DownloadState::new(1, 2, 3);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<DownloadState>(&json).unwrap(), s);
    }
}
