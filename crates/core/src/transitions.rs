//! The transition kernel `f · g · h` of the download-evolution chain
//! (Eq. 2–3 of the paper).
//!
//! One chain step is one piece-exchange round. The three factors update the
//! state components in the paper's prescribed order — pieces `b` first, then
//! potential set `i`, then connections `n` (which depends on the *new* `i′`):
//!
//! * `f(b′ | n, b)` — deterministic: the first piece arrives via seeds or
//!   optimistic unchoking (`b = 0 → b′ = 1`); afterwards each active
//!   connection delivers one piece (`b′ = min(b + n, B)`).
//! * `g(i′ | n, b, i)` — the potential set refreshes from the neighbor set:
//!   binomial `Bin(s, p_init)` on entry, binomial `Bin(s, p₍b+n₎)` while
//!   trading, and the waiting probabilities `α` (bootstrap) / `γ` (last
//!   download) when the potential set is empty.
//! * `h(n′ | n, b, i′)` — connections: `Y₁ ~ Bin(n, p_r)` survivors plus
//!   `Y₂ ~ Bin(max(min(i′, k) − n, 0), p_n)` new ones.
//!
//! Reaching `b′ = B` absorbs the process in `(0, B, 0)`.
//!
//! The paper's §3.2 prose describes the last download phase as a direct
//! `(0, b, 0) → (0, b+1, 0)` transition with probability `γ`; the kernel
//! here keeps the factored form (the piece arrives via `γ` admitting a
//! potential peer, `p_n` connecting, and `f` delivering), which reduces to
//! the prose description when `p_n = 1`.

use bt_markov::{AbsorbingChain, Binomial, TransitionMatrix};

use crate::params::ModelParams;
use crate::state::{DownloadState, StateSpace};
use crate::trading::trading_power_curve;
use crate::Result;
use bt_markov::float::exactly_zero;

/// A probability-weighted successor entry.
pub type Successor = (DownloadState, f64);

/// The transition kernel for a fixed set of [`ModelParams`], with the
/// Eq. 1 trading-power curve precomputed.
///
/// # Example
///
/// ```
/// use bt_model::transitions::TransitionKernel;
/// use bt_model::{DownloadState, ModelParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = ModelParams::builder().pieces(10).build()?;
/// let kernel = TransitionKernel::new(&params)?;
/// let succ = kernel.successors(DownloadState::INITIAL);
/// // On entry the peer always acquires its first piece.
/// assert!(succ.iter().all(|(s, _)| s.b == 1));
/// let total: f64 = succ.iter().map(|(_, p)| p).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransitionKernel {
    params: ModelParams,
    /// `p₍c₎` for `c = 0..=B` (0 at both ends).
    curve: Vec<f64>,
}

impl TransitionKernel {
    /// Builds the kernel, precomputing the trading-power curve.
    ///
    /// # Errors
    ///
    /// Propagates Eq. 1 evaluation errors (invalid `φ`).
    pub fn new(params: &ModelParams) -> Result<Self> {
        let curve = trading_power_curve(params.pieces(), params.phi())?;
        Ok(TransitionKernel {
            params: params.clone(),
            curve,
        })
    }

    /// The parameters this kernel was built from.
    #[must_use]
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The precomputed trading-power curve (indexed by `c = b + n`).
    #[must_use]
    pub fn trading_curve(&self) -> &[f64] {
        &self.curve
    }

    /// `f(b′ | n, b)` — the next piece count from tit-for-tat trading
    /// alone (deterministic, the paper's Eq. for `f`). Seed connections
    /// (§7.2) add on top of this; see [`TransitionKernel::pieces_dist`].
    #[must_use]
    pub fn next_pieces(&self, state: DownloadState) -> u32 {
        let pieces = self.params.pieces();
        if state.b == 0 {
            1
        } else {
            (state.b + state.n).min(pieces)
        }
    }

    /// Distribution of the next piece count including the §7.2 seeding
    /// extension: `b′ = min(f(b, n) + S, B)` with
    /// `S ~ Bin(seed_connections, p_seed)` free pieces from seeds.
    ///
    /// With `seed_connections = 0` (the paper's setting) this is the
    /// deterministic point mass at [`TransitionKernel::next_pieces`].
    #[must_use]
    pub fn pieces_dist(&self, state: DownloadState) -> Vec<(u32, f64)> {
        let pieces = self.params.pieces();
        let base = self.next_pieces(state);
        let seeds = self.params.seed_connections();
        if seeds == 0 {
            return vec![(base, 1.0)];
        }
        let free = Binomial::new(u64::from(seeds), self.params.p_seed()).expect("p_seed validated");
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(seeds as usize + 1);
        for (extra, p) in free.pmf_vec().into_iter().enumerate() {
            if exactly_zero(p) {
                continue;
            }
            let b_new = (base + extra as u32).min(pieces);
            match out.last_mut() {
                Some((last, mass)) if *last == b_new => *mass += p,
                _ => out.push((b_new, p)),
            }
        }
        out
    }

    /// `g(i′ | n, b, i)` — distribution of the next potential-set size,
    /// as `(i′, probability)` pairs with positive probability.
    ///
    /// Callers must not invoke this for states that absorb this step
    /// (`next_pieces == B`); [`TransitionKernel::successors`] handles that
    /// case directly.
    #[must_use]
    pub fn potential_set_dist(&self, state: DownloadState) -> Vec<(u32, f64)> {
        let s = self.params.neighbor_set_size();
        let stock = state.stock();
        if stock == 0 {
            // Entry: attempt a connection to each of the s neighbors.
            return binomial_support(s, self.params.p_init());
        }
        if state.i == 0 {
            // Waiting for tradable peers to flow in: α in bootstrap
            // (stock == 1), γ afterwards.
            let p_in = if stock == 1 {
                self.params.alpha()
            } else {
                self.params.gamma()
            };
            let mut out = Vec::with_capacity(2);
            if 1.0 - p_in > 0.0 {
                out.push((0, 1.0 - p_in));
            }
            if p_in > 0.0 {
                out.push((1, p_in));
            }
            return out;
        }
        // Trading: refresh against the neighbor set with success p₍stock₎.
        let c = stock.min(self.params.pieces() - 1);
        binomial_support(s, self.curve[c as usize])
    }

    /// `h(n′ | n, b, i′)` — distribution of the next connection count given
    /// the *new* potential-set size `i′`, as `(n′, probability)` pairs.
    ///
    /// `Y₁ ~ Bin(n, p_r)` survivors convolved with
    /// `Y₂ ~ Bin(max(min(i′, k) − n, 0), p_n)` new connections.
    #[must_use]
    pub fn connections_dist(&self, state: DownloadState, i_new: u32) -> Vec<(u32, f64)> {
        if state.stock() == 0 {
            return vec![(0, 1.0)];
        }
        let k = self.params.max_connections();
        let n = state.n;
        let survivors = Binomial::new(u64::from(n), self.params.p_r())
            .expect("p_r validated")
            .pmf_vec();
        let fresh_slots = i_new.min(k).saturating_sub(n);
        let fresh = Binomial::new(u64::from(fresh_slots), self.params.p_n())
            .expect("p_n validated")
            .pmf_vec();
        // Convolution of the two binomials.
        let mut dist = vec![0.0; survivors.len() + fresh.len() - 1];
        for (y1, &p1) in survivors.iter().enumerate() {
            if exactly_zero(p1) {
                continue;
            }
            for (y2, &p2) in fresh.iter().enumerate() {
                dist[y1 + y2] += p1 * p2;
            }
        }
        dist.into_iter()
            .enumerate()
            .filter(|&(_, p)| p > 0.0)
            .map(|(m, p)| (m as u32, p))
            .collect()
    }

    /// The full successor distribution of `state` under one chain step.
    ///
    /// The absorbing state `(0, B, 0)` maps to itself; any state reaching
    /// `b′ = B` maps to the absorbing state with probability 1.
    ///
    /// # Panics
    ///
    /// Panics if `state` lies outside the parameter-implied state space.
    #[must_use]
    pub fn successors(&self, state: DownloadState) -> Vec<Successor> {
        let params = &self.params;
        assert!(
            state.n <= params.max_connections()
                && state.b <= params.pieces()
                && state.i <= params.neighbor_set_size(),
            "state {state} outside the model's state space"
        );
        let pieces = params.pieces();
        if state.is_absorbed(pieces) {
            return vec![(DownloadState::absorbed(pieces), 1.0)];
        }
        let mut out = Vec::new();
        for (b_new, p_b) in self.pieces_dist(state) {
            if b_new == pieces {
                out.push((DownloadState::absorbed(pieces), p_b));
                continue;
            }
            for (i_new, p_i) in self.potential_set_dist(state) {
                for (n_new, p_n) in self.connections_dist(state, i_new) {
                    let p = p_b * p_i * p_n;
                    if exactly_zero(p) {
                        continue;
                    }
                    out.push((DownloadState::new(n_new, b_new, i_new), p));
                }
            }
        }
        merge_duplicates(&mut out);
        out
    }

    /// Builds the explicit transition matrix over the full state space.
    ///
    /// The state space has `(k+1)(B+1)(s+1)` states, so this is only
    /// feasible for small configurations (exact analyses and tests); the
    /// Monte-Carlo walker in [`crate::evolution`] covers large ones.
    ///
    /// # Errors
    ///
    /// Propagates matrix-validation errors (numerically impossible for a
    /// well-formed kernel, kept for robustness).
    pub fn build_matrix(&self) -> Result<(StateSpace, TransitionMatrix)> {
        let space = StateSpace::new(&self.params);
        let n = space.len();
        let mut rows = vec![vec![0.0; n]; n];
        for (idx, state) in space.iter().enumerate() {
            for (succ, p) in self.successors(state) {
                rows[idx][space.index(succ)] += p;
            }
            // Normalize away accumulated floating-point drift.
            let sum: f64 = rows[idx].iter().sum();
            debug_assert!((sum - 1.0).abs() < 1e-6, "row {idx} sums to {sum}");
            for v in &mut rows[idx] {
                *v /= sum;
            }
        }
        bt_markov::chain::debug_assert_row_stochastic(
            "TransitionKernel::build_matrix",
            rows.iter().map(Vec::as_slice),
        );
        let matrix = TransitionMatrix::from_rows(rows)?;
        Ok((space, matrix))
    }

    /// Expected number of steps from `(0, 0, 0)` to absorption, computed
    /// exactly via the fundamental matrix. Small configurations only.
    ///
    /// # Errors
    ///
    /// [`bt_markov::Error::Singular`] (wrapped) if some state cannot reach
    /// absorption — this happens when `α = 0` or `γ = 0` makes waiting
    /// states inescapable.
    pub fn expected_download_time(&self) -> Result<f64> {
        let (space, matrix) = self.build_matrix()?;
        let absorbed = space.index(DownloadState::absorbed(self.params.pieces()));
        let chain = AbsorbingChain::new(&matrix, &[absorbed])?;
        let steps = chain.expected_steps()?;
        let start_block = chain
            .transient_states()
            .iter()
            .position(|&s| s == space.index(DownloadState::INITIAL))
            .expect("initial state is transient");
        Ok(steps[start_block])
    }
}

/// Expands `Bin(n, p)` into `(value, probability)` pairs with positive mass.
fn binomial_support(n: u32, p: f64) -> Vec<(u32, f64)> {
    Binomial::new(u64::from(n), p)
        .expect("probability validated upstream")
        .pmf_vec()
        .into_iter()
        .enumerate()
        .filter(|&(_, q)| q > 0.0)
        .map(|(m, q)| (m as u32, q))
        .collect()
}

/// Merges duplicate successor states, summing probabilities.
fn merge_duplicates(entries: &mut Vec<Successor>) {
    entries.sort_by_key(|(s, _)| *s);
    let mut merged: Vec<Successor> = Vec::with_capacity(entries.len());
    for &(s, p) in entries.iter() {
        match merged.last_mut() {
            Some((last, acc)) if *last == s => *acc += p,
            _ => merged.push((s, p)),
        }
    }
    *entries = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ModelParams {
        ModelParams::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(3)
            .alpha(0.3)
            .gamma(0.2)
            .p_init(0.8)
            .p_r(0.9)
            .p_n(0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn successor_probabilities_sum_to_one() {
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        let space = StateSpace::new(kernel.params());
        for state in space.iter() {
            let total: f64 = kernel.successors(state).iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "state {state}: total {total}");
        }
    }

    #[test]
    fn entry_always_gains_first_piece_with_no_connections() {
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        for (succ, _) in kernel.successors(DownloadState::INITIAL) {
            assert_eq!(succ.b, 1, "first transition must set b = 1");
            assert_eq!(succ.n, 0, "no connections can exist on entry");
        }
    }

    #[test]
    fn entry_potential_set_is_binomial_p_init() {
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        let succ = kernel.successors(DownloadState::INITIAL);
        let expect = Binomial::new(3, 0.8).unwrap();
        for (s, p) in succ {
            assert!((p - expect.pmf(u64::from(s.i))).abs() < 1e-12);
        }
    }

    #[test]
    fn bootstrap_wait_uses_alpha() {
        // (0, 1, 0): stock 1, empty potential set.
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        let succ = kernel.successors(DownloadState::new(0, 1, 0));
        let stay: f64 = succ.iter().filter(|(s, _)| s.i == 0).map(|(_, p)| p).sum();
        assert!((stay - 0.7).abs() < 1e-12, "1 - alpha, got {stay}");
        // When the potential peer arrives, the new connection forms w.p. p_n.
        let connected: f64 = succ
            .iter()
            .filter(|(s, _)| s.i == 1 && s.n == 1)
            .map(|(_, p)| p)
            .sum();
        assert!((connected - 0.3 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn last_phase_wait_uses_gamma() {
        // (0, 4, 0): stock 4 > 1, empty potential set.
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        let succ = kernel.successors(DownloadState::new(0, 4, 0));
        let stay: f64 = succ.iter().filter(|(s, _)| s.i == 0).map(|(_, p)| p).sum();
        assert!((stay - 0.8).abs() < 1e-12, "1 - gamma, got {stay}");
        for (s, _) in &succ {
            assert_eq!(s.b, 4, "no progress while waiting without connections");
        }
    }

    #[test]
    fn pieces_increase_by_connections() {
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        let succ = kernel.successors(DownloadState::new(2, 2, 3));
        for (s, _) in succ {
            assert_eq!(s.b, 4, "b' = b + n");
        }
    }

    #[test]
    fn reaching_full_absorbs() {
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        // b + n = 5 + 2 > 6 caps at B and absorbs.
        let succ = kernel.successors(DownloadState::new(2, 5, 3));
        assert_eq!(succ, vec![(DownloadState::absorbed(6), 1.0)]);
        // The absorbing state self-loops.
        let stay = kernel.successors(DownloadState::absorbed(6));
        assert_eq!(stay, vec![(DownloadState::absorbed(6), 1.0)]);
    }

    #[test]
    fn connection_count_never_exceeds_k_or_potential_cap() {
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        let space = StateSpace::new(kernel.params());
        for state in space.iter() {
            for (succ, _) in kernel.successors(state) {
                assert!(succ.n <= 2, "n' = {} > k at {state}", succ.n);
                // n' ≤ max(n, min(i', k)) — fresh connections only fill up
                // to the potential cap.
                assert!(
                    succ.n <= state.n.max(succ.i.min(2)),
                    "n' = {} exceeds cap at {state} -> {succ}",
                    succ.n
                );
            }
        }
    }

    #[test]
    fn connections_dist_is_convolution() {
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        // n = 1 survivor stream (p_r = .9) + 1 fresh slot (p_n = .7).
        let dist = kernel.connections_dist(DownloadState::new(1, 2, 1), 2);
        let lookup = |m: u32| dist.iter().find(|&&(v, _)| v == m).map_or(0.0, |&(_, p)| p);
        assert!((lookup(0) - 0.1 * 0.3).abs() < 1e-12);
        assert!((lookup(1) - (0.9 * 0.3 + 0.1 * 0.7)).abs() < 1e-12);
        assert!((lookup(2) - 0.9 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_stochastic_and_absorbing_analysis_runs() {
        let kernel = TransitionKernel::new(&small_params()).unwrap();
        let expected = kernel.expected_download_time().unwrap();
        // Minimum possible: 1 bootstrap step + ceil((B-1)/k) trading steps.
        assert!(expected >= 1.0 + (6.0 - 1.0) / 2.0, "expected {expected}");
        assert!(expected.is_finite());
    }

    #[test]
    fn zero_gamma_makes_absorption_unreachable() {
        let params = ModelParams::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(3)
            .gamma(0.0)
            .build()
            .unwrap();
        let kernel = TransitionKernel::new(&params).unwrap();
        // (0, b>1, 0) now self-loops forever; expected time is infinite,
        // surfaced as a singular fundamental matrix.
        assert!(kernel.expected_download_time().is_err());
    }

    #[test]
    fn higher_k_downloads_faster() {
        let time_k = |k: u32| {
            let params = ModelParams::builder()
                .pieces(8)
                .max_connections(k)
                .neighbor_set_size(4)
                .build()
                .unwrap();
            TransitionKernel::new(&params)
                .unwrap()
                .expected_download_time()
                .unwrap()
        };
        assert!(time_k(2) < time_k(1), "k=2 must beat k=1");
    }

    #[test]
    fn merge_duplicates_sums() {
        let mut v = vec![
            (DownloadState::new(0, 1, 0), 0.25),
            (DownloadState::new(0, 1, 0), 0.25),
            (DownloadState::new(0, 1, 1), 0.5),
        ];
        merge_duplicates(&mut v);
        assert_eq!(v.len(), 2);
        assert!((v[0].1 - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod seeding_tests {
    use super::*;
    use crate::ModelParams;

    fn seeded_params(seeds: u32, p_seed: f64) -> ModelParams {
        ModelParams::builder()
            .pieces(8)
            .max_connections(2)
            .neighbor_set_size(3)
            .seed_connections(seeds)
            .p_seed(p_seed)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_seeds_is_deterministic_f() {
        let kernel = TransitionKernel::new(&seeded_params(0, 0.5)).unwrap();
        let dist = kernel.pieces_dist(DownloadState::new(1, 3, 2));
        assert_eq!(dist, vec![(4, 1.0)]);
    }

    #[test]
    fn seeds_spread_piece_distribution() {
        let kernel = TransitionKernel::new(&seeded_params(2, 0.5)).unwrap();
        let dist = kernel.pieces_dist(DownloadState::new(1, 3, 2));
        // b' in {4, 5, 6} with Bin(2, 0.5) masses.
        assert_eq!(dist.len(), 3);
        assert_eq!(dist[0].0, 4);
        assert!((dist[0].1 - 0.25).abs() < 1e-12);
        assert!((dist[1].1 - 0.5).abs() < 1e-12);
        let total: f64 = dist.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seed_rows_remain_stochastic() {
        let kernel = TransitionKernel::new(&seeded_params(3, 0.3)).unwrap();
        let space = crate::state::StateSpace::new(kernel.params());
        for state in space.iter() {
            let total: f64 = kernel.successors(state).iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "state {state}: {total}");
        }
    }

    #[test]
    fn seeds_cap_at_full_file() {
        let kernel = TransitionKernel::new(&seeded_params(4, 1.0)).unwrap();
        // b + n + seeds overshoots B = 8: all mass absorbs.
        let succ = kernel.successors(DownloadState::new(2, 5, 2));
        assert_eq!(succ, vec![(DownloadState::absorbed(8), 1.0)]);
    }

    #[test]
    fn seeds_shorten_downloads() {
        let time = |seeds| {
            let params = ModelParams::builder()
                .pieces(8)
                .max_connections(2)
                .neighbor_set_size(3)
                .gamma(0.05) // painful last phase without seeds
                .seed_connections(seeds)
                .p_seed(0.5)
                .build()
                .unwrap();
            TransitionKernel::new(&params)
                .unwrap()
                .expected_download_time()
                .unwrap()
        };
        let without = time(0);
        let with = time(2);
        assert!(
            with < without,
            "seeds should shorten the download: {with:.1} vs {without:.1}"
        );
    }
}
