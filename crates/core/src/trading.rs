//! The trading-power probability `p₍c₎` of Eq. 1.
//!
//! `p₍c₎` is the probability that a randomly selected peer has at least one
//! piece to exchange with a peer `P` holding `c = b + n` pieces, where piece
//! sets are uniformly random subsets of the `B` pieces and the *number* of
//! pieces at the random peer is distributed as `φ`:
//!
//! ```text
//! p(c) =   Σ_{j=c+1}^{B} φ(j) · [1 − C(j, c) / C(B, c)]     (peer has more)
//!        + Σ_{j=1}^{c}   φ(j) · [1 − C(c, j) / C(B, j)]     (peer has ≤ c)
//! ```
//!
//! The first term: a peer `Q` with `j > c` pieces has nothing *to receive*
//! exactly when all of `P`'s `c` pieces are among `Q`'s `j`, probability
//! `C(j,c)/C(B,c)`. The second term is the mirrored case. The binomial
//! ratios are evaluated in the log domain ([`bt_markov::dist::choose_ratio`])
//! so `B` in the thousands stays exact.

use bt_markov::dist::{choose_ratio, Empirical};

use crate::{Error, Result};
use bt_markov::float::exactly_zero;

/// Computes `p₍c₎` — Eq. 1 — for a peer holding `c` pieces out of `B`,
/// against the piece-count distribution `phi`.
///
/// # Errors
///
/// [`Error::InvalidParameter`] if `c` is not in `1..B` (a peer with zero
/// pieces has no trading power and one with all `B` pieces has left the
/// system), or if `phi`'s support does not cover `0..=B`.
///
/// # Example
///
/// ```
/// use bt_model::trading::trading_power;
/// use bt_model::params::uniform_phi;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let b = 200;
/// let phi = uniform_phi(b);
/// // The paper: p(1) ≈ 0.5, maximal near B/2, back to ≈ 0.5 at B − 1.
/// let p1 = trading_power(1, b, &phi)?;
/// let p_mid = trading_power(b / 2, b, &phi)?;
/// assert!((p1 - 0.5).abs() < 0.01);
/// assert!(p_mid > 0.9);
/// # Ok(())
/// # }
/// ```
pub fn trading_power(c: u32, pieces: u32, phi: &Empirical) -> Result<f64> {
    if c == 0 || c >= pieces {
        return Err(Error::InvalidParameter {
            name: "c",
            detail: format!("c must be in 1..{pieces}, got {c}"),
        });
    }
    if phi.max_value() != pieces as usize {
        return Err(Error::InvalidParameter {
            name: "phi",
            detail: format!(
                "support 0..={} does not match B = {pieces}",
                phi.max_value()
            ),
        });
    }
    let b = u64::from(pieces);
    let c64 = u64::from(c);
    let mut p = 0.0;
    // Peers with more pieces than P.
    for j in (c64 + 1)..=b {
        let mass = phi.prob(j as usize);
        if exactly_zero(mass) {
            continue;
        }
        p += mass * (1.0 - choose_ratio(j, c64, b)?);
    }
    // Peers with at most as many pieces as P.
    for j in 1..=c64 {
        let mass = phi.prob(j as usize);
        if exactly_zero(mass) {
            continue;
        }
        p += mass * (1.0 - choose_ratio(c64, j, b)?);
    }
    Ok(p.clamp(0.0, 1.0))
}

/// The full trading-power curve `c ↦ p₍c₎` for `c = 1..B`, as a vector
/// indexed by `c` (index 0 and index `B` are set to 0: no trading power at
/// the boundaries).
///
/// # Errors
///
/// Propagates [`trading_power`] errors.
pub fn trading_power_curve(pieces: u32, phi: &Empirical) -> Result<Vec<f64>> {
    let mut curve = vec![0.0; pieces as usize + 1];
    for c in 1..pieces {
        curve[c as usize] = trading_power(c, pieces, phi)?;
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::uniform_phi;

    #[test]
    fn boundary_values_near_half_uniform() {
        // The paper: p increases from ~0.5 at c = 1 ... decreases to ~0.5
        // at c = B − 1 (uniform φ).
        for b in [10u32, 50, 200] {
            let phi = uniform_phi(b);
            let p1 = trading_power(1, b, &phi).unwrap();
            let plast = trading_power(b - 1, b, &phi).unwrap();
            assert!((p1 - 0.5).abs() < 1.0 / f64::from(b), "B={b}: p(1)={p1}");
            assert!(
                (plast - 0.5).abs() < 1.0 / f64::from(b),
                "B={b}: p(B-1)={plast}"
            );
        }
    }

    #[test]
    fn maximum_near_middle() {
        let b = 100;
        let phi = uniform_phi(b);
        let curve = trading_power_curve(b, &phi).unwrap();
        let argmax = (1..b)
            .max_by(|&x, &y| curve[x as usize].partial_cmp(&curve[y as usize]).unwrap())
            .unwrap();
        assert!(
            (i64::from(argmax) - i64::from(b / 2)).unsigned_abs() <= b as u64 / 10,
            "argmax {argmax} not near B/2"
        );
        assert!(curve[(b / 2) as usize] > curve[1]);
        assert!(curve[(b / 2) as usize] > curve[(b - 1) as usize]);
    }

    #[test]
    fn curve_is_probability() {
        let b = 60;
        let phi = uniform_phi(b);
        for (c, &p) in trading_power_curve(b, &phi).unwrap().iter().enumerate() {
            assert!((0.0..=1.0).contains(&p), "p({c}) = {p}");
        }
    }

    #[test]
    fn rejects_out_of_range_c() {
        let phi = uniform_phi(10);
        assert!(trading_power(0, 10, &phi).is_err());
        assert!(trading_power(10, 10, &phi).is_err());
        assert!(trading_power(11, 10, &phi).is_err());
    }

    #[test]
    fn rejects_mismatched_phi() {
        let phi = uniform_phi(5);
        assert!(trading_power(1, 10, &phi).is_err());
    }

    #[test]
    fn exact_small_case() {
        // B = 2, uniform φ over {1, 2}, c = 1:
        // j = 2 term: φ(2)·[1 − C(2,1)/C(2,1)] = 0.5·0 = 0.
        // j = 1 term: φ(1)·[1 − C(1,1)/C(2,1)] = 0.5·(1 − 1/2) = 0.25.
        let phi = uniform_phi(2);
        let p = trading_power(1, 2, &phi).unwrap();
        assert!((p - 0.25).abs() < 1e-12, "p={p}");
    }

    #[test]
    fn skewed_phi_reduces_trading_power() {
        // If everyone holds exactly c pieces (all the same random subsets
        // are unlikely to coincide, but the j = c term is the only one),
        // trading power shrinks relative to uniform when c is small.
        let b = 20u32;
        let mut probs = vec![0.0; b as usize + 1];
        probs[1] = 1.0; // everyone has exactly one piece
        let phi = Empirical::from_probs(probs).unwrap();
        let p = trading_power(1, b, &phi).unwrap();
        // Two single-piece peers trade iff their pieces differ: 1 − 1/B.
        assert!((p - (1.0 - 1.0 / f64::from(b))).abs() < 1e-12);
    }

    #[test]
    fn monotone_rise_then_fall_uniform() {
        let b = 40;
        let phi = uniform_phi(b);
        let curve = trading_power_curve(b, &phi).unwrap();
        // Rising on the first quarter, falling on the last quarter.
        for c in 1..(b / 4) as usize {
            assert!(curve[c + 1] >= curve[c] - 1e-12, "rise at {c}");
        }
        for c in (3 * b / 4) as usize..(b - 1) as usize {
            assert!(curve[c + 1] <= curve[c] + 1e-12, "fall at {c}");
        }
    }
}
