//! The three download phases (§3.2) and state classification.

use serde::{Deserialize, Serialize};

use crate::state::DownloadState;

/// The phase of the download process a state belongs to.
///
/// * [`Phase::Bootstrap`] — the peer is acquiring, or holding untradable,
///   its first piece (`b + n ≤ 1`); progress is governed by `α`.
/// * [`Phase::Efficient`] — the potential set is non-empty (or connections
///   are active) and pieces flow at rate `≈ n`.
/// * [`Phase::LastDownload`] — the potential set has emptied after real
///   progress (`b + n > 1`, `i = 0`, `n = 0`); progress is governed by `γ`.
/// * [`Phase::Done`] — the absorbing state `(0, B, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Acquiring a tradable first piece.
    Bootstrap,
    /// Steady piece exchange with a non-empty potential set.
    Efficient,
    /// Waiting for final pieces with an empty potential set.
    LastDownload,
    /// Download complete.
    Done,
}

impl Phase {
    /// Classifies a state for a file of `pieces` pieces.
    ///
    /// # Example
    ///
    /// ```
    /// use bt_model::{DownloadState, Phase};
    ///
    /// assert_eq!(Phase::classify(DownloadState::INITIAL, 200), Phase::Bootstrap);
    /// assert_eq!(Phase::classify(DownloadState::new(3, 50, 12), 200), Phase::Efficient);
    /// assert_eq!(Phase::classify(DownloadState::new(0, 198, 0), 200), Phase::LastDownload);
    /// assert_eq!(Phase::classify(DownloadState::absorbed(200), 200), Phase::Done);
    /// ```
    #[must_use]
    pub fn classify(state: DownloadState, pieces: u32) -> Phase {
        if state.is_absorbed(pieces) {
            Phase::Done
        } else if state.stock() <= 1 {
            Phase::Bootstrap
        } else if state.i == 0 && state.n == 0 {
            Phase::LastDownload
        } else {
            Phase::Efficient
        }
    }

    /// Whether the peer is making piece progress in this phase at full rate.
    #[must_use]
    pub fn is_trading(&self) -> bool {
        matches!(self, Phase::Efficient)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Phase::Bootstrap => "bootstrap",
            Phase::Efficient => "efficient",
            Phase::LastDownload => "last-download",
            Phase::Done => "done",
        };
        f.write_str(name)
    }
}

/// Per-phase step counts accumulated over a trajectory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSojourns {
    /// Steps spent in the bootstrap phase.
    pub bootstrap: u64,
    /// Steps spent in the efficient download phase.
    pub efficient: u64,
    /// Steps spent in the last download phase.
    pub last_download: u64,
}

impl PhaseSojourns {
    /// Records one step spent in `phase` (steps in [`Phase::Done`] are not
    /// counted).
    pub fn record(&mut self, phase: Phase) {
        match phase {
            Phase::Bootstrap => self.bootstrap += 1,
            Phase::Efficient => self.efficient += 1,
            Phase::LastDownload => self.last_download += 1,
            Phase::Done => {}
        }
    }

    /// Total counted steps.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bootstrap + self.efficient + self.last_download
    }

    /// Fraction of steps spent in the efficient phase (0 if empty).
    #[must_use]
    pub fn efficient_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.efficient as f64 / self.total() as f64
        }
    }
}

/// Cumulative phase-boundary predictions for an average peer, in rounds
/// from joining: the rounds at which the bootstrap phase ends, the
/// efficient phase ends, and the download completes.
///
/// Built from a [`crate::evolution::Timeline`]'s mean per-phase sojourns,
/// this is the analytical series `btlab report` compares measured
/// observer boundaries against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBoundaries {
    /// Mean round at which the bootstrap phase ends.
    pub bootstrap_end: f64,
    /// Mean round at which the efficient phase ends.
    pub efficient_end: f64,
    /// Mean round at which the download completes.
    pub completion: f64,
}

impl PhaseBoundaries {
    /// Accumulates mean per-phase sojourns (bootstrap, efficient, last
    /// download — the layout of `Timeline::mean_sojourns`) into
    /// cumulative boundaries.
    #[must_use]
    pub fn from_mean_sojourns(sojourns: [f64; 3]) -> Self {
        let bootstrap_end = sojourns[0];
        let efficient_end = bootstrap_end + sojourns[1];
        PhaseBoundaries {
            bootstrap_end,
            efficient_end,
            completion: efficient_end + sojourns[2],
        }
    }

    /// The per-phase durations `[bootstrap, efficient, last]` implied by
    /// the boundaries.
    #[must_use]
    pub fn durations(&self) -> [f64; 3] {
        [
            self.bootstrap_end,
            self.efficient_end - self.bootstrap_end,
            self.completion - self.efficient_end,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_bootstrap() {
        assert_eq!(
            Phase::classify(DownloadState::INITIAL, 10),
            Phase::Bootstrap
        );
        assert_eq!(
            Phase::classify(DownloadState::new(0, 1, 0), 10),
            Phase::Bootstrap
        );
        // One piece plus an untraded potential peer is still bootstrap.
        assert_eq!(
            Phase::classify(DownloadState::new(0, 1, 3), 10),
            Phase::Bootstrap
        );
    }

    #[test]
    fn trading_states_are_efficient() {
        assert_eq!(
            Phase::classify(DownloadState::new(1, 1, 2), 10),
            Phase::Efficient
        );
        assert_eq!(
            Phase::classify(DownloadState::new(0, 5, 1), 10),
            Phase::Efficient
        );
        // Connections still active even with empty potential set: pieces
        // are in flight, so the peer is not stalled.
        assert_eq!(
            Phase::classify(DownloadState::new(2, 5, 0), 10),
            Phase::Efficient
        );
    }

    #[test]
    fn stalled_late_states_are_last_download() {
        assert_eq!(
            Phase::classify(DownloadState::new(0, 9, 0), 10),
            Phase::LastDownload
        );
        assert_eq!(
            Phase::classify(DownloadState::new(0, 2, 0), 10),
            Phase::LastDownload
        );
    }

    #[test]
    fn absorbed_is_done() {
        assert_eq!(
            Phase::classify(DownloadState::absorbed(10), 10),
            Phase::Done
        );
    }

    #[test]
    fn sojourns_accumulate() {
        let mut s = PhaseSojourns::default();
        s.record(Phase::Bootstrap);
        s.record(Phase::Bootstrap);
        s.record(Phase::Efficient);
        s.record(Phase::LastDownload);
        s.record(Phase::Done); // not counted
        assert_eq!(s.bootstrap, 2);
        assert_eq!(s.total(), 4);
        assert!((s.efficient_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_sojourns_fraction_zero() {
        assert_eq!(PhaseSojourns::default().efficient_fraction(), 0.0);
    }

    #[test]
    fn boundaries_accumulate_and_invert() {
        let b = PhaseBoundaries::from_mean_sojourns([3.0, 40.0, 7.0]);
        assert_eq!(b.bootstrap_end, 3.0);
        assert_eq!(b.efficient_end, 43.0);
        assert_eq!(b.completion, 50.0);
        assert_eq!(b.durations(), [3.0, 40.0, 7.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Phase::Bootstrap.to_string(), "bootstrap");
        assert_eq!(Phase::LastDownload.to_string(), "last-download");
        assert!(Phase::Efficient.is_trading());
        assert!(!Phase::Done.is_trading());
    }
}
