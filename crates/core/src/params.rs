//! Model parameters (§3.1 of the paper) with a validating builder.

use bt_markov::dist::Empirical;
use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// Parameters of the multiphased download model.
///
/// | Field | Paper symbol | Meaning |
/// | --- | --- | --- |
/// | `pieces` | `B` | number of pieces the file is divided into |
/// | `max_connections` | `k` | maximum simultaneous active connections |
/// | `neighbor_set_size` | `s` | maximum achievable neighbor-set size |
/// | `p_init` | `p_init` | success probability of an initial connection |
/// | `alpha` | `α` | per-step probability a tradable peer enters an empty potential set in the bootstrap phase (`α = λws/N`) |
/// | `gamma` | `γ` | per-step probability a new tradable piece flows into the neighbor set in the last download phase |
/// | `p_r` | `p_r` | probability an established connection survives a step |
/// | `p_n` | `p_n` | probability a new connection attempt succeeds |
/// | `phi` | `φ` | distribution of piece counts across peers (`φ(j)` = fraction of peers holding `j` pieces) |
/// | `seed_connections` | — | §7.2 extension: extra non-tit-for-tat connections to seeds (0 in the paper's experiments) |
/// | `p_seed` | — | per-step probability each seed connection delivers a piece |
///
/// Construct via [`ModelParams::builder`], which validates everything.
///
/// # Example
///
/// ```
/// use bt_model::ModelParams;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = ModelParams::builder()
///     .pieces(200)
///     .max_connections(7)
///     .neighbor_set_size(40)
///     .alpha(0.2)
///     .gamma(0.1)
///     .build()?;
/// assert_eq!(params.pieces(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    pieces: u32,
    max_connections: u32,
    neighbor_set_size: u32,
    p_init: f64,
    alpha: f64,
    gamma: f64,
    p_r: f64,
    p_n: f64,
    phi: Empirical,
    seed_connections: u32,
    p_seed: f64,
}

impl ModelParams {
    /// Starts a builder with the paper's defaults (`B = 200`, `k = 7`,
    /// `s = 40`, uniform `φ`).
    #[must_use]
    pub fn builder() -> ModelParamsBuilder {
        ModelParamsBuilder::default()
    }

    /// Number of pieces `B`.
    #[must_use]
    pub fn pieces(&self) -> u32 {
        self.pieces
    }

    /// Maximum simultaneous connections `k`.
    #[must_use]
    pub fn max_connections(&self) -> u32 {
        self.max_connections
    }

    /// Neighbor-set size `s`.
    #[must_use]
    pub fn neighbor_set_size(&self) -> u32 {
        self.neighbor_set_size
    }

    /// Initial connection success probability `p_init`.
    #[must_use]
    pub fn p_init(&self) -> f64 {
        self.p_init
    }

    /// Bootstrap-phase arrival probability `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Last-phase piece-arrival probability `γ`.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Re-encounter (connection survival) probability `p_r`.
    #[must_use]
    pub fn p_r(&self) -> f64 {
        self.p_r
    }

    /// New-connection success probability `p_n`.
    #[must_use]
    pub fn p_n(&self) -> f64 {
        self.p_n
    }

    /// The piece-count distribution `φ` over `0..=B` (the paper's sums use
    /// support `1..=B`; mass at 0 is permitted and simply never referenced).
    #[must_use]
    pub fn phi(&self) -> &Empirical {
        &self.phi
    }

    /// §7.2 extension: number of non-tit-for-tat seed connections.
    #[must_use]
    pub fn seed_connections(&self) -> u32 {
        self.seed_connections
    }

    /// Per-step delivery probability of each seed connection.
    #[must_use]
    pub fn p_seed(&self) -> f64 {
        self.p_seed
    }

    /// Expected bootstrap-phase sojourn `1/α` (steps), the paper's §6
    /// observation. Infinite if `α = 0`.
    #[must_use]
    pub fn expected_bootstrap_sojourn(&self) -> f64 {
        1.0 / self.alpha
    }

    /// Expected last-download-phase sojourn per piece `1/γ` (steps).
    /// Infinite if `γ = 0`.
    #[must_use]
    pub fn expected_last_phase_sojourn(&self) -> f64 {
        1.0 / self.gamma
    }
}

/// The bootstrap-phase parameter `α = λ·w·s / N` from §3.2.
///
/// * `lambda` — peer arrival rate (peers per step),
/// * `w` — probability a newly arriving peer has a piece to exchange,
/// * `s` — neighbor-set size,
/// * `n_peers` — swarm population `N`.
///
/// The result is clamped to `[0, 1]` (it is a per-step probability).
///
/// # Panics
///
/// Panics if any argument is negative, `n_peers` is zero, or any argument is
/// NaN.
#[must_use]
pub fn alpha_from_swarm(lambda: f64, w: f64, s: u32, n_peers: f64) -> f64 {
    assert!(
        lambda >= 0.0 && w >= 0.0 && n_peers > 0.0,
        "alpha_from_swarm arguments must be non-negative with n_peers > 0"
    );
    (lambda * w * f64::from(s) / n_peers).clamp(0.0, 1.0)
}

/// Builder for [`ModelParams`].
#[derive(Debug, Clone)]
pub struct ModelParamsBuilder {
    pieces: u32,
    max_connections: u32,
    neighbor_set_size: u32,
    p_init: f64,
    alpha: f64,
    gamma: f64,
    p_r: f64,
    p_n: f64,
    phi: Option<Empirical>,
    seed_connections: u32,
    p_seed: f64,
}

impl Default for ModelParamsBuilder {
    fn default() -> Self {
        ModelParamsBuilder {
            pieces: 200,
            max_connections: 7,
            neighbor_set_size: 40,
            p_init: 0.9,
            alpha: 0.25,
            gamma: 0.15,
            p_r: 0.9,
            p_n: 0.8,
            phi: None,
            seed_connections: 0,
            p_seed: 0.5,
        }
    }
}

impl ModelParamsBuilder {
    /// Sets the number of pieces `B` (must be ≥ 1).
    pub fn pieces(&mut self, pieces: u32) -> &mut Self {
        self.pieces = pieces;
        self
    }

    /// Sets the maximum simultaneous connections `k` (must be ≥ 1).
    pub fn max_connections(&mut self, k: u32) -> &mut Self {
        self.max_connections = k;
        self
    }

    /// Sets the neighbor-set size `s` (must be ≥ 1).
    pub fn neighbor_set_size(&mut self, s: u32) -> &mut Self {
        self.neighbor_set_size = s;
        self
    }

    /// Sets `p_init`.
    pub fn p_init(&mut self, p: f64) -> &mut Self {
        self.p_init = p;
        self
    }

    /// Sets `α`.
    pub fn alpha(&mut self, alpha: f64) -> &mut Self {
        self.alpha = alpha;
        self
    }

    /// Sets `γ`.
    pub fn gamma(&mut self, gamma: f64) -> &mut Self {
        self.gamma = gamma;
        self
    }

    /// Sets `p_r`.
    pub fn p_r(&mut self, p: f64) -> &mut Self {
        self.p_r = p;
        self
    }

    /// Sets `p_n`.
    pub fn p_n(&mut self, p: f64) -> &mut Self {
        self.p_n = p;
        self
    }

    /// §7.2 extension: adds `n` non-tit-for-tat seed connections, each
    /// delivering a free piece per step with probability `p_seed`.
    pub fn seed_connections(&mut self, n: u32) -> &mut Self {
        self.seed_connections = n;
        self
    }

    /// Sets the per-step delivery probability of each seed connection.
    pub fn p_seed(&mut self, p: f64) -> &mut Self {
        self.p_seed = p;
        self
    }

    /// Sets the piece-count distribution `φ`. Its support must be `0..=B`
    /// (length `B + 1`); if unset, the uniform distribution over `1..=B`
    /// is used (the steady-state shape the paper's §6 argues the trading
    /// phase drives `φ` towards).
    pub fn phi(&mut self, phi: Empirical) -> &mut Self {
        self.phi = Some(phi);
        self
    }

    /// Validates and builds the parameters.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] if any count is zero, any probability is
    /// outside `[0, 1]`, or `φ`'s support does not match `B`.
    pub fn build(&self) -> Result<ModelParams> {
        if self.pieces == 0 {
            return Err(Error::InvalidParameter {
                name: "pieces",
                detail: "B must be at least 1".into(),
            });
        }
        if self.max_connections == 0 {
            return Err(Error::InvalidParameter {
                name: "max_connections",
                detail: "k must be at least 1".into(),
            });
        }
        if self.neighbor_set_size == 0 {
            return Err(Error::InvalidParameter {
                name: "neighbor_set_size",
                detail: "s must be at least 1".into(),
            });
        }
        for (name, p) in [
            ("p_init", self.p_init),
            ("alpha", self.alpha),
            ("gamma", self.gamma),
            ("p_r", self.p_r),
            ("p_n", self.p_n),
            ("p_seed", self.p_seed),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(Error::InvalidParameter {
                    name: match name {
                        "p_init" => "p_init",
                        "alpha" => "alpha",
                        "gamma" => "gamma",
                        "p_r" => "p_r",
                        "p_n" => "p_n",
                        _ => "p_seed",
                    },
                    detail: format!("probability {p} outside [0, 1]"),
                });
            }
        }
        let phi = match &self.phi {
            Some(phi) => {
                if phi.max_value() != self.pieces as usize {
                    return Err(Error::InvalidParameter {
                        name: "phi",
                        detail: format!(
                            "support 0..={} does not match B = {}",
                            phi.max_value(),
                            self.pieces
                        ),
                    });
                }
                phi.clone()
            }
            None => uniform_phi(self.pieces),
        };
        Ok(ModelParams {
            pieces: self.pieces,
            max_connections: self.max_connections,
            neighbor_set_size: self.neighbor_set_size,
            p_init: self.p_init,
            alpha: self.alpha,
            gamma: self.gamma,
            p_r: self.p_r,
            p_n: self.p_n,
            phi,
            seed_connections: self.seed_connections,
            p_seed: self.p_seed,
        })
    }
}

/// The uniform piece-count distribution over `1..=B` (zero mass at 0),
/// the steady-state `φ` of §6.
///
/// # Panics
///
/// Panics if `pieces == 0`.
#[must_use]
pub fn uniform_phi(pieces: u32) -> Empirical {
    assert!(pieces >= 1, "pieces must be at least 1");
    let mut probs = vec![1.0 / f64::from(pieces); pieces as usize + 1];
    probs[0] = 0.0;
    Empirical::from_probs(probs).expect("uniform phi is a valid distribution")
}

/// A compact serializable snapshot of model parameters (φ elided to its
/// mean) for experiment records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamsSummary {
    /// Number of pieces `B`.
    pub pieces: u32,
    /// Maximum connections `k`.
    pub max_connections: u32,
    /// Neighbor-set size `s`.
    pub neighbor_set_size: u32,
    /// `α`.
    pub alpha: f64,
    /// `γ`.
    pub gamma: f64,
    /// `p_r`.
    pub p_r: f64,
    /// `p_n`.
    pub p_n: f64,
    /// Mean of `φ`.
    pub phi_mean: f64,
}

impl From<&ModelParams> for ParamsSummary {
    fn from(p: &ModelParams) -> Self {
        ParamsSummary {
            pieces: p.pieces,
            max_connections: p.max_connections,
            neighbor_set_size: p.neighbor_set_size,
            alpha: p.alpha,
            gamma: p.gamma,
            p_r: p.p_r,
            p_n: p.p_n,
            phi_mean: p.phi.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let p = ModelParams::builder().build().unwrap();
        assert_eq!(p.pieces(), 200);
        assert_eq!(p.max_connections(), 7);
        assert_eq!(p.neighbor_set_size(), 40);
        assert!(p.p_init() > 0.0);
    }

    #[test]
    fn rejects_zero_counts() {
        assert!(ModelParams::builder().pieces(0).build().is_err());
        assert!(ModelParams::builder().max_connections(0).build().is_err());
        assert!(ModelParams::builder().neighbor_set_size(0).build().is_err());
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(ModelParams::builder().alpha(1.5).build().is_err());
        assert!(ModelParams::builder().gamma(-0.1).build().is_err());
        assert!(ModelParams::builder().p_r(f64::NAN).build().is_err());
        assert!(ModelParams::builder().p_init(2.0).build().is_err());
        assert!(ModelParams::builder().p_n(-1.0).build().is_err());
    }

    #[test]
    fn uniform_phi_has_zero_mass_at_zero() {
        let phi = uniform_phi(10);
        assert_eq!(phi.prob(0), 0.0);
        assert!((phi.prob(1) - 0.1).abs() < 1e-12);
        assert_eq!(phi.max_value(), 10);
    }

    #[test]
    fn custom_phi_support_checked() {
        let wrong = Empirical::uniform(5);
        let err = ModelParams::builder().pieces(10).phi(wrong).build();
        assert!(err.is_err());
        let right = Empirical::uniform(10);
        assert!(ModelParams::builder().pieces(10).phi(right).build().is_ok());
    }

    #[test]
    fn sojourn_expectations() {
        let p = ModelParams::builder()
            .alpha(0.25)
            .gamma(0.1)
            .build()
            .unwrap();
        assert_eq!(p.expected_bootstrap_sojourn(), 4.0);
        assert_eq!(p.expected_last_phase_sojourn(), 10.0);
    }

    #[test]
    fn zero_alpha_gives_infinite_sojourn() {
        let p = ModelParams::builder().alpha(0.0).build().unwrap();
        assert!(p.expected_bootstrap_sojourn().is_infinite());
    }

    #[test]
    fn alpha_from_swarm_formula() {
        // λ=2, w=0.5, s=40, N=400 => 2*0.5*40/400 = 0.1.
        assert!((alpha_from_swarm(2.0, 0.5, 40, 400.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn alpha_from_swarm_clamps() {
        assert_eq!(alpha_from_swarm(100.0, 1.0, 50, 10.0), 1.0);
        assert_eq!(alpha_from_swarm(0.0, 1.0, 50, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn alpha_from_swarm_rejects_zero_peers() {
        let _ = alpha_from_swarm(1.0, 0.5, 40, 0.0);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let p = ModelParams::builder().pieces(20).build().unwrap();
        let s = ParamsSummary::from(&p);
        let json = serde_json::to_string(&s).unwrap();
        let back: ParamsSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.pieces, 20);
    }
}
