//! Entropy-based stability analysis (§6).
//!
//! The paper defines the system entropy as the skew of the piece-replication
//! vector, `E = min(d) / max(d)` where `d_j` is the replication degree of
//! piece `j`. The system is *stable* when the long-run entropy drifts to 1
//! and *unstable* when it collapses to 0. This module provides the entropy
//! measure, the §6 qualitative drift relations (how `α` and `γ` respond to
//! entropy), and a reduced-form drift iteration used by the stability
//! ablation benches.

use crate::{Error, Result};

/// The replication entropy `E = min(d) / max(d)` of a piece-replication
/// vector.
///
/// By convention the entropy of an empty system, or one where no piece is
/// replicated, is 0 (maximal skew: the system cannot serve every piece).
///
/// # Example
///
/// ```
/// use bt_model::stability::entropy;
///
/// assert_eq!(entropy(&[5, 5, 5]), 1.0);
/// assert_eq!(entropy(&[10, 1, 5]), 0.1);
/// assert_eq!(entropy(&[3, 0, 3]), 0.0); // a missing piece is maximal skew
/// ```
#[must_use]
pub fn entropy(replication: &[u64]) -> f64 {
    match (replication.iter().min(), replication.iter().max()) {
        (Some(&min), Some(&max)) if max > 0 => min as f64 / max as f64,
        _ => 0.0,
    }
}

/// §6: how the bootstrap parameter `α` responds to entropy. Skew (`E < 1`)
/// makes newly arriving peers more likely to pick up highly replicated
/// pieces, which are less tradable, so the *effective* `α` shrinks with
/// `E`: `α_eff = α_base · E`.
///
/// # Panics
///
/// Panics if `entropy ∉ [0, 1]` or `alpha_base ∉ [0, 1]`.
#[must_use]
pub fn effective_alpha(alpha_base: f64, entropy: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&alpha_base) && (0.0..=1.0).contains(&entropy),
        "alpha_base and entropy must be probabilities"
    );
    alpha_base * entropy
}

/// §6: expected bootstrap sojourn `1/α_eff` under skew. Infinite when the
/// effective α vanishes.
#[must_use]
pub fn bootstrap_sojourn_under_skew(alpha_base: f64, entropy: f64) -> f64 {
    1.0 / effective_alpha(alpha_base, entropy)
}

/// Inputs of the reduced-form entropy drift relation.
///
/// The full transient analysis is out of scope even for the paper ("left
/// for future work"); this reduced form captures its two monotone claims:
/// larger `B` (more pieces → longer trading-phase residence) pushes entropy
/// toward 1, while a larger arrival rate amplifies skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftParams {
    /// Number of pieces `B`.
    pub pieces: u32,
    /// Peer arrival rate λ (peers per round).
    pub arrival_rate: f64,
    /// Last-phase piece-inflow probability γ.
    pub gamma: f64,
    /// Strength of the rarest-first correction per trading round (the rate
    /// at which the protocol equalizes replication), in `(0, 1]`.
    pub correction: f64,
}

impl DriftParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] for a zero `B`, non-positive correction,
    /// or negative rates.
    pub fn validate(&self) -> Result<()> {
        if self.pieces == 0 {
            return Err(Error::InvalidParameter {
                name: "pieces",
                detail: "B must be at least 1".into(),
            });
        }
        if !(self.correction > 0.0 && self.correction <= 1.0) {
            return Err(Error::InvalidParameter {
                name: "correction",
                detail: format!("{} outside (0, 1]", self.correction),
            });
        }
        if self.arrival_rate < 0.0 || !(0.0..=1.0).contains(&self.gamma) {
            return Err(Error::InvalidParameter {
                name: "arrival_rate/gamma",
                detail: "negative arrival rate or gamma outside [0, 1]".into(),
            });
        }
        Ok(())
    }

    /// Expected trading-phase residence time in rounds: a peer spends about
    /// `B / 2` rounds trading (downloading at a few pieces per round), so
    /// residence grows linearly in `B`.
    #[must_use]
    pub fn trading_residence(&self) -> f64 {
        f64::from(self.pieces) / 2.0
    }

    /// One step of the reduced entropy drift:
    ///
    /// `E′ = E + (restore − pressure) · E(1 − E)`
    ///
    /// with `restore = correction · min(residence/5, 1)` — the rarest-first
    /// equalization, effective in proportion to how long peers stay in the
    /// trading phase (grows with `B`) — and
    /// `pressure = λ/(1+λ) · (1 + γ)/4` — the skew pressure from arrivals
    /// hitting a skewed system, growing with the arrival rate and with `γ`
    /// (large `γ` means nearly-complete peers leave quickly, §6: *smaller*
    /// `γ` improves stability). Both terms vanish at the endpoints
    /// `E ∈ {0, 1}`, the two long-run regimes the paper identifies.
    ///
    /// # Errors
    ///
    /// Propagates [`DriftParams::validate`].
    pub fn step(&self, entropy: f64) -> Result<f64> {
        self.validate()?;
        let e = entropy.clamp(0.0, 1.0);
        let residence_scale = (self.trading_residence() / 5.0).min(1.0);
        let restore = self.correction * residence_scale;
        let pressure = self.arrival_rate / (1.0 + self.arrival_rate) * (1.0 + self.gamma) / 4.0;
        Ok((e + (restore - pressure) * e * (1.0 - e)).clamp(0.0, 1.0))
    }

    /// Iterates the drift from `e0` for `rounds` steps, returning the
    /// entropy series (length `rounds + 1`).
    ///
    /// # Errors
    ///
    /// Propagates [`DriftParams::validate`].
    pub fn trajectory(&self, e0: f64, rounds: usize) -> Result<Vec<f64>> {
        self.validate()?;
        let mut series = Vec::with_capacity(rounds + 1);
        let mut e = e0.clamp(0.0, 1.0);
        series.push(e);
        for _ in 0..rounds {
            e = self.step(e)?;
            series.push(e);
        }
        Ok(series)
    }

    /// Whether the drift from `e0` recovers to an entropy above
    /// `threshold` within `rounds` steps — the §6 stability criterion.
    ///
    /// # Errors
    ///
    /// Propagates [`DriftParams::validate`].
    pub fn is_stable(&self, e0: f64, rounds: usize, threshold: f64) -> Result<bool> {
        let series = self.trajectory(e0, rounds)?;
        Ok(series.last().copied().unwrap_or(0.0) >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0, 0]), 0.0);
        assert_eq!(entropy(&[4]), 1.0);
        assert_eq!(entropy(&[2, 8]), 0.25);
        assert!(entropy(&[7, 7, 7, 7]) == 1.0);
    }

    #[test]
    fn entropy_bounded() {
        assert!(entropy(&[1, 1000]) > 0.0);
        assert!(entropy(&[1, 1000]) < 1.0);
    }

    #[test]
    fn effective_alpha_scales_with_entropy() {
        assert_eq!(effective_alpha(0.4, 1.0), 0.4);
        assert_eq!(effective_alpha(0.4, 0.5), 0.2);
        assert_eq!(effective_alpha(0.4, 0.0), 0.0);
    }

    #[test]
    fn bootstrap_sojourn_blows_up_under_full_skew() {
        assert!(bootstrap_sojourn_under_skew(0.3, 0.0).is_infinite());
        assert!((bootstrap_sojourn_under_skew(0.5, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn effective_alpha_rejects_bad_entropy() {
        let _ = effective_alpha(0.5, 1.5);
    }

    fn params(pieces: u32, arrival: f64) -> DriftParams {
        DriftParams {
            pieces,
            arrival_rate: arrival,
            gamma: 0.2,
            correction: 0.5,
        }
    }

    #[test]
    fn validate_catches_bad_params() {
        assert!(params(0, 1.0).validate().is_err());
        assert!(DriftParams {
            correction: 0.0,
            ..params(10, 1.0)
        }
        .validate()
        .is_err());
        assert!(DriftParams {
            arrival_rate: -1.0,
            ..params(10, 1.0)
        }
        .validate()
        .is_err());
        assert!(DriftParams {
            gamma: 2.0,
            ..params(10, 1.0)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn large_b_recovers_from_skew() {
        // The paper's Fig. 4(c): B = 10 pushes entropy back toward 1.
        let p = params(10, 2.0);
        let series = p.trajectory(0.2, 500).unwrap();
        assert!(
            *series.last().unwrap() > 0.9,
            "B=10 should restore entropy, got {}",
            series.last().unwrap()
        );
    }

    #[test]
    fn small_b_collapses_under_heavy_arrivals() {
        // The paper's Fig. 4(c): B = 3 cannot recover.
        let p = params(3, 8.0);
        let series = p.trajectory(0.2, 500).unwrap();
        assert!(
            *series.last().unwrap() < 0.05,
            "B=3 under heavy arrivals should collapse, got {}",
            series.last().unwrap()
        );
    }

    #[test]
    fn is_stable_discriminates_b() {
        assert!(params(10, 2.0).is_stable(0.2, 500, 0.9).unwrap());
        assert!(!params(3, 8.0).is_stable(0.2, 500, 0.9).unwrap());
    }

    #[test]
    fn endpoints_are_fixed() {
        let p = params(5, 3.0);
        assert_eq!(p.step(0.0).unwrap(), 0.0);
        assert_eq!(p.step(1.0).unwrap(), 1.0);
    }

    #[test]
    fn smaller_gamma_helps_stability() {
        // §6: smaller γ keeps nearly-complete peers around longer, adding
        // drift toward entropy 1.
        let base = params(4, 6.0);
        let patient = DriftParams { gamma: 0.0, ..base };
        let impatient = DriftParams { gamma: 0.9, ..base };
        let e_patient = *patient.trajectory(0.3, 300).unwrap().last().unwrap();
        let e_impatient = *impatient.trajectory(0.3, 300).unwrap().last().unwrap();
        assert!(
            e_patient >= e_impatient,
            "gamma=0 ({e_patient}) should not do worse than gamma=0.9 ({e_impatient})"
        );
    }

    #[test]
    fn trajectory_length_and_clamping() {
        let p = params(10, 1.0);
        let series = p.trajectory(5.0, 10).unwrap(); // e0 clamped to 1
        assert_eq!(series.len(), 11);
        assert!(series.iter().all(|&e| (0.0..=1.0).contains(&e)));
        assert_eq!(series[0], 1.0);
    }
}
