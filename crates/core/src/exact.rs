//! Exact (fundamental-matrix) analyses of the download chain.
//!
//! For small configurations the full `(k+1)(B+1)(s+1)` state space is
//! tractable and the absorbing-chain machinery of [`bt_markov`] gives
//! closed-form expectations, with no Monte-Carlo error:
//!
//! * expected total download time ([`expected_download_time`], re-exported
//!   from the kernel);
//! * expected steps spent in each of the three phases
//!   ([`expected_phase_sojourns`]) — the exact version of the paper's
//!   per-phase analysis;
//! * the probability of ever entering the last download phase
//!   ([`last_phase_probability`]), the paper's "a peer makes a transition
//!   to the last download phase with a certain probability".

use bt_markov::AbsorbingChain;

use crate::params::ModelParams;
use crate::phase::Phase;
use crate::state::DownloadState;
use crate::transitions::TransitionKernel;
use crate::Result;
use bt_markov::float::exactly_zero;

/// Exact expected steps from `(0, 0, 0)` to absorption.
///
/// Equivalent to [`TransitionKernel::expected_download_time`]; exposed here
/// alongside the other exact analyses.
///
/// # Errors
///
/// Propagates kernel and linear-algebra errors (singular when `α = 0` or
/// `γ = 0` makes absorption unreachable).
pub fn expected_download_time(params: &ModelParams) -> Result<f64> {
    TransitionKernel::new(params)?.expected_download_time()
}

/// Exact expected steps spent in each phase (bootstrap, efficient, last
/// download) starting from `(0, 0, 0)`, via the fundamental matrix: the
/// expected visits to every transient state, summed by phase.
///
/// # Errors
///
/// Same conditions as [`expected_download_time`].
pub fn expected_phase_sojourns(params: &ModelParams) -> Result<[f64; 3]> {
    let kernel = TransitionKernel::new(params)?;
    let (space, matrix) = kernel.build_matrix()?;
    let absorbed = space.index(DownloadState::absorbed(params.pieces()));
    let chain = AbsorbingChain::new(&matrix, &[absorbed])?;
    let start_block = chain
        .transient_states()
        .iter()
        .position(|&s| s == space.index(DownloadState::INITIAL))
        .expect("initial state is transient");
    let visits = chain.expected_visits(start_block)?;
    let mut sojourns = [0.0; 3];
    for (block_idx, &state_idx) in chain.transient_states().iter().enumerate() {
        let state = space.state(state_idx);
        match Phase::classify(state, params.pieces()) {
            Phase::Bootstrap => sojourns[0] += visits[block_idx],
            Phase::Efficient => sojourns[1] += visits[block_idx],
            Phase::LastDownload => sojourns[2] += visits[block_idx],
            Phase::Done => {}
        }
    }
    Ok(sojourns)
}

/// Exact probability that a download ever enters the last download phase,
/// computed by making every last-download state absorbing and reading the
/// absorption split.
///
/// # Errors
///
/// Same conditions as [`expected_download_time`].
pub fn last_phase_probability(params: &ModelParams) -> Result<f64> {
    let kernel = TransitionKernel::new(params)?;
    let (space, matrix) = kernel.build_matrix()?;
    let pieces = params.pieces();
    // Rebuild the matrix with last-download states absorbing.
    let n = space.len();
    let mut rows: Vec<Vec<f64>> = (0..n).map(|i| matrix.row(i).to_vec()).collect();
    let mut absorbing = Vec::new();
    for (idx, state) in space.iter().enumerate() {
        let phase = Phase::classify(state, pieces);
        if phase == Phase::LastDownload || state.is_absorbed(pieces) {
            rows[idx] = vec![0.0; n];
            rows[idx][idx] = 1.0;
            absorbing.push(idx);
        }
    }
    bt_markov::chain::debug_assert_row_stochastic(
        "last_phase_probability",
        rows.iter().map(Vec::as_slice),
    );
    let modified = bt_markov::TransitionMatrix::from_rows(rows)?;
    let chain = AbsorbingChain::new(&modified, &absorbing)?;
    let b = chain.absorption_probabilities()?;
    let start_block = chain
        .transient_states()
        .iter()
        .position(|&s| s == space.index(DownloadState::INITIAL))
        .expect("initial state is transient");
    // Sum absorption mass landing in last-download states (i.e., anywhere
    // except the true completion state).
    let done_idx = space.index(DownloadState::absorbed(pieces));
    let mut p_last = 0.0;
    for (col, &state_idx) in chain.absorbing_states().iter().enumerate() {
        if state_idx != done_idx {
            p_last += b[(start_block, col)];
        }
    }
    Ok(p_last.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> ModelParams {
        ModelParams::builder()
            .pieces(8)
            .max_connections(2)
            .neighbor_set_size(3)
            .alpha(0.4)
            .gamma(0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn phase_sojourns_sum_to_total_time() {
        let params = small_params();
        let total = expected_download_time(&params).unwrap();
        let phases = expected_phase_sojourns(&params).unwrap();
        let sum: f64 = phases.iter().sum();
        assert!(
            (sum - total).abs() < 1e-8,
            "phases {phases:?} sum {sum} vs total {total}"
        );
        assert!(phases.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn exact_matches_monte_carlo() {
        let params = small_params();
        let exact = expected_phase_sojourns(&params).unwrap();
        let tl =
            crate::evolution::expected_timeline(&params, 4_000, StdRng::seed_from_u64(3)).unwrap();
        for (i, name) in ["bootstrap", "efficient", "last"].iter().enumerate() {
            let mc = tl.mean_sojourns[i];
            let ex = exact[i];
            let tol = (0.15 * ex).max(0.15);
            assert!((mc - ex).abs() < tol, "{name}: MC {mc:.3} vs exact {ex:.3}");
        }
    }

    #[test]
    fn last_phase_probability_in_unit_interval() {
        let p = last_phase_probability(&small_params()).unwrap();
        assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn smaller_neighbor_set_raises_last_phase_probability() {
        let prob = |s: u32| {
            let params = ModelParams::builder()
                .pieces(8)
                .max_connections(2)
                .neighbor_set_size(s)
                .build()
                .unwrap();
            last_phase_probability(&params).unwrap()
        };
        let small = prob(1);
        let large = prob(5);
        assert!(
            small > large,
            "s=1 ({small:.3}) should stall more than s=5 ({large:.3})"
        );
    }

    #[test]
    fn zero_gamma_still_analyzable_for_last_phase_probability() {
        // With γ = 0 the last-download states are true sinks, which is
        // exactly how last_phase_probability treats them anyway.
        let params = ModelParams::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(2)
            .gamma(0.0)
            .build()
            .unwrap();
        let p = last_phase_probability(&params).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }
}

/// Transient phase-occupancy analysis — the §6 "future work" the paper
/// defers: the time-dependent probability of being in each phase (plus
/// absorbed), computed by stepping the exact state distribution of the
/// chain for `steps` rounds.
///
/// Returns one `[bootstrap, efficient, last, done]` row per step,
/// starting with the round-0 point mass on `(0, 0, 0)`.
///
/// # Errors
///
/// Propagates kernel construction and matrix validation errors.
pub fn transient_phase_occupancy(params: &ModelParams, steps: usize) -> Result<Vec<[f64; 4]>> {
    let kernel = TransitionKernel::new(params)?;
    let space = crate::state::StateSpace::new(params);
    let pieces = params.pieces();
    // Sparse distribution stepping: the reachable support is tiny relative
    // to the full space, so step a map instead of a dense vector.
    let mut dist: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    dist.insert(space.index(DownloadState::INITIAL), 1.0);
    let mut out = Vec::with_capacity(steps + 1);
    let summarize = |dist: &std::collections::BTreeMap<usize, f64>| {
        let mut row = [0.0; 4];
        for (&idx, &mass) in dist {
            let state = space.state(idx);
            match Phase::classify(state, pieces) {
                Phase::Bootstrap => row[0] += mass,
                Phase::Efficient => row[1] += mass,
                Phase::LastDownload => row[2] += mass,
                Phase::Done => row[3] += mass,
            }
        }
        row
    };
    out.push(summarize(&dist));
    for _ in 0..steps {
        let mut next: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (&idx, &mass) in &dist {
            if exactly_zero(mass) {
                continue;
            }
            for (succ, p) in kernel.successors(space.state(idx)) {
                *next.entry(space.index(succ)).or_insert(0.0) += mass * p;
            }
        }
        dist = next;
        out.push(summarize(&dist));
    }
    Ok(out)
}

#[cfg(test)]
mod transient_tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::builder()
            .pieces(6)
            .max_connections(2)
            .neighbor_set_size(3)
            .alpha(0.4)
            .gamma(0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn occupancy_rows_are_distributions() {
        let rows = transient_phase_occupancy(&params(), 40).unwrap();
        assert_eq!(rows.len(), 41);
        for (t, row) in rows.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "t={t}: {row:?}");
            assert!(row.iter().all(|&p| p >= -1e-12));
        }
    }

    #[test]
    fn starts_in_bootstrap_ends_done() {
        let rows = transient_phase_occupancy(&params(), 200).unwrap();
        assert_eq!(rows[0], [1.0, 0.0, 0.0, 0.0]);
        let last = rows.last().unwrap();
        assert!(
            last[3] > 0.99,
            "after 200 steps nearly all mass absorbed: {last:?}"
        );
    }

    #[test]
    fn done_mass_is_monotone() {
        let rows = transient_phase_occupancy(&params(), 100).unwrap();
        for pair in rows.windows(2) {
            assert!(pair[1][3] >= pair[0][3] - 1e-12, "absorption only grows");
        }
    }

    #[test]
    fn mean_absorption_time_matches_fundamental_matrix() {
        // E[T] = Σ_{t≥0} P(T > t) = Σ_{t≥0} (1 - done_t); the tail beyond
        // 600 steps is negligible for this configuration.
        let p = params();
        let rows = transient_phase_occupancy(&p, 600).unwrap();
        let series_mean: f64 = rows.iter().map(|r| 1.0 - r[3]).sum();
        let exact = expected_download_time(&p).unwrap();
        assert!(
            (series_mean - exact).abs() < 0.01,
            "transient {series_mean:.4} vs fundamental {exact:.4}"
        );
    }
}
