//! # bt-model — the multiphased BitTorrent download model (ICDCS'07)
//!
//! This crate is the paper's primary contribution: an analytical model of a
//! single BitTorrent peer's download evolution as a three-dimensional
//! absorbing Markov chain, together with the connection-class *efficiency*
//! model (§5) and the entropy-based *stability* analysis (§6).
//!
//! ## The download-evolution chain (§3)
//!
//! The state is the triple `(n, b, i)`:
//!
//! * `n` — number of active connections (`0..=k`),
//! * `b` — number of downloaded pieces (`0..=B`),
//! * `i` — size of the potential set (`0..=s`).
//!
//! A peer starts at `(0, 0, 0)` and is absorbed at `(0, B, 0)`. One chain
//! step corresponds to one piece-exchange round. The transition kernel
//! factorizes as `f(b′|n,b) · g(i′|n,b,i) · h(n′|n,b,i′)`
//! ([`transitions`]), with the trading-power probability `p₍b+n₎` of Eq. 1
//! implemented in [`trading`].
//!
//! The chain exhibits the paper's three phases ([`phase`]): *bootstrap*
//! (acquiring a tradable first piece), *efficient download* (potential set
//! non-empty, download rate `≈ n`), and *last download* (potential set
//! empty near completion, progress at rate `γ`).
//!
//! ## Quickstart
//!
//! ```
//! use bt_model::{ModelParams, evolution::Walker};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ModelParams::builder()
//!     .pieces(50)
//!     .max_connections(4)
//!     .neighbor_set_size(10)
//!     .build()?;
//! let mut walker = Walker::new(&params, StdRng::seed_from_u64(7));
//! let trajectory = walker.run();
//! assert_eq!(trajectory.final_state().b, 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod efficiency;
pub mod evolution;
pub mod exact;
pub mod params;
pub mod phase;
pub mod stability;
pub mod state;
pub mod trading;
pub mod transitions;

pub use params::{ModelParams, ModelParamsBuilder};
pub use phase::{Phase, PhaseBoundaries};
pub use state::DownloadState;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// An underlying numeric computation failed.
    Numeric(bt_markov::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter {name}: {detail}")
            }
            Error::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numeric(e) => Some(e),
            Error::InvalidParameter { .. } => None,
        }
    }
}

impl From<bt_markov::Error> for Error {
    fn from(e: bt_markov::Error) -> Self {
        Error::Numeric(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
