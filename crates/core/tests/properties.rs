//! Property-based tests for the multiphased download model.

use bt_model::efficiency::{efficiency_of, EfficiencyModel};
use bt_model::evolution::Walker;
use bt_model::stability::entropy;
use bt_model::trading::{trading_power, trading_power_curve};
use bt_model::transitions::TransitionKernel;
use bt_model::{DownloadState, ModelParams, Phase};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small but varied parameter set.
fn small_params() -> impl Strategy<Value = ModelParams> {
    (
        2u32..=12, // B
        1u32..=4,  // k
        1u32..=6,  // s
        0.0f64..=1.0,
        0.01f64..=1.0,
        0.01f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
    )
        .prop_map(|(b, k, s, p_init, alpha, gamma, p_r, p_n)| {
            ModelParams::builder()
                .pieces(b)
                .max_connections(k)
                .neighbor_set_size(s)
                .p_init(p_init)
                .alpha(alpha)
                .gamma(gamma)
                .p_r(p_r)
                .p_n(p_n)
                .build()
                .expect("strategy generates valid params")
        })
}

proptest! {
    #[test]
    fn kernel_rows_are_stochastic(params in small_params()) {
        let kernel = TransitionKernel::new(&params).unwrap();
        let space = bt_model::state::StateSpace::new(&params);
        for state in space.iter() {
            let succ = kernel.successors(state);
            let total: f64 = succ.iter().map(|&(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "state {state}: {total}");
            for (next, p) in succ {
                prop_assert!(p > 0.0 && p <= 1.0 + 1e-12);
                prop_assert!(next.b >= state.b.min(1), "pieces never shrink");
                prop_assert!(next.n <= params.max_connections());
                prop_assert!(next.i <= params.neighbor_set_size());
            }
        }
    }

    #[test]
    fn trajectories_are_monotone_and_classified(params in small_params(), seed in any::<u64>()) {
        let mut walker = Walker::new(&params, StdRng::seed_from_u64(seed));
        walker.set_max_steps(5_000);
        let t = walker.run();
        for pair in t.states().windows(2) {
            prop_assert!(pair[1].b >= pair[0].b);
        }
        // Every state classifies into exactly one phase without panicking.
        for &s in t.states() {
            let _ = Phase::classify(s, params.pieces());
        }
        prop_assert_eq!(t.sojourns().total() as usize, t.steps());
    }

    #[test]
    fn trading_power_is_probability(b in 2u32..=300, frac in 0.01f64..=0.99) {
        let phi = bt_model::params::uniform_phi(b);
        let c = ((f64::from(b) * frac) as u32).clamp(1, b - 1);
        let p = trading_power(c, b, &phi).unwrap();
        prop_assert!((0.0..=1.0).contains(&p), "p({c}) = {p} for B = {b}");
    }

    #[test]
    fn trading_curve_unimodalish(b in 4u32..=80) {
        // Under uniform φ the curve rises from ~0.5, peaks, falls to ~0.5;
        // in particular the middle dominates both ends.
        let phi = bt_model::params::uniform_phi(b);
        let curve = trading_power_curve(b, &phi).unwrap();
        let mid = curve[(b / 2) as usize];
        prop_assert!(mid + 1e-12 >= curve[1], "mid {mid} vs p(1) {}", curve[1]);
        prop_assert!(mid + 1e-12 >= curve[(b - 1) as usize]);
    }

    #[test]
    fn efficiency_fixed_point_valid(k in 1u32..=6, p_r in 0.0f64..=1.0, p_m in 0.05f64..=1.0) {
        let eq = EfficiencyModel::new(k, p_r)
            .unwrap()
            .match_prob(p_m)
            .unwrap()
            .solve()
            .unwrap();
        prop_assert!((eq.classes.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(eq.classes.iter().all(|&x| x >= -1e-12));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&eq.efficiency));
        prop_assert!((eq.efficiency - efficiency_of(&eq.classes)).abs() < 1e-12);
    }

    #[test]
    fn entropy_within_bounds(reps in prop::collection::vec(0u64..1_000, 1..40)) {
        let e = entropy(&reps);
        prop_assert!((0.0..=1.0).contains(&e));
        // Permutation invariance.
        let mut rev = reps.clone();
        rev.reverse();
        prop_assert_eq!(e, entropy(&rev));
    }

    #[test]
    fn absorbed_state_is_terminal(params in small_params()) {
        let kernel = TransitionKernel::new(&params).unwrap();
        let done = DownloadState::absorbed(params.pieces());
        prop_assert_eq!(kernel.successors(done), vec![(done, 1.0)]);
    }
}
