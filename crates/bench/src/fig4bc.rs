//! Fig. 4(b)/(c) — stability: swarm population and entropy over time for a
//! small vs a sufficient number of pieces, starting from a skewed state.

use bt_swarm::{scenario, Swarm};

/// The piece counts the paper contrasts.
pub const PIECE_COUNTS: [u32; 2] = [3, 10];

/// One run's stability series.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityRun {
    /// Number of pieces `B`.
    pub pieces: u32,
    /// `(round, population)` series.
    pub population: Vec<(u64, u64)>,
    /// `(round, entropy)` series.
    pub entropy: Vec<(u64, f64)>,
}

/// Runs the §6 stability scenario for each piece count.
///
/// # Panics
///
/// Panics only on internal scenario bugs.
#[must_use]
pub fn fig4bc(seed: u64) -> Vec<StabilityRun> {
    PIECE_COUNTS
        .iter()
        .map(|&pieces| run_stability(pieces, seed))
        .collect()
}

/// One stability run at an arbitrary piece count (used by the ablations).
///
/// # Panics
///
/// Panics only on internal scenario bugs.
#[must_use]
pub fn run_stability(pieces: u32, seed: u64) -> StabilityRun {
    let config = scenario::stability(pieces, seed).expect("scenario preset is valid");
    let metrics = Swarm::new(config).run();
    StabilityRun {
        pieces,
        population: metrics.population,
        entropy: metrics.entropy,
    }
}

/// Prints Fig. 4(b) as TSV: `round  pop@B3  pop@B10`.
pub fn print_fig4b(runs: &[StabilityRun]) {
    let header: Vec<String> = std::iter::once("round".to_string())
        .chain(runs.iter().map(|r| format!("peers@B={}", r.pieces)))
        .collect();
    println!("{}", header.join("\t"));
    let len = runs.iter().map(|r| r.population.len()).max().unwrap_or(0);
    for i in 0..len {
        let mut row = vec![runs
            .first()
            .and_then(|r| r.population.get(i))
            .map_or(i as u64, |&(round, _)| round)
            .to_string()];
        for r in runs {
            row.push(
                r.population
                    .get(i)
                    .map_or("-".to_string(), |&(_, p)| p.to_string()),
            );
        }
        println!("{}", row.join("\t"));
    }
}

/// Prints Fig. 4(c) as TSV: `round  entropy@B3  entropy@B10`.
pub fn print_fig4c(runs: &[StabilityRun]) {
    let header: Vec<String> = std::iter::once("round".to_string())
        .chain(runs.iter().map(|r| format!("entropy@B={}", r.pieces)))
        .collect();
    println!("{}", header.join("\t"));
    let len = runs.iter().map(|r| r.entropy.len()).max().unwrap_or(0);
    for i in 0..len {
        let mut row = vec![runs
            .first()
            .and_then(|r| r.entropy.get(i))
            .map_or(i as u64, |&(round, _)| round)
            .to_string()];
        for r in runs {
            row.push(
                r.entropy
                    .get(i)
                    .map_or("-".to_string(), |&(_, e)| crate::cell(e)),
            );
        }
        println!("{}", row.join("\t"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_well_formed() {
        // A short scaled-down stability run (full runs live in the bench
        // binaries).
        let run = run_stability_short(5, 1);
        assert!(!run.population.is_empty());
        assert_eq!(run.population.len(), run.entropy.len());
        for &(_, e) in &run.entropy {
            assert!((0.0..=1.0).contains(&e));
        }
    }

    fn run_stability_short(pieces: u32, seed: u64) -> StabilityRun {
        let mut config = bt_swarm::scenario::stability(pieces, seed).unwrap();
        config.max_rounds = 20;
        config.initial_leechers = 50;
        let metrics = bt_swarm::Swarm::new(config).run();
        StabilityRun {
            pieces,
            population: metrics.population,
            entropy: metrics.entropy,
        }
    }
}
