//! Fig. 1 — effect of the peer-set size on the download process.
//!
//! * Fig. 1(a): mean potential-set size / neighbor-set size as a function
//!   of the number of pieces downloaded, for several peer-set sizes (PSS).
//! * Fig. 1(b): the download timeline (round at which a peer holds `b`
//!   pieces), simulation against the analytical model, for PSS ∈ {5, 50}.

use bt_des::SeedStream;
use bt_model::evolution::expected_timeline;
use bt_model::params::alpha_from_swarm;
use bt_model::ModelParams;
use bt_swarm::{scenario, Swarm};

use crate::calibrate::calibrate;

/// The PSS values the paper sweeps in Fig. 1(a).
pub const FIG1A_PSS: [u32; 4] = [5, 10, 25, 40];

/// The PSS values compared against the model in Fig. 1(b).
pub const FIG1B_PSS: [u32; 2] = [5, 50];

/// One PSS's series: `(pss, ratio[b])` with `ratio[b]` the mean
/// potential/neighbor ratio while holding `b` pieces.
pub type RatioSeries = (u32, Vec<f64>);

/// Fig. 1(a): the potential-set ratio curves. `completions` controls run
/// length (the paper's setup: `B = 200`, `k = 7`).
///
/// # Panics
///
/// Panics only if the canned scenario config fails validation, which would
/// be a bug in [`bt_swarm::scenario`].
#[must_use]
pub fn fig1a(completions: u64, seed: u64) -> Vec<RatioSeries> {
    FIG1A_PSS
        .iter()
        .map(|&pss| {
            let config = scenario::download_evolution(pss, completions, seed)
                .expect("scenario presets are valid");
            let metrics = Swarm::new(config).run();
            (pss, metrics.potential_ratio_by_pieces(pss))
        })
        .collect()
}

/// One Fig. 1(b) comparison: simulation and model first-passage curves for
/// a PSS value.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePair {
    /// Peer-set size.
    pub pss: u32,
    /// `sim[b]` — mean round (since join) at which completed simulated
    /// peers first held `b` pieces.
    pub sim: Vec<f64>,
    /// `model[b]` — the model's expected first-passage step to `b` pieces.
    pub model: Vec<f64>,
}

/// Fig. 1(b): simulation-vs-model timelines.
///
/// Model parameters are matched to the simulated swarm: same `B`, `k`,
/// `s`, `p_r`, `p_n`; `φ`, `α`, and `γ` *calibrated from the run itself*
/// (see [`crate::calibrate`]), with the paper's `λws/N` formula as the
/// `α` fallback when no bootstrap stall was observed.
///
/// # Panics
///
/// Panics only on internal scenario/parameter bugs.
#[must_use]
pub fn fig1b(completions: u64, replications: usize, seed: u64) -> Vec<TimelinePair> {
    FIG1B_PSS
        .iter()
        .map(|&pss| {
            let mut config = scenario::download_evolution(pss, completions, seed)
                .expect("scenario presets are valid");
            config.observers = 30;
            let pieces = config.pieces;
            let k = config.max_connections;
            let p_r = config.p_reencounter;
            let p_n = config.p_new_connection;
            let lambda = config.arrival_rate;
            let metrics = Swarm::new(config).run();
            let sim = metrics.mean_time_to_pieces(pieces);
            let mean_pop = metrics
                .population
                .iter()
                .map(|&(_, p)| p as f64)
                .sum::<f64>()
                / metrics.population.len().max(1) as f64;
            // Fallback α: the paper's λws/N with w ≈ 0.5 (a fresh
            // arrival's injected first piece is tradable unless universal).
            let alpha_formula = alpha_from_swarm(lambda, 0.5, pss, mean_pop.max(1.0)).max(0.05);
            let cal = calibrate(&metrics, pieces, (alpha_formula, 0.15))
                .expect("figure runs always record occupancy");
            let params = ModelParams::builder()
                .pieces(pieces)
                .max_connections(k)
                .neighbor_set_size(pss)
                .p_r(p_r)
                .p_n(p_n)
                .p_init(0.5)
                .alpha(cal.alpha)
                .gamma(cal.gamma)
                .phi(cal.phi)
                .build()
                .expect("matched parameters are valid");
            let timeline = expected_timeline(
                &params,
                replications,
                SeedStream::new(seed).rng("fig1b-model", u64::from(pss)),
            )
            .expect("kernel construction cannot fail for valid params");
            TimelinePair {
                pss,
                sim,
                model: timeline.mean_step,
            }
        })
        .collect()
}

/// Prints Fig. 1(a) as TSV: `pieces  ratio@pss5  ratio@pss10 ...`.
pub fn print_fig1a(series: &[RatioSeries]) {
    let header: Vec<String> = std::iter::once("pieces".to_string())
        .chain(series.iter().map(|(pss, _)| format!("PSS={pss}")))
        .collect();
    println!("{}", header.join("\t"));
    let len = series.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
    for b in 0..len {
        let row: Vec<String> = std::iter::once(b.to_string())
            .chain(
                series
                    .iter()
                    .map(|(_, r)| crate::cell(r.get(b).copied().unwrap_or(f64::NAN))),
            )
            .collect();
        println!("{}", row.join("\t"));
    }
}

/// Prints Fig. 1(b) as TSV: `pieces  sim@pss  model@pss ...`.
pub fn print_fig1b(pairs: &[TimelinePair]) {
    let mut header = vec!["pieces".to_string()];
    for p in pairs {
        header.push(format!("Sim,PSS={}", p.pss));
        header.push(format!("Model,PSS={}", p.pss));
    }
    println!("{}", header.join("\t"));
    let len = pairs
        .iter()
        .map(|p| p.sim.len().max(p.model.len()))
        .max()
        .unwrap_or(0);
    for b in 0..len {
        let mut row = vec![b.to_string()];
        for p in pairs {
            row.push(crate::cell(p.sim.get(b).copied().unwrap_or(f64::NAN)));
            row.push(crate::cell(p.model.get(b).copied().unwrap_or(f64::NAN)));
        }
        println!("{}", row.join("\t"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_small_run_has_sane_ratios() {
        let series = fig1a(5, 1);
        assert_eq!(series.len(), 4);
        for (pss, ratios) in &series {
            let finite: Vec<f64> = ratios.iter().copied().filter(|v| !v.is_nan()).collect();
            assert!(!finite.is_empty(), "PSS={pss} produced no data");
            for &r in &finite {
                assert!((0.0..=1.0 + 1e-9).contains(&r), "PSS={pss}: ratio {r}");
            }
        }
    }

    #[test]
    fn fig1b_small_run_is_monotone() {
        let pairs = fig1b(3, 10, 2);
        assert_eq!(pairs.len(), 2);
        for pair in &pairs {
            let sim: Vec<f64> = pair.sim.iter().copied().filter(|v| !v.is_nan()).collect();
            for w in sim.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "sim timeline must be monotone");
            }
            let model: Vec<f64> = pair.model.iter().copied().filter(|v| !v.is_nan()).collect();
            for w in model.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "model timeline must be monotone");
            }
        }
    }
}

/// Fig. 1(a) with replication: averages the ratio curves over several
/// seeds and reports the cross-seed standard deviation per point.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedRatio {
    /// Peer-set size.
    pub pss: u32,
    /// Mean ratio per piece count (NaN where unobserved in every seed).
    pub mean: Vec<f64>,
    /// Cross-seed standard deviation per point (0 where only one seed
    /// observed the bucket).
    pub std_dev: Vec<f64>,
}

/// Runs [`fig1a`] once per seed and aggregates mean ± std per point.
///
/// # Panics
///
/// Panics if `seeds` is empty, or on internal scenario bugs.
#[must_use]
pub fn fig1a_replicated(completions: u64, seeds: &[u64]) -> Vec<ReplicatedRatio> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let runs: Vec<Vec<RatioSeries>> = seeds.iter().map(|&s| fig1a(completions, s)).collect();
    FIG1A_PSS
        .iter()
        .enumerate()
        .map(|(idx, &pss)| {
            let len = runs.iter().map(|run| run[idx].1.len()).max().unwrap_or(0);
            let mut mean = vec![f64::NAN; len];
            let mut std_dev = vec![0.0; len];
            for b in 0..len {
                let values: Vec<f64> = runs
                    .iter()
                    .filter_map(|run| run[idx].1.get(b).copied())
                    .filter(|v| !v.is_nan())
                    .collect();
                if values.is_empty() {
                    continue;
                }
                let m = values.iter().sum::<f64>() / values.len() as f64;
                mean[b] = m;
                if values.len() > 1 {
                    let var =
                        values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
                    std_dev[b] = var.sqrt();
                }
            }
            ReplicatedRatio { pss, mean, std_dev }
        })
        .collect()
}

#[cfg(test)]
mod replicated_tests {
    use super::*;

    #[test]
    fn replication_aggregates_across_seeds() {
        let rep = fig1a_replicated(4, &[1, 2]);
        assert_eq!(rep.len(), 4);
        for r in &rep {
            let finite = r.mean.iter().filter(|v| !v.is_nan()).count();
            assert!(finite > 0, "PSS={} has data", r.pss);
            for (&m, &sd) in r.mean.iter().zip(&r.std_dev) {
                if !m.is_nan() {
                    assert!((0.0..=1.0 + 1e-9).contains(&m));
                    assert!(sd >= 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn replication_requires_seeds() {
        let _ = fig1a_replicated(4, &[]);
    }
}
