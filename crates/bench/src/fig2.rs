//! Fig. 2 — per-client download and potential-set evolution for three
//! archetypes: smooth, significant last phase, significant bootstrap phase.

use bt_traces::analyzer::{segment, PhaseSummary};
use bt_traces::generator::{generate, TraceScenario};
use bt_traces::Trace;

/// One archetype's exemplar: the generated trace plus its segmentation.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// Which archetype this is.
    pub scenario: TraceScenario,
    /// The selected trace.
    pub trace: Trace,
    /// Its phase segmentation.
    pub phases: PhaseSummary,
}

/// Generates traces for all three archetypes and picks, per archetype, the
/// trace that exhibits it most strongly.
///
/// # Panics
///
/// Panics only on internal generator bugs (the canned scenarios are valid).
#[must_use]
pub fn fig2(observers_per_scenario: u32, seed: u64) -> Vec<Exemplar> {
    [
        TraceScenario::Smooth,
        TraceScenario::LastPhase,
        TraceScenario::BootstrapStall,
    ]
    .into_iter()
    .map(|scenario| {
        let traces =
            generate(scenario, observers_per_scenario, seed).expect("canned scenario is valid");
        let scored: Vec<(Trace, PhaseSummary)> = traces
            .into_iter()
            .map(|t| {
                let p = segment(&t);
                (t, p)
            })
            .collect();
        let (trace, phases) = scored
            .into_iter()
            .max_by(|(_, a), (_, b)| {
                let score = |p: &PhaseSummary| match scenario {
                    TraceScenario::Smooth => {
                        // Most efficient-phase-dominated completed trace.
                        1.0 - p.bootstrap_fraction() - p.last_fraction()
                    }
                    TraceScenario::LastPhase => p.last_fraction(),
                    TraceScenario::BootstrapStall => p.bootstrap_fraction(),
                };
                score(a).partial_cmp(&score(b)).expect("scores are finite")
            })
            .expect("at least one observer per scenario");
        Exemplar {
            scenario,
            trace,
            phases,
        }
    })
    .collect()
}

/// Prints each exemplar as two TSV blocks (download process, potential
/// set), mirroring the paired panels of Fig. 2.
pub fn print_fig2(exemplars: &[Exemplar]) {
    for ex in exemplars {
        println!("# scenario={}", ex.trace.swarm);
        println!(
            "# phases: bootstrap={:.0}s efficient={:.0}s last={:.0}s",
            ex.phases.bootstrap_secs, ex.phases.efficient_secs, ex.phases.last_secs
        );
        println!("t\tcumulative_bytes\tpotential_set_size");
        for s in &ex.trace.samples {
            println!("{:.0}\t{}\t{}", s.t, s.bytes, s.potential);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemplars_match_their_archetypes() {
        let exemplars = fig2(6, 7);
        assert_eq!(exemplars.len(), 3);
        let by_name = |name: &str| {
            exemplars
                .iter()
                .find(|e| e.trace.swarm == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        let smooth = by_name("smooth");
        let last = by_name("last-phase");
        let stall = by_name("bootstrap-stall");
        // The archetypes order as intended on their own axes.
        assert!(
            stall.phases.bootstrap_fraction() >= smooth.phases.bootstrap_fraction(),
            "stall bootstrap {} vs smooth {}",
            stall.phases.bootstrap_fraction(),
            smooth.phases.bootstrap_fraction()
        );
        assert!(
            last.phases.last_fraction() >= smooth.phases.last_fraction(),
            "last {} vs smooth {}",
            last.phases.last_fraction(),
            smooth.phases.last_fraction()
        );
    }
}
