//! Regenerates every figure of the paper in one run.

fn main() {
    bt_bench::init_obs();
    println!("==== Fig. 1(a): potential-set ratio vs pieces (PSS sweep) ====");
    bt_bench::fig1::print_fig1a(&bt_bench::fig1::fig1a(120, 1));
    println!("\n==== Fig. 1(b): download timeline, sim vs model ====");
    bt_bench::fig1::print_fig1b(&bt_bench::fig1::fig1b(120, 400, 2));
    println!("\n==== Fig. 2: per-client archetype traces ====");
    bt_bench::fig2::print_fig2(&bt_bench::fig2::fig2(10, 7));
    println!("\n==== Fig. 4(a): efficiency vs k, model vs sim ====");
    bt_bench::fig4a::print_fig4a(&bt_bench::fig4a::fig4a(8, 0.5, 4));
    let runs = bt_bench::fig4bc::fig4bc(5);
    println!("\n==== Fig. 4(b): population vs time, B=3 vs B=10 ====");
    bt_bench::fig4bc::print_fig4b(&runs);
    println!("\n==== Fig. 4(c): entropy vs time, B=3 vs B=10 ====");
    bt_bench::fig4bc::print_fig4c(&runs);
    println!("\n==== Fig. 4(d): last-pieces TTD, normal vs shake ====");
    bt_bench::fig4d::print_fig4d(&bt_bench::fig4d::fig4d(60, 6));
}
