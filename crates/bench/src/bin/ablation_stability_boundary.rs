//! Ablation: the §6 stability boundary as a (B, λ) phase diagram.

fn main() {
    bt_bench::init_obs();
    let piece_counts = [2, 3, 5, 8, 12, 20];
    let rates = [2.0, 5.0, 10.0, 20.0, 40.0];
    println!("pieces\tlambda\tgrowth\ttail_entropy\tstable");
    for row in bt_bench::ablations::stability_boundary(&piece_counts, &rates, 250, 5) {
        println!(
            "{}\t{}\t{}\t{}\t{}",
            row.pieces,
            row.arrival_rate,
            bt_bench::cell(row.growth),
            bt_bench::cell(row.tail_entropy),
            row.stable
        );
    }
}
