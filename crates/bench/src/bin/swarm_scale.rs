//! Round-throughput benchmark for the swarm engine at scale.
//!
//! Drives a 5 000-peer, 200-piece swarm (paper-flavoured `k = 7`,
//! `s = 40`) for a fixed number of rounds and reports sustained
//! round-throughput. The numbers land in `BENCH_swarm.json` via the
//! run-manifest machinery: `wall_clock_secs` plus the `swarm.rounds`
//! counter give rounds/sec, and the `round.*` phase timers break the
//! cost down per pipeline stage. The manifest also records the
//! observer wall-time share (`obs_share`, derived from the `obs.*`
//! timers), which `btlab compare --obs-budget` gates in CI.
//!
//! Flags (order-free):
//!
//! * `--smoke` — CI-sized run (500 peers, 30 rounds) that exists to
//!   prove the binary and the manifest path work, not to measure;
//! * `--peers N` / `--rounds N` / `--seed N` — override the defaults;
//! * `--profile FILE` — attach the deterministic cost-attribution
//!   profiler and write its artifacts (summary, folded stacks,
//!   per-round series) next to FILE;
//! * `--observed` — run with the full observability stack attached:
//!   per-round telemetry streamed to `bench_telemetry.jsonl` and a
//!   reservoir-sampled peer cohort traced to `bench_cohort.cohort`
//!   in the output directory, so the recorded `obs_share` reflects a
//!   realistically instrumented run;
//! * `--cohort-size N` — reservoir size for `--observed` (default 16);
//! * `--threads N` — worker threads for the parallel plan phases;
//!   recorded in the manifest so `btlab compare` refuses cross-thread
//!   diffs and `btlab trend` charts rounds/sec per thread count.
//!   Output bytes are identical at any value; only wall time changes;
//! * `--heartbeat` — emit wall-clock-cadenced progress records to
//!   `DIR/run.heartbeat.jsonl` plus an atomically-replaced
//!   `DIR/run.status.json`, the artifacts `btlab watch` tails;
//! * `--heartbeat-secs S` — heartbeat cadence (default 1.0);
//! * `--out DIR` — where the manifest and observability artifacts
//!   land, overriding `$BT_MANIFEST_DIR` (default `results/`).
//!
//! The manifest is written to `DIR/BENCH_swarm.json`. With the
//! `alloc-profile` feature a counting global allocator is installed and
//! `--profile` reports gain a per-stage `mem.alloc_bytes` work counter.

use std::path::PathBuf;
use std::time::Instant; // bt-lint: allow(det-wall-clock) — bench measures wall time by design

use bt_obs::{fnv1a_hex, RunManifest};
use bt_swarm::Swarm;

/// A [`std::alloc::GlobalAlloc`] wrapper that forwards to the system
/// allocator and mirrors every call into the process-global counters in
/// [`bt_obs::mem`]. Lives here (not in bt-obs, which forbids unsafe
/// code) because the wrapper itself is irreducibly `unsafe impl`; the
/// counters it feeds are plain safe atomics.
#[cfg(feature = "alloc-profile")]
struct CountingAlloc;

#[cfg(feature = "alloc-profile")]
// SAFETY: every method forwards verbatim to `std::alloc::System`, which
// upholds the GlobalAlloc contract; the added counter calls touch only
// relaxed atomics and never allocate.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        bt_obs::mem::record_alloc(layout.size());
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        bt_obs::mem::record_dealloc(layout.size());
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        bt_obs::mem::record_dealloc(layout.size());
        bt_obs::mem::record_alloc(new_size);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(feature = "alloc-profile")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Benchmark knobs parsed from the command line.
struct Options {
    peers: u32,
    rounds: u64,
    seed: u64,
    profile: Option<PathBuf>,
    observed: bool,
    cohort_size: u32,
    threads: u32,
    heartbeat: bool,
    heartbeat_secs: f64,
    out: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut options = Options {
        peers: 5_000,
        rounds: 60,
        seed: 7,
        profile: None,
        observed: false,
        cohort_size: 16,
        threads: 1,
        heartbeat: false,
        heartbeat_secs: 1.0,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a numeric argument"))
        };
        match arg.as_str() {
            "--smoke" => {
                options.peers = 500;
                options.rounds = 30;
            }
            "--peers" => options.peers = numeric("--peers") as u32,
            "--rounds" => options.rounds = numeric("--rounds"),
            "--seed" => options.seed = numeric("--seed"),
            "--observed" => options.observed = true,
            "--cohort-size" => {
                let size = numeric("--cohort-size") as u32;
                assert!(size >= 1, "--cohort-size must be >= 1");
                options.cohort_size = size;
            }
            "--threads" => {
                let threads = numeric("--threads") as u32;
                assert!(threads >= 1, "--threads must be >= 1");
                options.threads = threads;
            }
            "--heartbeat" => options.heartbeat = true,
            "--heartbeat-secs" => {
                let secs: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--heartbeat-secs requires a numeric argument"));
                assert!(secs >= 0.0, "--heartbeat-secs must be >= 0");
                options.heartbeat_secs = secs;
            }
            "--profile" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| panic!("--profile requires a path argument"));
                options.profile = Some(PathBuf::from(path));
            }
            "--out" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| panic!("--out requires a directory argument"));
                options.out = Some(PathBuf::from(path));
            }
            other => panic!(
                "unknown flag {other}; try --smoke / --peers / --rounds / --seed \
                 / --profile / --observed / --cohort-size / --threads / --heartbeat \
                 / --heartbeat-secs / --out"
            ),
        }
    }
    options
}

fn main() {
    bt_bench::init_obs();
    let options = parse_args();
    let config = bt_swarm::scenario::scale_probe(options.peers, options.rounds, options.seed)
        .expect("valid benchmark config");

    let out_dir = options
        .out
        .clone()
        .or_else(|| std::env::var_os("BT_MANIFEST_DIR").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let registry = bt_obs::Registry::new();
    let config_hash = fnv1a_hex(
        serde_json::to_string(&config)
            .expect("config serializes")
            .as_bytes(),
    );
    let mut manifest = RunManifest::new("swarm_scale", config_hash, options.seed);

    let mut swarm = Swarm::with_registry(config, registry.clone());
    swarm.set_threads(options.threads);
    manifest.threads = options.threads;
    manifest.pipeline = swarm.stage_names().iter().map(|s| s.to_string()).collect();
    if options.profile.is_some() {
        swarm.attach_profiler(bt_obs::ProfileOptions {
            seed: options.seed,
            ..bt_obs::ProfileOptions::default()
        });
    }
    let telemetry_path = out_dir.join("bench_telemetry.jsonl");
    let cohort_path = out_dir.join("bench_cohort.cohort");
    if options.observed {
        let file = std::fs::File::create(&telemetry_path).expect("create telemetry stream");
        let recorder = bt_swarm::TelemetryRecorder::new(bt_swarm::TelemetryOptions::default())
            .to_writer(Box::new(std::io::BufWriter::new(file)));
        swarm.attach_telemetry(recorder);
        let file = std::fs::File::create(&cohort_path).expect("create cohort stream");
        swarm.attach_cohort(
            options.cohort_size,
            Box::new(std::io::BufWriter::new(file)),
        );
    }
    if options.heartbeat {
        let emitter = bt_obs::HeartbeatEmitter::new(
            bt_obs::HeartbeatOptions {
                dir: out_dir.clone(),
                interval: std::time::Duration::from_secs_f64(options.heartbeat_secs),
                command: "swarm_scale".to_string(),
                seed: options.seed,
                target_rounds: options.rounds,
            },
            registry.clone(),
        )
        .expect("create heartbeat artifacts");
        swarm.attach_heartbeat(emitter);
        println!("heartbeat: {}", out_dir.join(bt_obs::RUN_STATUS_FILE).display());
    }
    let started = Instant::now(); // bt-lint: allow(det-wall-clock) — timing is the measurement
    for _ in 0..options.rounds {
        swarm.step_round();
    }
    // Observer flushes happen inside the timed window: they are part of
    // the overhead the obs-budget gate exists to measure.
    if options.observed {
        let _ = swarm.take_telemetry();
        let _ = swarm.take_cohort();
    }
    if options.heartbeat {
        let _ = swarm.take_heartbeat();
    }
    let elapsed = started.elapsed();
    manifest.finish(&registry, elapsed);
    if let Some(path) = &options.profile {
        let profile = swarm.take_profile();
        profile.write_artifacts(path).expect("write profile");
        println!("profile: {}", path.display());
    }
    if options.observed {
        println!("telemetry: {}", telemetry_path.display());
        println!("cohort: {}", cohort_path.display());
    }

    let rounds_per_sec = options.rounds as f64 / elapsed.as_secs_f64().max(1e-9);
    manifest.peak_population = registry.counter("swarm.peak_population").get();
    let out_path = out_dir.join("BENCH_swarm.json");
    manifest
        .write_to(&out_path)
        .expect("write BENCH_swarm.json");

    // One compact record per bench run lands in the cross-run ledger so
    // `btlab trend` can plot throughput across bench history.
    let ledger_path = bt_obs::default_ledger_path();
    let record = bt_obs::LedgerRecord::from_manifest(&manifest, 0);
    match bt_obs::append_record(&ledger_path, &record) {
        Ok(()) => println!("ledger: {}", ledger_path.display()),
        Err(e) => eprintln!(
            "warning: cannot append ledger {}: {e}",
            ledger_path.display()
        ),
    }

    println!(
        "swarm_scale: peers={} rounds={} threads={} elapsed={:.3}s throughput={:.2} rounds/sec",
        options.peers,
        options.rounds,
        options.threads,
        elapsed.as_secs_f64(),
        rounds_per_sec
    );
    println!(
        "observer overhead: {:.2}% of wall time ({:.3}s in obs.* timers)",
        manifest.obs_share * 100.0,
        manifest.obs_wall_secs
    );
    println!(
        "memory: rss={:.1} MiB peak={:.1} MiB",
        manifest.rss_bytes as f64 / (1024.0 * 1024.0),
        manifest.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
    if bt_obs::mem::alloc_counting_active() {
        println!(
            "allocations: {} calls, {:.1} MiB total ({:.1} MiB live)",
            bt_obs::mem::allocation_calls(),
            bt_obs::mem::allocated_bytes_total() as f64 / (1024.0 * 1024.0),
            bt_obs::mem::live_alloc_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    println!("manifest: {}", out_path.display());
    for (name, secs) in &manifest.phase_secs {
        println!("  {name}: {secs:.3}s");
    }
}
